"""Repo-root pytest configuration.

Loads the paper-artifact plugin (``tests/plugin.py``) so any test can
use ``@paper_artifact(...)`` markers and the ``artifact_run`` fixture;
``pytest_plugins`` is only legal in the rootdir conftest.
"""

pytest_plugins = ["tests.plugin"]

"""Engine-scheduling microbenchmark: naive vs active vs vector strategies.

Times identical seeded workloads under ``engine_strategy="naive"`` (tick
every component every cycle), ``"active"`` (active-set scheduling with
idle fast-forward) and ``"vector"`` (struct-of-arrays batch kernels over
the active strategy's schedule), checks that the measured channel results
are bit-identical across all strategies, and emits
``BENCH_engine.json``::

    python -m repro bench                 # full-Volta scale by default
    python -m repro bench --scale small

Two representative workloads are measured:

* ``tpc_channel`` — a calibrate-plus-transmit TPC covert-channel run
  (the paper's core experiment; dense contention phases).
* ``fig9_sync`` — the Figure 9 synchronised latency trace, whose idle
  guard slots between symbols are where fast-forward pays off most.

The report also carries a ``"vector"`` section (vector-vs-active floor
plus a ``full_volta`` block pinning the Table-1-scale numbers the PR's
acceptance tracks), a ``"telemetry"`` section (tracing overhead), a
``"metrics"`` section (sampled engine self-profiling overhead; <2%
budget) and a ``"supervision"`` section (fault-tolerant runner overhead
on a clean sweep, legacy pool vs per-job supervision; must stay <5%).

Every bench run also appends a trajectory record to
``BENCH_history.jsonl`` (see :mod:`repro.metrics.history`); ``python -m
repro bench --check-history`` compares the run against the trailing
median for the same config and host and fails on a >20% throughput
regression.

The vector strategy requires numpy; without it the vector legs are
recorded as unavailable (with the :class:`~repro.config.ConfigError`
message) instead of silently falling back to another strategy.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from ..config import ConfigError, GpuConfig, VOLTA_V100

#: Default output file name.
BENCH_OUTPUT = "BENCH_engine.json"


def vector_available() -> bool:
    """Whether the optional numpy dependency for ``vector`` is present."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def _tpc_channel(config: GpuConfig, num_bits: int) -> Tuple[int, Any]:
    from ..channel.tpc_channel import TpcCovertChannel

    channel = TpcCovertChannel(config)
    channel.calibrate()
    bits = [i % 2 for i in range(num_bits)]
    result = channel.transmit(bits)
    return result.cycles, (result.received_symbols, result.measurements)


def _fig9_sync(config: GpuConfig, num_bits: int) -> Tuple[int, Any]:
    from ..channel.protocol import ChannelParams
    from ..channel.tpc_channel import TpcCovertChannel

    # Same parameters as fig9_latency_trace(with_sync=True); run through
    # the channel directly so the simulated cycle count is reportable.
    params = ChannelParams().with_(sync_period=8, slot_cycles=0,
                                   threshold=1.0)
    channel = TpcCovertChannel(config, params=params)
    bits = [slot % 2 for slot in range(num_bits)]
    result = channel.transmit(bits)
    return result.cycles, (bits, result.measurements)


_WORKLOADS: Dict[str, Callable[[GpuConfig, int], Tuple[int, Any]]] = {
    "tpc_channel": _tpc_channel,
    "fig9_sync": _fig9_sync,
}


def _time_strategy(
    workload: Callable[[GpuConfig, int], Tuple[int, Any]],
    config: GpuConfig,
    strategy: str,
    num_bits: int,
) -> Tuple[float, int, Any]:
    run_config = config.replace(engine_strategy=strategy)
    start = time.perf_counter()
    cycles, fingerprint = workload(run_config, num_bits)
    elapsed = time.perf_counter() - start
    return elapsed, cycles, fingerprint


def _bench_telemetry(config: GpuConfig, num_bits: int) -> Dict[str, Any]:
    """Measure the telemetry subsystem's overhead on the channel workload.

    Runs the TPC channel (active strategy) with telemetry off and on,
    asserts the channel results are bit-identical — observability must
    never perturb the model — and reports the wall-clock overhead of the
    enabled instrumentation.
    """
    base = config.replace(engine_strategy="active")
    off_s, off_cycles, off_fp = _time_strategy(
        _tpc_channel, base.replace(telemetry_enabled=False),
        "active", num_bits
    )
    on_s, on_cycles, on_fp = _time_strategy(
        _tpc_channel, base.replace(telemetry_enabled=True),
        "active", num_bits
    )
    assert off_fp == on_fp, (
        "telemetry-enabled run diverged from the telemetry-off baseline"
    )
    assert off_cycles == on_cycles, (
        f"cycle counts diverged with telemetry on "
        f"({off_cycles} vs {on_cycles})"
    )
    overhead = (on_s - off_s) / off_s if off_s > 0 else 0.0
    return {
        "workload": "tpc_channel",
        "disabled_wall_s": round(off_s, 4),
        "enabled_wall_s": round(on_s, 4),
        "overhead_frac": round(overhead, 4),
        "identical": True,
        "cycles": off_cycles,
    }


def _bench_metrics(config: GpuConfig, num_bits: int) -> Dict[str, Any]:
    """Measure the metrics plane's overhead on the channel workload.

    Runs the TPC channel with ``metrics_enabled`` off and on under the
    fastest available strategy (vector when numpy is present, active
    otherwise), asserts the channel results are bit-identical — the
    engine profiler only *reads* scheduler state — and reports the
    wall-clock overhead of sampled self-profiling.  The budget is <2%
    (``budget_frac``); the measured ``overhead_frac`` is recorded for
    the history trail rather than hard-asserted, since sub-second wall
    clocks are noisy on shared CI hosts.
    """
    strategy = "vector" if vector_available() else "active"
    base = config.replace(engine_strategy=strategy)
    off_s, off_cycles, off_fp = _time_strategy(
        _tpc_channel, base.replace(metrics_enabled=False),
        strategy, num_bits
    )
    on_s, on_cycles, on_fp = _time_strategy(
        _tpc_channel, base.replace(metrics_enabled=True),
        strategy, num_bits
    )
    assert off_fp == on_fp, (
        "metrics-enabled run diverged from the metrics-off baseline"
    )
    assert off_cycles == on_cycles, (
        f"cycle counts diverged with metrics on "
        f"({off_cycles} vs {on_cycles})"
    )
    overhead = (on_s - off_s) / off_s if off_s > 0 else 0.0
    return {
        "workload": "tpc_channel",
        "strategy": strategy,
        "disabled_wall_s": round(off_s, 4),
        "enabled_wall_s": round(on_s, 4),
        "overhead_frac": round(overhead, 4),
        "budget_frac": 0.02,
        "identical": True,
        "cycles": off_cycles,
    }


def _bench_supervision(config: GpuConfig, num_bits: int) -> Dict[str, Any]:
    """Measure the supervised runner's overhead on a fault-free sweep.

    Runs the same 4-job channel sweep through the legacy pool path and
    the per-job supervision path (timeouts + retry machinery armed, no
    faults injected), asserts the results are bit-identical, and reports
    the wall-clock overhead — the price of crash isolation when nothing
    crashes.  The acceptance bar is <5% on fault-free runs.
    """
    from ..config import SweepSupervision
    from .runner import SimJob, run_jobs
    from .supervisor import run_supervised

    jobs = [
        SimJob(
            fn="repro.runner.workloads.channel_run",
            config=config,
            params={"kind": "tpc", "num_bits": num_bits, "seed": 7 + i},
        )
        for i in range(4)
    ]
    start = time.perf_counter()
    legacy = run_jobs(jobs, workers=2, supervised=False)
    legacy_s = time.perf_counter() - start
    start = time.perf_counter()
    outcome = run_supervised(
        jobs, workers=2,
        policy=SweepSupervision(timeout_s=600.0, max_attempts=3),
    )
    supervised_s = time.perf_counter() - start
    assert not outcome.failures, (
        "supervised fault-free sweep reported failures"
    )
    assert outcome.results == legacy, (
        "supervised sweep diverged from the legacy pool path"
    )
    overhead = (
        (supervised_s - legacy_s) / legacy_s if legacy_s > 0 else 0.0
    )
    return {
        "workload": "channel_run x4",
        "jobs": len(jobs),
        "legacy_wall_s": round(legacy_s, 4),
        "supervised_wall_s": round(supervised_s, 4),
        "overhead_frac": round(overhead, 4),
        "identical": True,
    }


def _bench_full_volta(
    config: GpuConfig,
    num_bits: int,
    report: Dict[str, Any],
) -> Dict[str, Any]:
    """Pin the vector-vs-active numbers at the Table-1 V100 scale.

    This is the scale the vector engine exists for; the block records it
    explicitly even when the bench itself ran at another ``--scale``.
    When the bench config already is full-Volta the measured workload
    entries are reused instead of re-simulated.
    """
    block: Dict[str, Any] = {
        "num_sms": VOLTA_V100.num_sms,
        "num_l2_slices": VOLTA_V100.num_l2_slices,
        "workload": "tpc_channel",
        "num_bits": num_bits,
    }
    at_volta = (
        config.num_sms == VOLTA_V100.num_sms
        and config.num_l2_slices == VOLTA_V100.num_l2_slices
    )
    if at_volta:
        entry = report["workloads"]["tpc_channel"]
        for key in ("cycles", "active_wall_s", "vector_wall_s",
                    "active_cycles_per_s", "vector_cycles_per_s"):
            if key in entry:
                block[key] = entry[key]
        if "vector_speedup_vs_active" in entry:
            block["speedup_vs_active"] = entry["vector_speedup_vs_active"]
        block["identical"] = entry["identical"]
        return block
    active_s, cycles, active_fp = _time_strategy(
        _tpc_channel, VOLTA_V100, "active", num_bits
    )
    vector_s, vector_cycles, vector_fp = _time_strategy(
        _tpc_channel, VOLTA_V100, "vector", num_bits
    )
    assert active_fp == vector_fp, (
        "full-Volta: vector engine diverged from the active baseline"
    )
    assert cycles == vector_cycles, (
        f"full-Volta: cycle counts diverged ({cycles} vs {vector_cycles})"
    )
    block.update(
        cycles=cycles,
        active_wall_s=round(active_s, 4),
        vector_wall_s=round(vector_s, 4),
        active_cycles_per_s=round(cycles / active_s, 1),
        vector_cycles_per_s=round(cycles / vector_s, 1),
        speedup_vs_active=round(active_s / vector_s, 3),
        identical=True,
    )
    return block


def bench_engine(
    config: GpuConfig,
    num_bits: int = 24,
    workloads: Optional[Tuple[str, ...]] = None,
    output: Union[str, Path, None] = BENCH_OUTPUT,
    on_phase: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Benchmark all engine strategies; optionally write a JSON report.

    Returns the report dict.  Raises ``AssertionError`` if any workload
    produces different results under any two strategies — the optimised
    engines are only optimisations if they are cycle-exact.  ``on_phase``
    (when given) is called with a short label as each timed leg starts —
    the CLI's ``--progress`` renderer hangs off it.
    """
    names = workloads or tuple(_WORKLOADS)
    with_vector = vector_available()

    def phase(label: str) -> None:
        if on_phase is not None:
            on_phase(label)
    report: Dict[str, Any] = {
        "scales": {
            "num_sms": config.num_sms,
            "num_l2_slices": config.num_l2_slices,
        },
        "num_bits": num_bits,
        "workloads": {},
    }
    speedups = []
    vector_speedups = []
    for name in names:
        workload = _WORKLOADS[name]
        phase(f"{name}:naive")
        naive_s, cycles, naive_fp = _time_strategy(
            workload, config, "naive", num_bits
        )
        phase(f"{name}:active")
        active_s, active_cycles, active_fp = _time_strategy(
            workload, config, "active", num_bits
        )
        assert naive_fp == active_fp, (
            f"{name}: active-set engine diverged from naive baseline"
        )
        assert cycles == active_cycles, (
            f"{name}: cycle counts diverged ({cycles} vs {active_cycles})"
        )
        speedup = naive_s / active_s if active_s > 0 else float("inf")
        speedups.append(speedup)
        entry: Dict[str, Any] = {
            "naive_wall_s": round(naive_s, 4),
            "active_wall_s": round(active_s, 4),
            "speedup": round(speedup, 3),
            "identical": True,
        }
        if with_vector:
            phase(f"{name}:vector")
            vector_s, vector_cycles, vector_fp = _time_strategy(
                workload, config, "vector", num_bits
            )
            assert naive_fp == vector_fp, (
                f"{name}: vector engine diverged from naive baseline"
            )
            assert cycles == vector_cycles, (
                f"{name}: vector cycle count diverged "
                f"({cycles} vs {vector_cycles})"
            )
            vector_speedup = (
                active_s / vector_s if vector_s > 0 else float("inf")
            )
            vector_speedups.append(vector_speedup)
            entry["vector_wall_s"] = round(vector_s, 4)
            entry["vector_speedup_vs_active"] = round(vector_speedup, 3)
        if cycles:
            entry["cycles"] = cycles
            entry["naive_cycles_per_s"] = round(cycles / naive_s, 1)
            entry["active_cycles_per_s"] = round(cycles / active_s, 1)
            if with_vector:
                entry["vector_cycles_per_s"] = round(cycles / vector_s, 1)
        report["workloads"][name] = entry
    report["min_speedup"] = round(min(speedups), 3)
    if with_vector:
        phase("full_volta")
        report["vector"] = {
            "available": True,
            "min_speedup_vs_active": round(min(vector_speedups), 3),
            "full_volta": _bench_full_volta(config, num_bits, report),
        }
    else:
        try:
            from ..sim.engine import create_engine

            create_engine("vector")
            message = "numpy import succeeded unexpectedly"
        except ConfigError as error:
            message = str(error)
        report["vector"] = {"available": False, "error": message}
    phase("telemetry")
    report["telemetry"] = _bench_telemetry(config, num_bits)
    phase("metrics")
    report["metrics"] = _bench_metrics(config, num_bits)
    phase("supervision")
    report["supervision"] = _bench_supervision(config, num_bits)
    if output is not None:
        path = Path(output)
        path.write_text(json.dumps(report, indent=2) + "\n",
                        encoding="utf-8")
        report["output"] = str(path)
    return report

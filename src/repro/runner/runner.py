"""Parallel fan-out of independent simulation points.

Sweeps (Figure 10 iteration counts, Table 2 channels, seed replications)
are embarrassingly parallel: each point builds its own
:class:`~repro.gpu.device.GpuDevice` from a config and never shares state
with its neighbours.  :func:`run_jobs` fans a list of :class:`SimJob`\\ s
over a ``multiprocessing`` pool and stitches the results back in job
order, consulting an optional :class:`~repro.runner.cache.ResultCache`
so repeated sweeps replay instantly.

Workload functions are referenced by *dotted path* (``"pkg.mod.func"``)
rather than by object so that jobs pickle cheaply and cache keys are
stable across processes.  A workload must

* accept a :class:`~repro.config.GpuConfig` as its first argument,
  followed by keyword parameters, and
* return something JSON-serialisable (results are round-tripped through
  JSON even when fresh, so cached and uncached runs are type-identical).
"""

from __future__ import annotations

import importlib
import json
import multiprocessing
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, List, Optional, Sequence, Tuple, Union,
)

from ..config import GpuConfig
from ..sim.stats import Sampler
from ..telemetry import collecting
from .cache import ResultCache


@dataclass(frozen=True)
class SimJob:
    """One independent simulation point.

    Attributes
    ----------
    fn:
        Dotted path of the workload function (``"repro.runner.workloads.
        fig10_point"``).
    config:
        The full GPU configuration for this point.
    params:
        Keyword arguments forwarded to the workload.
    seed:
        Optional seed override; when set, the job runs with
        ``config.replace(seed=seed)`` so sweeps over seeds need not build
        one config per replication by hand.
    """

    fn: str
    config: GpuConfig
    params: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None

    def resolved_config(self) -> GpuConfig:
        if self.seed is None:
            return self.config
        return self.config.replace(seed=self.seed)


def resolve(path: str) -> Callable[..., Any]:
    """Import the workload function named by a dotted path."""
    module_name, _, attr = path.rpartition(".")
    if not module_name:
        raise ValueError(f"not a dotted function path: {path!r}")
    module = importlib.import_module(module_name)
    try:
        fn = getattr(module, attr)
    except AttributeError as exc:
        raise ValueError(f"{module_name} has no attribute {attr!r}") from exc
    if not callable(fn):
        raise ValueError(f"{path} is not callable")
    return fn


def execute(job: SimJob) -> Any:
    """Run one job in-process and return its JSON round-tripped result.

    Dict-shaped results from workloads that built at least one
    :class:`~repro.gpu.device.GpuDevice` gain a ``"telemetry"`` key — the
    merged metrics manifest (round-trip latency aggregates plus, with
    ``telemetry_enabled``, link/event summaries) of every device the job
    constructed.  With ``config.metrics_enabled`` they additionally gain
    a ``"metrics"`` key holding the merged engine-profile manifest of
    every profiled device.  Non-dict results and device-less workloads
    pass through unchanged.
    """
    fn = resolve(job.fn)
    with collecting() as frame:
        result = fn(job.resolved_config(), **job.params)
    manifest = frame.manifest()
    if manifest is not None and isinstance(result, dict):
        result = dict(result)
        result["telemetry"] = manifest
        metrics = frame.metrics()
        if metrics is not None:
            result["metrics"] = metrics
    return json.loads(json.dumps(result))


def _select(
    results: Sequence[Any], fresh: Optional[Sequence[int]]
) -> Sequence[Any]:
    """Results to aggregate: all of them, or only the ``fresh`` indices.

    ``fresh`` is :attr:`~repro.runner.supervisor.SweepOutcome.fresh` —
    jobs that actually executed this run and succeeded.  Restricting to
    it keeps sweep-wide aggregates honest: cache hits and journal
    replays would double-count observations recorded by an earlier run,
    and failed slots hold :class:`JobFailure` records, not results.

    An index outside ``results`` means the caller paired a ``fresh``
    list with a result list from a *different* sweep (stale journal,
    truncated results) — an aggregate silently computed over the
    surviving indices would be wrong, so this raises instead of
    dropping them.
    """
    if fresh is None:
        return results
    out = []
    for index in fresh:
        if not 0 <= index < len(results):
            raise IndexError(
                f"fresh index {index} out of range for {len(results)} "
                f"results — fresh list and results are from different "
                f"sweeps"
            )
        out.append(results[index])
    return out


def merge_telemetry(
    results: Sequence[Any],
    fresh: Optional[Sequence[int]] = None,
) -> Optional[Dict[str, Any]]:
    """Aggregate the ``"telemetry"`` sections of a sweep's job results.

    Each worker process summarises its own devices; this folds the
    per-job round-trip latency summaries back into one sweep-wide
    :class:`~repro.sim.stats.Sampler` aggregate.  Returns None when no
    result carried telemetry.  ``fresh`` (see :func:`_select`) restricts
    the fold to jobs that executed fresh and succeeded this run.
    """
    merged = Sampler()
    jobs_with = 0
    devices = 0
    for result in _select(results, fresh):
        if not isinstance(result, dict):
            continue
        section = result.get("telemetry")
        if not section:
            continue
        jobs_with += 1
        devices += section.get("devices", 0)
        merged.merge(Sampler.from_summary(section.get("read_latency", {})))
    if not jobs_with:
        return None
    return {
        "jobs": jobs_with,
        "devices": devices,
        "read_latency": merged.summary(),
    }


def merge_metrics(
    results: Sequence[Any],
    fresh: Optional[Sequence[int]] = None,
) -> Optional[Dict[str, Any]]:
    """Aggregate the ``"metrics"`` sections of a sweep's job results.

    Counterpart of :func:`merge_telemetry` for the labeled-metrics plane:
    per-job engine-profile manifests (recorded by workers running with
    ``config.metrics_enabled``) are folded into one registry — counters
    sum, gauges keep their high-water mark, samplers and histograms
    merge.  Returns None when no selected result carried metrics.
    ``fresh`` restricts the fold to jobs that executed fresh and
    succeeded this run, so replayed or cached points are not counted
    twice.
    """
    from ..metrics.registry import MetricsRegistry

    merged = MetricsRegistry()
    jobs_with = 0
    devices = 0
    for result in _select(results, fresh):
        if not isinstance(result, dict):
            continue
        section = result.get("metrics")
        if not section:
            continue
        jobs_with += 1
        devices += section.get("devices", 0)
        merged.merge_manifest(section)
    if not jobs_with:
        return None
    return {"jobs": jobs_with, "devices": devices, **merged.to_manifest()}


def _pool_entry(payload: Tuple[int, SimJob]) -> Tuple[int, Any]:
    index, job = payload
    return index, execute(job)


def run_jobs(
    jobs: Sequence[SimJob],
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    *,
    timeout_s: Optional[float] = None,
    retries: Optional[int] = None,
    policy: Optional["SweepSupervision"] = None,
    strict: bool = True,
    journal: Union[str, "Path", "SweepJournal", None] = None,
    resume: bool = False,
    supervised: Optional[bool] = None,
    on_event: Optional[Callable[[str, Dict[str, Any]], None]] = None,
) -> List[Any]:
    """Run every job, in parallel where possible; results in job order.

    ``workers=None`` picks ``min(len(jobs), cpu_count)``; ``workers<=1``
    runs inline (no pool, trivially debuggable).  With a ``cache``, hits
    are served from disk and misses are stored *write-through* — each
    result is persisted the moment it arrives, so a crash mid-sweep
    keeps every completed point.  ``progress(done, total)`` is invoked
    after each job completes.

    Fault tolerance (``repro.runner.supervisor``) engages when any of
    ``timeout_s`` / ``retries`` / ``policy`` / ``journal`` / ``resume``
    is given, when ``strict=False``, or explicitly via
    ``supervised=True``: each job then runs in its own supervised worker
    with per-job timeouts, bounded retries with deterministic backoff,
    and crash isolation.  ``retries`` counts *extra* attempts
    (``retries=2`` means up to 3 attempts).  With ``strict=True`` (the
    default) a sweep that still has failed jobs after retries raises
    :class:`~repro.runner.supervisor.SweepError` — but only after every
    healthy job has completed and been checkpointed.  With
    ``strict=False`` failed slots hold structured
    :class:`~repro.runner.supervisor.JobFailure` records instead.

    ``journal`` (a path or :class:`~repro.runner.journal.SweepJournal`)
    checkpoints completed points to an append-only JSONL file;
    ``resume=True`` replays points a previous run already completed and
    executes only the remainder.

    ``on_event`` receives fine-grained supervision events (``launch`` /
    ``ok`` / ``fail`` / ``cache-hit`` / ``replay``; see
    :func:`~repro.runner.supervisor.run_supervised`) and forces the
    supervised path, since only the supervisor emits them.
    """
    if supervised is None:
        supervised = (
            timeout_s is not None or retries is not None
            or policy is not None or journal is not None
            or resume or not strict or on_event is not None
        )

    if supervised:
        from ..config import SweepSupervision
        from .journal import SweepJournal
        from .supervisor import SweepError, run_supervised

        if policy is None:
            policy = SweepSupervision.from_env()
        if timeout_s is not None:
            policy = policy.replace(timeout_s=timeout_s)
        if retries is not None:
            policy = policy.replace(max_attempts=retries + 1)
        journal_obj: Optional[SweepJournal]
        owns_journal = False
        if journal is None or isinstance(journal, SweepJournal):
            journal_obj = journal
        else:
            journal_obj = SweepJournal(journal)
            owns_journal = True
        try:
            outcome = run_supervised(
                jobs, workers=workers, cache=cache, progress=progress,
                policy=policy, journal=journal_obj, resume=resume,
                on_event=on_event,
            )
        finally:
            if owns_journal:
                journal_obj.close()
        if strict and outcome.failures:
            raise SweepError(outcome.failures, outcome.results)
        return outcome.results

    total = len(jobs)
    results: List[Any] = [None] * total
    done = 0

    def report() -> None:
        if progress is not None:
            progress(done, total)

    pending: List[Tuple[int, SimJob]] = []
    keys: Dict[int, str] = {}
    if cache is not None:
        for index, job in enumerate(jobs):
            key = cache.key(job.fn, job.resolved_config(), job.params)
            keys[index] = key
            hit = cache.get(key)
            if hit is not None:
                results[index] = hit
                done += 1
                report()
            else:
                pending.append((index, job))
    else:
        pending = list(enumerate(jobs))

    if not pending:
        return results

    def complete(index: int, result: Any) -> None:
        # Write-through: persist each result as it arrives so a crash
        # later in the sweep never discards completed work.
        nonlocal done
        if cache is not None:
            result = cache.put(keys[index], result)
        results[index] = result
        done += 1
        report()

    if workers is None:
        workers = min(len(pending), multiprocessing.cpu_count())

    if workers <= 1 or len(pending) == 1:
        for index, job in pending:
            complete(index, execute(job))
    else:
        pool = multiprocessing.Pool(processes=workers)
        try:
            for index, result in pool.imap_unordered(_pool_entry, pending):
                complete(index, result)
        except BaseException:
            # Deterministic teardown: a KeyboardInterrupt mid-iteration
            # or an exception escaping progress() must not leak live
            # workers or hang in Pool.__del__.
            pool.terminate()
            pool.join()
            raise
        else:
            pool.close()
            pool.join()

    return results

"""Async sweep service: dedup scheduler over a shard pool.

:class:`SweepService` grows the per-call multiprocessing pool of
:mod:`repro.runner` into a service shape: callers submit *requests*
(lists of :class:`~repro.runner.runner.SimJob`) concurrently, and the
scheduler guarantees each unique grid point — identified by its
content-hash :func:`~repro.runner.cache.job_key` — executes **at most
once** no matter how many overlapping requests are in flight:

* the first request to name a key creates an in-flight future and
  enqueues the job for a shard;
* later requests naming the same key *attach* to that future ("late
  subscribers") and receive the identical result object;
* keys whose result is already in the shared artifact store
  (:class:`~repro.runner.cache.ResultCache`) resolve immediately as
  cache hits, without touching the dispatch queue.

All scheduler state (the in-flight map, the dispatch queue, the
counters) is owned by the asyncio event-loop thread; shards hand actual
execution to a thread pool, where the ``"supervised"`` backend wraps
each job in :func:`~repro.runner.supervisor.run_supervised` — one worker
process per attempt under the full :class:`~repro.config.SweepSupervision`
net (wall-clock timeouts, retries with deterministic backoff) — so a
shard killed mid-job is retried, not lost.  The ``"inline"`` backend
calls :func:`~repro.runner.runner.execute` directly in the thread; it
trades isolation for speed and exists for dense scheduler tests.

Service throughput/dedup counters land in the :mod:`repro.metrics`
registry (``service_requests_total``, ``service_jobs_total{state=...}``)
next to the artifact store's ``cache_ops_total`` family.

Synchronous callers (CLI, tests) use :func:`serve_requests`, which runs
an event loop for the duration of a batch of requests::

    jobs_a = [SimJob(fn, config, {"iteration_count": n}) for n in grid]
    jobs_b = jobs_a[1:] + extra          # overlaps with request A
    results_a, results_b = serve_requests([jobs_a, jobs_b], cache=cache)
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..config import ServiceConfig, SweepSupervision
from ..metrics.registry import MetricsRegistry, get_registry
from .cache import ResultCache
from .journal import SweepJournal
from .runner import execute
from .supervisor import JobFailure, run_supervised

__all__ = ["ServiceError", "SweepService", "serve_requests"]

#: ``service_jobs_total`` label values, in manifest order.
JOB_STATES = ("dispatched", "attached", "cache_hit", "completed", "failed")


class ServiceError(RuntimeError):
    """Misuse of the sweep service (not a job failure)."""


class SweepService:
    """Asyncio job scheduler with content-hash dedup and shard workers.

    Parameters
    ----------
    cache:
        Shared artifact store.  ``None`` disables both the hit fast-path
        and the write-through — every submitted key then dispatches
        (dedup still holds *within* the service's lifetime, but repeats
        across completed requests re-execute).
    policy:
        Supervision policy for the ``"supervised"`` backend; defaults to
        :meth:`SweepSupervision.from_env`.
    service:
        Shape record; individual keyword arguments below override its
        fields.
    shards / execution:
        Overrides for :class:`~repro.config.ServiceConfig` fields.
    journal:
        Optional :class:`~repro.runner.journal.SweepJournal`; completed
        and failed points are checkpointed as they settle, keyed by the
        same content hash as the cache.
    metrics:
        Registry for service counters (default: the process registry).

    Use as an async context manager, or call :meth:`start` / await
    :meth:`close` explicitly.  :meth:`submit` may be called from any
    number of tasks on the service's event loop.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        *,
        policy: Optional[SweepSupervision] = None,
        service: Optional[ServiceConfig] = None,
        shards: Optional[int] = None,
        execution: Optional[str] = None,
        journal: Optional[SweepJournal] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        shape = service if service is not None else ServiceConfig()
        if shards is not None:
            shape = shape.replace(shards=shards)
        if execution is not None:
            shape = shape.replace(execution=execution)
        self.config = shape
        self.cache = cache
        self.policy = (
            policy if policy is not None else SweepSupervision.from_env()
        )
        self.journal = journal
        self.registry = metrics if metrics is not None else get_registry()
        #: Plain-int mirror of the labeled counters, for cheap asserts
        #: and manifests: one slot per :data:`JOB_STATES` plus requests.
        self.stats: Dict[str, int] = {state: 0 for state in JOB_STATES}
        self.stats["requests"] = 0
        help_text = "Sweep-service job dispositions by state."
        self._m_jobs = {
            state: self.registry.counter(
                "service_jobs_total", help_text, state=state
            )
            for state in JOB_STATES
        }
        self._m_requests = self.registry.counter(
            "service_requests_total", "Sweep requests accepted."
        )
        self._m_inflight = self.registry.gauge(
            "service_inflight_jobs",
            "Unique jobs awaiting a shard or executing.",
        )
        # One in-flight future per job key; owned by the loop thread.
        self._inflight: Dict[str, asyncio.Future] = {}
        self._queue: Optional[asyncio.Queue] = None
        self._shard_tasks: List[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._journal_seq = 0
        self._started = False
        self._closed = False

    # -- lifecycle ----------------------------------------------------- #
    async def __aenter__(self) -> "SweepService":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    async def start(self) -> None:
        """Spin up the dispatch queue and shard tasks (idempotent)."""
        if self._started:
            return
        if self._closed:
            raise ServiceError("service already closed")
        self._queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.shards,
            thread_name_prefix="repro-shard",
        )
        self._shard_tasks = [
            asyncio.create_task(self._shard_loop(i), name=f"shard-{i}")
            for i in range(self.config.shards)
        ]
        self._started = True

    async def close(self) -> None:
        """Drain queued work, stop the shards, release the thread pool."""
        if not self._started or self._closed:
            self._closed = True
            return
        for _ in self._shard_tasks:
            await self._queue.put(None)  # one stop token per shard
        await asyncio.gather(*self._shard_tasks)
        self._executor.shutdown(wait=True)
        if self.journal is not None:
            self.journal.flush()
        self._closed = True

    # -- request path -------------------------------------------------- #
    def _key_for(self, job: Any) -> str:
        version = (
            self.cache.code_version if self.cache is not None else None
        )
        return _job_key_for(job, version)

    async def submit(self, jobs: Sequence[Any]) -> List[Any]:
        """Run one sweep request; returns results in job order.

        Each job resolves to exactly one of: an artifact-store hit, an
        attachment to a future some concurrent request already opened,
        or a fresh dispatch.  Failed jobs come back as
        :class:`~repro.runner.supervisor.JobFailure` slots (graceful
        mode — a request never aborts siblings); inline-backend
        exceptions propagate to every subscriber of the failed key.
        """
        if not self._started:
            await self.start()
        if self._closed:
            raise ServiceError("service already closed")
        self._m_requests.inc()
        self.stats["requests"] += 1
        loop = asyncio.get_running_loop()
        futures: List[asyncio.Future] = []
        for job in jobs:
            key = self._key_for(job)
            future = self._inflight.get(key)
            if future is not None:
                self._note("attached")
                futures.append(future)
                continue
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                self._note("cache_hit")
                future = loop.create_future()
                future.set_result(hit)
                futures.append(future)
                continue
            future = loop.create_future()
            self._inflight[key] = future
            self._m_inflight.set(len(self._inflight))
            self._note("dispatched")
            await self._queue.put((key, job, future))
            futures.append(future)
        return list(await asyncio.gather(*futures))

    def _note(self, state: str) -> None:
        self.stats[state] += 1
        self._m_jobs[state].inc()

    # -- shard side ---------------------------------------------------- #
    def _run_one(self, job: Any) -> Any:
        """Execute one job on a shard thread; returns result or JobFailure."""
        if self.config.execution == "inline":
            return execute(job)
        outcome = run_supervised(
            [job],
            workers=1,
            cache=None,  # the service owns store reads/writes
            policy=self.policy,
            metrics=self.registry,
        )
        return outcome.results[0]

    async def _shard_loop(self, shard_id: int) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            key, job, future = item
            try:
                result = await loop.run_in_executor(
                    self._executor, self._run_one, job
                )
            except Exception as exc:  # inline backend raised
                self._settle(key, future, exc, failed=True)
            else:
                self._settle(key, future, result,
                             failed=isinstance(result, JobFailure))
            finally:
                self._queue.task_done()

    def _settle(
        self, key: str, future: asyncio.Future, result: Any, *, failed: bool
    ) -> None:
        """Resolve a dispatched key: store, journal, wake subscribers.

        Runs on the loop thread (shard coroutine), so the in-flight map
        mutation and the future resolution are atomic with respect to
        :meth:`submit` — a request observing the key gone will find the
        artifact in the store.
        """
        if failed:
            self._note("failed")
            if isinstance(result, JobFailure) and self.journal is not None:
                self.journal.record_failure(
                    key, self._journal_seq, result.to_dict()
                )
                self._journal_seq += 1
        else:
            if self.cache is not None:
                # put() returns the JSON round trip — hand *that* to
                # subscribers so a fresh run and a later store hit are
                # type-identical.
                result = self.cache.put(key, result)
            if self.journal is not None:
                self.journal.record_result(key, self._journal_seq, result)
                self._journal_seq += 1
            self._note("completed")
        self._inflight.pop(key, None)
        self._m_inflight.set(len(self._inflight))
        if not future.done():
            if isinstance(result, BaseException):
                future.set_exception(result)
            else:
                future.set_result(result)

    # -- manifests ----------------------------------------------------- #
    def manifest(self) -> Dict[str, Any]:
        """Counter snapshot for answer files and smoke jobs."""
        out: Dict[str, Any] = {"shards": self.config.shards,
                               "execution": self.config.execution,
                               **{k: self.stats[k] for k in sorted(self.stats)}}
        if self.cache is not None:
            out["cache"] = {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "quarantined": self.cache.quarantined,
                "max_entries": self.cache.max_entries,
                "max_bytes": self.cache.max_bytes,
            }
        return out


def _job_key_for(job: Any, version: Optional[str]) -> str:
    from .cache import job_key

    return job_key(
        job.fn,
        job.resolved_config(),
        job.params,
        job.seed,
        version=version,
    )


def serve_requests(
    requests: Iterable[Sequence[Any]],
    *,
    cache: Optional[ResultCache] = None,
    policy: Optional[SweepSupervision] = None,
    service: Optional[ServiceConfig] = None,
    shards: Optional[int] = None,
    execution: Optional[str] = None,
    journal: Optional[SweepJournal] = None,
    metrics: Optional[MetricsRegistry] = None,
    stagger_s: float = 0.0,
) -> Tuple[List[List[Any]], Dict[str, Any]]:
    """Run concurrent sweep requests to completion on a private loop.

    Returns ``(per-request result lists, service manifest)``.  Requests
    are submitted concurrently (optionally ``stagger_s`` apart, to
    exercise late-subscriber attachment deterministically); overlapping
    grid points are deduped across them by content hash.
    """
    request_list = [list(jobs) for jobs in requests]

    async def _main() -> Tuple[List[List[Any]], Dict[str, Any]]:
        async with SweepService(
            cache,
            policy=policy,
            service=service,
            shards=shards,
            execution=execution,
            journal=journal,
            metrics=metrics,
        ) as svc:

            async def _one(index: int, jobs: Sequence[Any]) -> List[Any]:
                if stagger_s and index:
                    await asyncio.sleep(stagger_s * index)
                return await svc.submit(jobs)

            results = await asyncio.gather(
                *(_one(i, jobs) for i, jobs in enumerate(request_list))
            )
            manifest = svc.manifest()
        return list(results), manifest

    return asyncio.run(_main())

"""Experiment runner: parallel sweep fan-out, result caching, benchmarks.

Public surface::

    from repro.runner import SimJob, run_jobs, ResultCache

    jobs = [SimJob(fn="repro.runner.workloads.fig10_point",
                   config=cfg, params={"kind": "tpc", "iteration_count": n})
            for n in (1, 2, 3, 4, 5)]
    rows = run_jobs(jobs, workers=4, cache=ResultCache())

Fault tolerance (``repro.runner.supervisor``) engages via keyword
arguments on :func:`run_jobs` — per-job timeouts, bounded retries with
deterministic backoff, crash isolation, journal checkpointing and
resume::

    rows = run_jobs(jobs, cache=ResultCache(), timeout_s=300, retries=2,
                    strict=False, journal="sweep.jsonl", resume=True)

and is drilled end-to-end by the chaos harness
(:func:`repro.runner.chaos.run_chaos`, ``python -m repro chaos``).

The service shape (``repro.runner.service`` + ``repro.runner.surface``)
stacks an asyncio scheduler on the same primitives: concurrent sweep
requests are content-hash-deduped against one in-flight future per
:func:`job_key`, dispatched to supervised shard workers, written through
the (optionally size-bounded, LRU-evicting) :class:`ResultCache`, and
served back as interpolated capacity surfaces::

    results, manifest = serve_requests([jobs_a, jobs_b], cache=ResultCache())
    surface = CapacitySurface.from_rows(results[0])
    surface.predict(iterations=3)   # -> Prediction(bandwidth, error, ...)
"""

from .bench import bench_engine
from .cache import ResultCache, code_version, job_key
from .chaos import ChaosReport, run_chaos
from .journal import SweepJournal, load_journal
from .runner import (
    SimJob,
    execute,
    merge_metrics,
    merge_telemetry,
    resolve,
    run_jobs,
)
from .service import ServiceError, SweepService, serve_requests
from .supervisor import (
    JobFailure,
    SweepError,
    SweepOutcome,
    run_supervised,
)
from .surface import CapacitySurface, Prediction, StaleSurfaceError

__all__ = [
    "CapacitySurface",
    "ChaosReport",
    "JobFailure",
    "Prediction",
    "ResultCache",
    "ServiceError",
    "SimJob",
    "StaleSurfaceError",
    "SweepError",
    "SweepJournal",
    "SweepOutcome",
    "SweepService",
    "bench_engine",
    "code_version",
    "execute",
    "job_key",
    "load_journal",
    "merge_metrics",
    "merge_telemetry",
    "resolve",
    "run_chaos",
    "run_jobs",
    "run_supervised",
    "serve_requests",
]

"""Experiment runner: parallel sweep fan-out, result caching, benchmarks.

Public surface::

    from repro.runner import SimJob, run_jobs, ResultCache

    jobs = [SimJob(fn="repro.runner.workloads.fig10_point",
                   config=cfg, params={"kind": "tpc", "iteration_count": n})
            for n in (1, 2, 3, 4, 5)]
    rows = run_jobs(jobs, workers=4, cache=ResultCache())
"""

from .bench import bench_engine
from .cache import ResultCache, code_version
from .runner import SimJob, execute, merge_telemetry, resolve, run_jobs

__all__ = [
    "SimJob",
    "ResultCache",
    "bench_engine",
    "code_version",
    "execute",
    "merge_telemetry",
    "resolve",
    "run_jobs",
]

"""Supervised, fault-tolerant sweep execution.

The legacy ``Pool.imap_unordered`` path in :func:`repro.runner.run_jobs`
treats the sweep as an all-or-nothing batch: one worker exception aborts
every sibling, a hung worker stalls the pool forever, and a crash
(segfault, OOM kill, ``os._exit``) tears the pool down mid-flight.  This
module replaces it with *per-job supervision*, the way a job scheduler
babysits training runs:

* **One process per attempt.**  Each job attempt runs in its own worker
  process that reports back over a pipe.  A worker that dies without
  reporting — killed, segfaulted, ``os._exit`` — is detected by pipe EOF
  and its exit code, and harms nobody else.
* **Wall-clock timeouts.**  A worker that has not reported within
  ``policy.timeout_s`` is terminated (SIGTERM, then SIGKILL) and the job
  is rescheduled.
* **Bounded retries with deterministic backoff.**  Failed attempts are
  re-queued up to ``policy.max_attempts`` with exponential backoff whose
  jitter derives from the job's content-hash key and attempt number —
  replaying a sweep schedules retries identically, no wall-clock entropy.
* **Graceful degradation.**  A job whose attempts are exhausted becomes a
  structured :class:`JobFailure` *in the results list*; healthy jobs
  complete normally and the sweep returns a full failure manifest.
  Callers that want the old semantics opt into strict mode
  (``run_jobs(..., strict=True)`` raises :class:`SweepError` at the end,
  after every healthy job has finished and been checkpointed).
* **Durable progress.**  With a :class:`~repro.runner.journal.SweepJournal`
  attached, every completed point is checkpointed as it arrives (and
  cache puts are write-through), so a crash or Ctrl-C costs only the
  points that were literally in flight.

The supervision state machine per job::

    QUEUED -> RUNNING -> done        (worker reported a result)
                      -> exception   -\\
                      -> timeout      }-> retry (backoff) or JobFailure
                      -> worker-death -/
"""

from __future__ import annotations

import collections
import hashlib
import heapq
import itertools
import multiprocessing
import multiprocessing.connection
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..config import SweepSupervision
from ..metrics.registry import MetricsRegistry, get_registry
from .cache import ResultCache, job_key
from .journal import SweepJournal

#: Failure kinds reported by the supervisor.
FAILURE_KINDS = ("exception", "timeout", "worker-death")


@dataclass
class JobFailure:
    """Structured record of a job whose attempts were all exhausted.

    Appears *in place* of the job's result in the sweep results list (in
    graceful mode), in the sweep journal, and in the failure manifest.
    """

    index: int
    fn: str
    key: str
    #: Kind of the final failed attempt (one of :data:`FAILURE_KINDS`).
    kind: str
    message: str
    attempts: int
    #: Per-attempt records: ``{"attempt", "kind", "message", ...}``.
    history: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "fn": self.fn,
            "key": self.key,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
            "history": list(self.history),
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JobFailure(job {self.index}, {self.kind} after "
            f"{self.attempts} attempt(s): {self.message})"
        )


class SweepError(RuntimeError):
    """Raised in strict mode when a sweep finishes with failed jobs.

    Raised only *after* the sweep has run to completion — every healthy
    job's result has been cached and journaled, so a strict failure is
    still resumable.
    """

    def __init__(self, failures: Sequence[JobFailure],
                 results: Sequence[Any]) -> None:
        self.failures = list(failures)
        self.results = list(results)
        first = self.failures[0]
        super().__init__(
            f"{len(self.failures)} of {len(results)} sweep job(s) failed; "
            f"first: {first.kind} on job {first.index} after "
            f"{first.attempts} attempt(s): {first.message}"
        )


@dataclass
class SweepOutcome:
    """Everything a supervised sweep produced.

    ``results`` is in job order; failed slots hold :class:`JobFailure`
    instances.  ``counters`` aggregates supervision events (attempts,
    retries, per-kind failures, cache/journal replays) and is folded into
    the telemetry-style :meth:`manifest`.
    """

    results: List[Any]
    failures: List[JobFailure]
    counters: Dict[str, int]
    quarantines: List[Dict[str, Any]] = field(default_factory=list)
    journal_path: Optional[str] = None
    #: Indices of jobs that executed *fresh* this run and succeeded —
    #: cache hits, journal replays and failed slots excluded.  Telemetry
    #: and metrics aggregation over "fresh, healthy points" keys on this.
    fresh: List[int] = field(default_factory=list)
    #: Labeled metrics manifest of the sweep (``repro.metrics`` shape),
    #: mergeable across shards via ``MetricsRegistry.merge_manifest``.
    metrics: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def manifest(self) -> Dict[str, Any]:
        """JSON-ready supervision summary (the failure manifest)."""
        return {
            "jobs": len(self.results),
            "ok": self.ok,
            "counters": dict(self.counters),
            "fresh": len(self.fresh),
            "failures": [failure.to_dict() for failure in self.failures],
            "quarantines": list(self.quarantines),
            "journal": self.journal_path,
            "metrics": self.metrics,
        }


def backoff_delay(policy: SweepSupervision, key: str, attempt: int) -> float:
    """Backoff before retrying ``attempt`` (1-based) of the job ``key``.

    Exponential in the attempt number, capped, with *deterministic*
    jitter: the jitter fraction is read off a SHA-256 of the job key and
    attempt, so two runs of the same sweep produce the same schedule
    while distinct jobs still decorrelate (no thundering-herd retry).
    """
    delay = min(
        policy.backoff_base_s * policy.backoff_factor ** (attempt - 1),
        policy.backoff_max_s,
    )
    if policy.backoff_jitter:
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:4], "big") / 2 ** 32
        delay *= 1.0 + policy.backoff_jitter * fraction
    return delay


def _attempt_main(conn, job) -> None:
    """Worker-process entry: run one attempt, report over the pipe.

    Catches ``BaseException`` so even ``SystemExit``/``KeyboardInterrupt``
    raised by a workload come back as structured failures; only a death
    that bypasses Python entirely (``os._exit``, signals, segfaults)
    reaches the parent as a bare pipe EOF.
    """
    from .runner import execute

    try:
        result = execute(job)
        message = ("ok", result)
    except BaseException as exc:  # noqa: BLE001 - crash isolation boundary
        message = (
            "error",
            type(exc).__name__,
            str(exc),
            traceback.format_exc(),
        )
    try:
        conn.send(message)
    finally:
        conn.close()


def _kill(process) -> None:
    """Terminate a worker process, escalating to SIGKILL if needed."""
    if not process.is_alive():
        process.join()
        return
    process.terminate()
    process.join(0.5)
    if process.is_alive():
        process.kill()
        process.join(0.5)


@dataclass
class _Attempt:
    """One in-flight worker process."""

    index: int
    job: Any
    key: str
    attempt: int
    history: List[Dict[str, Any]]
    process: Any
    conn: Any
    started: float
    deadline: Optional[float]


def run_supervised(
    jobs: Sequence[Any],
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    *,
    policy: Optional[SweepSupervision] = None,
    journal: Optional[SweepJournal] = None,
    resume: bool = False,
    mp_context=None,
    on_event: Optional[Callable[[str, Dict[str, Any]], None]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> SweepOutcome:
    """Run a sweep under per-job supervision; never aborts on one job.

    Results come back in job order; a job whose attempts are exhausted
    yields a :class:`JobFailure` in its slot (callers wanting a raise use
    :func:`repro.runner.run_jobs` with ``strict=True``).  With a
    ``journal``, completed points are checkpointed as they arrive and —
    with ``resume=True`` — points already completed by a previous run are
    replayed without execution.  Cache puts are write-through.  On
    ``KeyboardInterrupt`` (or any other escaping exception, including one
    raised by ``progress``) every in-flight worker is killed and the
    journal is flushed before the exception propagates.

    ``on_event`` receives fine-grained supervision events — ``launch``,
    ``ok``, ``fail``, ``cache-hit``, ``replay`` — each with a small info
    dict (``index``, plus ``attempt``/``retry``/``kind`` where they
    apply); :class:`repro.metrics.SweepProgress` plugs in here.  Labeled
    supervision metrics are recorded into ``metrics`` when given; when
    not, a private registry is used and folded into the process default
    (:func:`repro.metrics.get_registry`) on completion, and the manifest
    lands on :attr:`SweepOutcome.metrics` either way.
    """
    policy = policy or SweepSupervision.from_env()
    total = len(jobs)
    results: List[Any] = [None] * total
    failures: Dict[int, JobFailure] = {}
    counters: collections.Counter = collections.Counter()
    fresh: List[int] = []
    done = 0

    registry = metrics if metrics is not None else MetricsRegistry()
    m_completed = registry.counter("sweep_jobs_total", state="completed")
    m_failed = registry.counter("sweep_jobs_total", state="failed")
    m_cache_hit = registry.counter("sweep_jobs_total", state="cache_hit")
    m_replayed = registry.counter(
        "sweep_jobs_total",
        "Sweep jobs by terminal state (completed/failed) or skip "
        "reason (cache_hit/journal_replay).",
        state="journal_replay",
    )
    m_attempts = registry.counter(
        "sweep_attempts_total", "Worker processes launched."
    )
    m_attempt_failures = {
        kind: registry.counter(
            "sweep_attempt_failures_total",
            "Failed attempts by kind (terminal or retried).",
            kind=kind,
        )
        for kind in FAILURE_KINDS
    }
    m_retries = registry.counter(
        "sweep_retries_total", "Attempts re-queued after a failure."
    )
    m_backoff = registry.sampler(
        "sweep_backoff_seconds", "Retry backoff delays scheduled."
    )
    m_lifetime = registry.sampler(
        "sweep_worker_lifetime_seconds",
        "Wall-clock lifetime of finished worker processes.",
    )
    m_quarantined = registry.counter(
        "sweep_quarantined_total", "Cache entries quarantined this sweep."
    )
    m_workers = registry.gauge(
        "sweep_workers", "Worker slots used by this sweep."
    )

    def emit(event: str, **info: Any) -> None:
        if on_event is not None:
            on_event(event, info)

    def report() -> None:
        if progress is not None:
            progress(done, total)

    version = cache.code_version if cache is not None else None
    keys = [
        job_key(job.fn, job.resolved_config(), job.params, version=version)
        for job in jobs
    ]

    quarantine_base = cache.quarantined if cache is not None else 0

    replayed: Dict[str, Any] = {}
    if journal is not None and resume:
        replayed = journal.completed()

    pending: List[int] = []
    for index in range(total):
        key = keys[index]
        if key in replayed:
            results[index] = replayed[key]
            counters["journal_replays"] += 1
            m_replayed.inc()
            done += 1
            emit("replay", index=index)
            report()
            continue
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                results[index] = hit
                counters["cache_hits"] += 1
                m_cache_hit.inc()
                done += 1
                emit("cache-hit", index=index)
                report()
                continue
        pending.append(index)

    if journal is not None:
        journal.record_begin(
            total,
            meta={
                "pending": len(pending),
                "replayed": counters["journal_replays"],
                "resume": resume,
            },
        )

    def finish_success(attempt: _Attempt, result: Any) -> None:
        nonlocal done
        if cache is not None:
            result = cache.put(attempt.key, result)
        results[attempt.index] = result
        fresh.append(attempt.index)
        elapsed = time.monotonic() - attempt.started
        m_completed.inc()
        m_lifetime.add(elapsed)
        done += 1
        if journal is not None:
            journal.record_result(attempt.key, attempt.index, result)
        emit(
            "ok",
            index=attempt.index,
            attempt=attempt.attempt,
            elapsed_s=round(elapsed, 4),
        )
        report()

    if pending:
        if workers is None:
            workers = min(len(pending), multiprocessing.cpu_count())
        workers = max(1, workers)
        m_workers.set(workers)
        ctx = mp_context or multiprocessing.get_context()

        queue: collections.deque = collections.deque(
            (index, 1, []) for index in pending
        )
        waiting: List = []  # heap of (ready_time, seq, queue entry)
        inflight: Dict[Any, _Attempt] = {}
        sequence = itertools.count()

        def finish_failure(attempt: _Attempt, kind: str,
                           message: str, detail: str = "") -> None:
            nonlocal done
            counters[f"failures_{kind.replace('-', '_')}"] += 1
            m_attempt_failures[kind].inc()
            elapsed = time.monotonic() - attempt.started
            m_lifetime.add(elapsed)
            record = {
                "attempt": attempt.attempt,
                "kind": kind,
                "message": message,
                "elapsed_s": round(elapsed, 4),
            }
            if detail:
                record["detail"] = detail
            attempt.history.append(record)
            if attempt.attempt < policy.max_attempts:
                counters["retries"] += 1
                m_retries.inc()
                delay = backoff_delay(policy, attempt.key, attempt.attempt)
                m_backoff.add(delay)
                ready = time.monotonic() + delay
                heapq.heappush(waiting, (
                    ready, next(sequence),
                    (attempt.index, attempt.attempt + 1, attempt.history),
                ))
                emit(
                    "fail",
                    index=attempt.index,
                    attempt=attempt.attempt,
                    kind=kind,
                    retry=True,
                    message=message,
                )
                return
            failure = JobFailure(
                index=attempt.index,
                fn=attempt.job.fn,
                key=attempt.key,
                kind=kind,
                message=message,
                attempts=attempt.attempt,
                history=attempt.history,
            )
            failures[attempt.index] = failure
            results[attempt.index] = failure
            m_failed.inc()
            done += 1
            if journal is not None:
                journal.record_failure(
                    failure.key, failure.index, failure.to_dict()
                )
            emit(
                "fail",
                index=attempt.index,
                attempt=attempt.attempt,
                kind=kind,
                retry=False,
                message=message,
            )
            report()

        def launch(index: int, attempt_no: int,
                   history: List[Dict[str, Any]]) -> None:
            job = jobs[index]
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_attempt_main, args=(send_conn, job), daemon=True
            )
            process.start()
            send_conn.close()
            now = time.monotonic()
            deadline = (
                now + policy.timeout_s if policy.timeout_s is not None
                else None
            )
            inflight[recv_conn] = _Attempt(
                index=index, job=job, key=keys[index], attempt=attempt_no,
                history=history, process=process, conn=recv_conn,
                started=now, deadline=deadline,
            )
            counters["attempts"] += 1
            m_attempts.inc()
            emit("launch", index=index, attempt=attempt_no)

        try:
            while queue or waiting or inflight:
                now = time.monotonic()
                while waiting and waiting[0][0] <= now:
                    _, _, entry = heapq.heappop(waiting)
                    queue.append(entry)
                while queue and len(inflight) < workers:
                    launch(*queue.popleft())
                if not inflight:
                    if waiting:
                        pause = waiting[0][0] - time.monotonic()
                        if pause > 0:
                            time.sleep(min(pause, 0.05))
                    continue

                timeout = 0.05
                deadlines = [
                    attempt.deadline for attempt in inflight.values()
                    if attempt.deadline is not None
                ]
                if deadlines:
                    timeout = min(timeout, max(0.0, min(deadlines) - now))
                if waiting:
                    timeout = min(timeout, max(0.0, waiting[0][0] - now))
                ready = multiprocessing.connection.wait(
                    list(inflight), timeout=timeout
                )

                for conn in ready:
                    attempt = inflight.pop(conn)
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        message = None
                    conn.close()
                    attempt.process.join(5)
                    if message is None:
                        code = attempt.process.exitcode
                        finish_failure(
                            attempt, "worker-death",
                            f"worker exited with code {code} before "
                            f"reporting a result",
                        )
                    elif message[0] == "ok":
                        finish_success(attempt, message[1])
                    else:
                        _, exc_type, exc_message, tb = message
                        finish_failure(
                            attempt, "exception",
                            f"{exc_type}: {exc_message}", detail=tb,
                        )

                now = time.monotonic()
                for conn, attempt in list(inflight.items()):
                    if attempt.deadline is not None and now >= attempt.deadline:
                        inflight.pop(conn)
                        _kill(attempt.process)
                        conn.close()
                        finish_failure(
                            attempt, "timeout",
                            f"no result within {policy.timeout_s:g}s; "
                            f"worker killed",
                        )
        except BaseException:
            # Deterministic teardown: no orphan workers, no lost progress.
            for attempt in inflight.values():
                _kill(attempt.process)
                attempt.conn.close()
            inflight.clear()
            if journal is not None:
                journal.flush()
            raise

    if journal is not None:
        journal.flush()

    quarantines: List[Dict[str, Any]] = []
    if cache is not None and cache.quarantined > quarantine_base:
        quarantines = list(cache.quarantines[quarantine_base:])
        counters["quarantined"] = len(quarantines)
        m_quarantined.inc(len(quarantines))

    if metrics is None:
        # No caller-owned registry: make the sweep visible process-wide
        # (``python -m repro metrics`` reads the default registry).
        get_registry().merge(registry)

    return SweepOutcome(
        results=results,
        failures=[failures[index] for index in sorted(failures)],
        counters=dict(counters),
        quarantines=quarantines,
        journal_path=str(journal.path) if journal is not None else None,
        fresh=fresh,
        metrics=registry.to_manifest(),
    )

"""Picklable, cacheable workload functions for the experiment runner.

Each function here is one *sweep point*: it takes a
:class:`~repro.config.GpuConfig` plus keyword parameters, runs a complete
simulation, and returns a plain JSON-serialisable dict.  They exist as
module-level functions (rather than closures inside the figure builders)
so :class:`~repro.runner.runner.SimJob` can reference them by dotted path
for multiprocessing dispatch and content-hash caching.
"""

from __future__ import annotations

import random
from typing import Any, Dict

from ..config import GpuConfig


def _build_channel(config: GpuConfig, kind: str, params: Any = None):
    from ..channel.gpc_channel import GpcCovertChannel
    from ..channel.tpc_channel import TpcCovertChannel

    builders = {
        "tpc": lambda p: TpcCovertChannel(config, params=p),
        "multi-tpc": lambda p: TpcCovertChannel.all_channels(config, params=p),
        "gpc": lambda p: GpcCovertChannel(config, params=p),
        "multi-gpc": lambda p: GpcCovertChannel.all_channels(config, params=p),
    }
    if kind not in builders:
        raise ValueError(f"unknown channel kind {kind!r}")
    return builders[kind](params)


def _measure(channel, payload_bits: int, seed: int) -> Dict[str, Any]:
    rng = random.Random(seed)
    bits = [rng.randint(0, 1) for _ in range(payload_bits)]
    channel.calibrate(training_symbols=16)
    result = channel.transmit(bits)
    return {
        "cycles": result.cycles,
        "error_rate": result.error_rate,
        "bandwidth_bps": result.bandwidth_bps,
        "bandwidth_mbps": result.bandwidth_mbps,
    }


def fig10_point(
    config: GpuConfig,
    kind: str,
    iteration_count: int,
    bits_per_channel: int = 10,
    seed: int = 1021,
) -> Dict[str, Any]:
    """One Figure 10 point: bandwidth + error at one iteration count.

    Mirrors :func:`repro.analysis.figures.fig10_panel` exactly (same
    seed-salt discipline), so a runner-backed sweep reproduces the same
    numbers as the sequential builder.
    """
    probe = _build_channel(config, kind)
    params = probe.params.with_(iterations=iteration_count)
    channel = _build_channel(config, kind, params)
    channel.seed_salt = seed
    payload = bits_per_channel * channel.num_channels
    measured = _measure(channel, payload, seed)
    return {
        "iterations": iteration_count,
        "bandwidth_kbps": measured["bandwidth_bps"] / 1e3,
        "error_rate": measured["error_rate"],
    }


_TABLE2_CASES = {
    "tpc": "GPU TPC Channel",
    "multi-tpc": "GPU TPC Channel (all TPCs)",
    "gpc": "GPU GPC Channel",
    "multi-gpc": "GPU GPC Channel (all GPCs)",
}


def table2_point(
    config: GpuConfig,
    kind: str,
    bits_per_channel: int = 12,
    seed: int = 2021,
) -> Dict[str, Any]:
    """One Table 2 row: measured summary for one covert channel."""
    channel = _build_channel(config, kind)
    channel.seed_salt = seed
    payload = bits_per_channel * channel.num_channels
    measured = _measure(channel, payload, seed)
    return {
        "channel": _TABLE2_CASES[kind],
        "error_rate": measured["error_rate"],
        "bandwidth_mbps": measured["bandwidth_mbps"],
    }


def channel_run(
    config: GpuConfig,
    kind: str = "tpc",
    num_bits: int = 24,
    seed: int = 7,
) -> Dict[str, Any]:
    """Generic seeded channel transmission (used by examples/benchmarks)."""
    channel = _build_channel(config, kind)
    return _measure(channel, num_bits, seed)


def link_channel_point(
    config: GpuConfig,
    iteration_count: int = 2,
    bits: int = 16,
    seed: int = 3021,
    num_devices: int = 2,
    topology: str = "ring",
    link_width: int = 4,
    link_latency: int = 150,
    target_device: int = 1,
) -> Dict[str, Any]:
    """One NVLink-channel sweep point: bandwidth + error at one
    iteration count over a multi-GPU fabric.

    The fabric shape arrives as plain keyword parameters (not a
    :class:`~repro.config.LinkConfig`) so the job stays picklable and
    its cache key remains a flat parameter dict.
    """
    from ..channel.link_channel import LinkCovertChannel
    from ..config import LinkConfig

    link = LinkConfig(
        num_devices=num_devices,
        topology=topology,
        link_width=link_width,
        link_latency=link_latency,
    )
    probe = LinkCovertChannel(config, link, target_device=target_device)
    params = probe.params.with_(iterations=iteration_count)
    channel = LinkCovertChannel(
        config, link, params=params,
        seed_salt=seed, target_device=target_device,
    )
    measured = _measure(channel, bits, seed)
    return {
        "iterations": iteration_count,
        "topology": topology,
        "num_devices": num_devices,
        "bandwidth_kbps": measured["bandwidth_bps"] / 1e3,
        "error_rate": measured["error_rate"],
        "cycles": measured["cycles"],
    }


def service_probe_point(
    config: GpuConfig,
    token: str = "probe",
    value: float = 0.0,
    ledger_dir: str | None = None,
    delay_s: float = 0.0,
) -> Dict[str, Any]:
    """Deterministic no-simulation point for scheduler tests.

    Computes a cheap pure function of its parameters (so two subscribers
    can compare full payloads), optionally sleeps ``delay_s`` to hold a
    shard busy, and — when ``ledger_dir`` is given — appends one line to
    ``<ledger_dir>/<token>.log``.  The ledger is the execution count
    ground truth the property-based dedup tests assert on: a key that
    executed exactly once has exactly one line, regardless of how many
    requests subscribed to it.
    """
    import hashlib
    import os
    import time

    if delay_s > 0:
        time.sleep(delay_s)
    digest = hashlib.sha256(
        f"{token}:{value}:{config.seed}".encode()
    ).hexdigest()
    if ledger_dir is not None:
        os.makedirs(ledger_dir, exist_ok=True)
        path = os.path.join(ledger_dir, f"{token}.log")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(f"{digest}\n")
    return {
        "token": token,
        "value": value,
        "seed": config.seed,
        "digest": digest,
    }

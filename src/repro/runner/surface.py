"""Capacity-surface query layer over completed sweeps.

The paper's headline numbers (Fig. 10 bandwidth/error, Table 2 capacity)
are points on a ``config → (bandwidth, error)`` surface.  Once a sweep
has filled the artifact store, re-simulating to answer "what would the
channel do at N iterations?" is wasted compute — the answer is an
interpolation over points already paid for.  :class:`CapacitySurface`
is that read path:

* :meth:`add` / :meth:`from_rows` ingest completed sweep rows keyed by
  the swept parameters (the *axes*, e.g. ``("iterations",)``), pooling
  repeated samples per coordinate (seed sweeps);
* :meth:`predict` answers a query config with a
  :class:`Prediction` — exact-point mean, piecewise-linear interpolation
  between bracketing grid points (inverse-distance weighting beyond one
  axis), or nearest-point fallback outside the sampled hull — each with
  a ``confidence`` that decays with distance from support;
* a **staleness bound**: the surface records the simulator
  code version it was built under and its build time; by default a
  query against a surface whose code version no longer matches the
  tree (or whose age exceeds ``max_age_s``) raises
  :class:`StaleSurfaceError` rather than serving numbers the current
  simulator might not reproduce.

Query dispositions are counted in the :mod:`repro.metrics` registry as
``surface_queries_total{result=exact|interpolated|nearest}``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..metrics.registry import MetricsRegistry, get_registry
from .cache import code_version

__all__ = [
    "CapacitySurface",
    "Prediction",
    "StaleSurfaceError",
]

#: ``surface_queries_total`` label values / ``Prediction.source`` values.
QUERY_SOURCES = ("exact", "interpolated", "nearest")


class StaleSurfaceError(RuntimeError):
    """The surface no longer describes the current simulator/tree."""


@dataclass(frozen=True)
class Prediction:
    """One answered capacity query."""

    bandwidth_kbps: float
    error_rate: float
    #: 1.0 for exact grid points, decaying with normalized distance from
    #: the supporting points; nearest-point fallbacks cap at 0.5.
    confidence: float
    #: One of :data:`QUERY_SOURCES`.
    source: str
    #: Normalized distance from the query to its nearest support point
    #: (0 for exact hits); the axis scale is each axis's sampled span.
    distance: float
    #: Samples pooled at the supporting coordinate(s).
    samples: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bandwidth_kbps": self.bandwidth_kbps,
            "error_rate": self.error_rate,
            "confidence": self.confidence,
            "source": self.source,
            "distance": self.distance,
            "samples": self.samples,
        }


class CapacitySurface:
    """Interpolated (bandwidth, error) surface over swept parameters.

    ``axes`` names the varied parameters; every ingested row must carry
    them all plus the two metric keys.  Multiple rows at one coordinate
    (a seed sweep) pool into per-coordinate means — :meth:`predict`
    answers with the pooled mean, which is exactly how the golden
    harness aggregates its per-seed samples.
    """

    def __init__(
        self,
        axes: Sequence[str] = ("iterations",),
        *,
        bandwidth_key: str = "bandwidth_kbps",
        error_key: str = "error_rate",
        version: Optional[str] = None,
        built_at: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not axes:
            raise ValueError("a surface needs at least one axis")
        self.axes: Tuple[str, ...] = tuple(axes)
        self.bandwidth_key = bandwidth_key
        self.error_key = error_key
        #: Simulator tree hash the ingested sweeps ran under.
        self.version = version if version is not None else code_version()
        self.built_at = built_at if built_at is not None else time.time()
        #: coordinate -> list of (bandwidth, error) samples.
        self._points: Dict[Tuple[float, ...], List[Tuple[float, float]]] = {}
        registry = metrics if metrics is not None else get_registry()
        help_text = "Capacity-surface queries by answer source."
        self._m_queries = {
            source: registry.counter(
                "surface_queries_total", help_text, result=source
            )
            for source in QUERY_SOURCES
        }
        self._m_points = registry.gauge(
            "surface_points", "Distinct coordinates on the surface."
        )

    # -- ingest -------------------------------------------------------- #
    def _coords(self, params: Mapping[str, Any]) -> Tuple[float, ...]:
        try:
            return tuple(float(params[axis]) for axis in self.axes)
        except KeyError as exc:
            raise KeyError(
                f"query/row is missing surface axis {exc.args[0]!r}; "
                f"axes are {self.axes}"
            ) from None

    def add(self, row: Mapping[str, Any]) -> None:
        """Ingest one completed sweep row (axes + metric keys)."""
        coords = self._coords(row)
        sample = (float(row[self.bandwidth_key]), float(row[self.error_key]))
        self._points.setdefault(coords, []).append(sample)
        self._m_points.set(len(self._points))

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Mapping[str, Any]],
        axes: Sequence[str] = ("iterations",),
        **kwargs: Any,
    ) -> "CapacitySurface":
        surface = cls(axes, **kwargs)
        for row in rows:
            surface.add(row)
        return surface

    def __len__(self) -> int:
        return len(self._points)

    @property
    def coordinates(self) -> List[Tuple[float, ...]]:
        return sorted(self._points)

    def _mean(self, coords: Tuple[float, ...]) -> Tuple[float, float, int]:
        samples = self._points[coords]
        n = len(samples)
        return (
            sum(s[0] for s in samples) / n,
            sum(s[1] for s in samples) / n,
            n,
        )

    # -- staleness ----------------------------------------------------- #
    @property
    def age_s(self) -> float:
        return max(0.0, time.time() - self.built_at)

    def check_fresh(self, max_age_s: Optional[float] = None) -> None:
        """Raise :class:`StaleSurfaceError` if this surface is stale."""
        current = code_version()
        if self.version != current:
            raise StaleSurfaceError(
                f"surface built under code version {self.version}, "
                f"tree is now {current}; re-sweep before serving"
            )
        if max_age_s is not None and self.age_s > max_age_s:
            raise StaleSurfaceError(
                f"surface is {self.age_s:.1f}s old, "
                f"staleness bound is {max_age_s:.1f}s"
            )

    # -- query --------------------------------------------------------- #
    def _spans(self) -> Tuple[float, ...]:
        """Per-axis normalization scale (sampled span, floor 1)."""
        coords = self.coordinates
        spans = []
        for axis_index in range(len(self.axes)):
            values = [c[axis_index] for c in coords]
            spans.append(max(max(values) - min(values), 1.0))
        return tuple(spans)

    def _distance(
        self,
        a: Tuple[float, ...],
        b: Tuple[float, ...],
        spans: Tuple[float, ...],
    ) -> float:
        return sum(
            ((x - y) / span) ** 2 for x, y, span in zip(a, b, spans)
        ) ** 0.5

    def predict(
        self,
        params: Optional[Mapping[str, Any]] = None,
        *,
        allow_stale: bool = False,
        max_age_s: Optional[float] = None,
        **query: Any,
    ) -> Prediction:
        """Answer one capacity query; see the module docstring.

        The query arrives either as a mapping (a config-like dict naming
        every axis) or as keyword arguments; unknown keys are ignored so
        a full result row or config dump can be passed straight through.
        """
        if not self._points:
            raise ValueError("cannot predict from an empty surface")
        if not allow_stale:
            self.check_fresh(max_age_s)
        merged: Dict[str, Any] = dict(params or {})
        merged.update(query)
        target = self._coords(merged)

        if target in self._points:
            bandwidth, error, n = self._mean(target)
            self._m_queries["exact"].inc()
            return Prediction(bandwidth, error, 1.0, "exact", 0.0, n)

        coords = self.coordinates
        spans = self._spans()
        ranked = sorted(
            coords, key=lambda c: self._distance(target, c, spans)
        )
        nearest = ranked[0]
        nearest_distance = self._distance(target, nearest, spans)

        if len(self.axes) == 1:
            prediction = self._predict_1d(target, nearest_distance)
        else:
            prediction = self._predict_nd(
                target, ranked, spans, nearest_distance
            )
        self._m_queries[prediction.source].inc()
        return prediction

    def _predict_1d(
        self, target: Tuple[float, ...], nearest_distance: float
    ) -> Prediction:
        """Piecewise-linear along the single axis; nearest beyond ends."""
        x = target[0]
        xs = [c[0] for c in self.coordinates]
        below = max((v for v in xs if v < x), default=None)
        above = min((v for v in xs if v > x), default=None)
        if below is None or above is None:
            # Outside the sampled hull: clamp to the end point.
            edge = xs[0] if below is None else xs[-1]
            bandwidth, error, n = self._mean((edge,))
            return Prediction(
                bandwidth, error,
                self._fallback_confidence(nearest_distance),
                "nearest", nearest_distance, n,
            )
        lo_bw, lo_err, lo_n = self._mean((below,))
        hi_bw, hi_err, hi_n = self._mean((above,))
        frac = (x - below) / (above - below)
        return Prediction(
            lo_bw + frac * (hi_bw - lo_bw),
            lo_err + frac * (hi_err - lo_err),
            self._interp_confidence(nearest_distance),
            "interpolated", nearest_distance, lo_n + hi_n,
        )

    def _predict_nd(
        self,
        target: Tuple[float, ...],
        ranked: List[Tuple[float, ...]],
        spans: Tuple[float, ...],
        nearest_distance: float,
    ) -> Prediction:
        """Inverse-distance weighting over the nearest 2**dims points."""
        support = ranked[: max(2, 2 ** len(self.axes))]
        if len(support) < 2:
            bandwidth, error, n = self._mean(support[0])
            return Prediction(
                bandwidth, error,
                self._fallback_confidence(nearest_distance),
                "nearest", nearest_distance, n,
            )
        weights, total = [], 0.0
        pooled = 0
        bw_acc = err_acc = 0.0
        for coords in support:
            distance = self._distance(target, coords, spans)
            weight = 1.0 / (distance * distance + 1e-12)
            bandwidth, error, n = self._mean(coords)
            bw_acc += weight * bandwidth
            err_acc += weight * error
            total += weight
            pooled += n
            weights.append(weight)
        return Prediction(
            bw_acc / total, err_acc / total,
            self._interp_confidence(nearest_distance),
            "interpolated", nearest_distance, pooled,
        )

    @staticmethod
    def _interp_confidence(distance: float) -> float:
        return max(0.1, 1.0 - distance)

    @staticmethod
    def _fallback_confidence(distance: float) -> float:
        return min(0.5, max(0.05, 0.5 * (1.0 - distance)))

    # -- (de)serialisation --------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (answers manifests, future daemon mode)."""
        return {
            "axes": list(self.axes),
            "bandwidth_key": self.bandwidth_key,
            "error_key": self.error_key,
            "version": self.version,
            "built_at": self.built_at,
            "points": [
                {
                    "coords": list(coords),
                    "samples": [list(s) for s in samples],
                }
                for coords, samples in sorted(self._points.items())
            ],
        }

    @classmethod
    def from_dict(
        cls,
        payload: Mapping[str, Any],
        *,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "CapacitySurface":
        surface = cls(
            payload["axes"],
            bandwidth_key=payload.get("bandwidth_key", "bandwidth_kbps"),
            error_key=payload.get("error_key", "error_rate"),
            version=payload["version"],
            built_at=payload.get("built_at"),
            metrics=metrics,
        )
        for point in payload["points"]:
            coords = tuple(float(v) for v in point["coords"])
            for bandwidth, error in point["samples"]:
                surface._points.setdefault(coords, []).append(
                    (float(bandwidth), float(error))
                )
        surface._m_points.set(len(surface._points))
        return surface

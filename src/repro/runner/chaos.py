"""Deterministic chaos harness for the supervised sweep runner.

Fault-tolerance code is only trustworthy if the faults it claims to
survive are actually injected and survived, repeatably.  This module
provides both halves:

* :func:`chaos_point` — a sweep workload whose behaviour is *scheduled
  per attempt*: a plan like ``"hang,ok"`` makes the first attempt hang
  (to be killed by the supervisor's timeout) and the second succeed.
  Attempt numbers are tracked in an on-disk ledger (one file per job
  token under ``$REPRO_CHAOS_STATE``) so the schedule survives process
  boundaries — the workload itself stays a pure dotted-path function
  with content-hashable parameters.
* :func:`run_chaos` — the end-to-end drill: build an N-job sweep, seed a
  deterministic mix of fault kinds (transient exceptions, hangs past the
  timeout, worker deaths via ``os._exit``, unserialisable garbage,
  permanent failures), run it supervised, and *verify* the contract:

  1. every healthy job's result is bit-identical to a fault-free
     reference sweep;
  2. jobs that recover via retry produce exactly the fault-free result;
  3. exhausted jobs surface as structured ``JobFailure`` records, and a
     ``resume`` run re-executes only those (journal replays the rest);
  4. corrupted cache entries are quarantined and transparently
     recomputed, bit-identical again.

Everything is seeded: the fault assignment comes from ``random.Random
(seed)``, retry backoff jitter is content-hash derived, and the workload
payloads depend only on (config seed, token) — a chaos run is as
replayable as any other experiment in this repo.

CLI: ``python -m repro chaos [--quick]`` (the CI smoke job runs the
quick budget and uploads the failure manifest).
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..config import GpuConfig, SweepSupervision, small_config
from .cache import ResultCache
from .journal import SweepJournal
from .runner import SimJob
from .supervisor import JobFailure, SweepOutcome, run_supervised

#: Environment variable naming the attempt-ledger directory.  Passed via
#: the environment (not workload params) so it never pollutes the
#: content-hash job keys — two chaos runs with different scratch dirs
#: but the same plan share cache entries and journal records.
CHAOS_STATE_ENV = "REPRO_CHAOS_STATE"

#: Exit code used by the ``exit`` fault (recognisable in manifests).
CHAOS_EXIT_CODE = 41

#: Fault plans, keyed by kind.  Each plan is a comma-separated behaviour
#: schedule consumed one step per attempt (the last step repeats).  The
#: ``fatal-*`` plans outlast the default 3-attempt budget, producing a
#: ``JobFailure`` — and then succeed on the next attempt, which is
#: exactly what a ``--resume`` run should execute.
FAULT_PLANS: Dict[str, str] = {
    "transient-raise": "raise,ok",
    "transient-hang": "hang,ok",
    "transient-exit": "exit,ok",
    "fatal-raise": "raise,raise,raise,ok",
    "fatal-garbage": "garbage,garbage,garbage,ok",
}


def _attempt_number(state_dir: Path, token: str) -> int:
    """Record one attempt for ``token`` and return its 1-based number.

    The ledger is a file that grows by one byte per attempt; append +
    ``tell`` is atomic enough for the supervisor's one-process-per-job
    execution model and keeps the mechanism trivially inspectable.
    """
    state_dir.mkdir(parents=True, exist_ok=True)
    with open(state_dir / f"{token}.attempts", "ab") as handle:
        handle.write(b"x")
        handle.flush()
        return handle.tell()


def attempts_recorded(state_dir: Path, token: str) -> int:
    """How many attempts the ledger has seen for ``token`` (0 if none)."""
    path = Path(state_dir) / f"{token}.attempts"
    try:
        return path.stat().st_size
    except OSError:
        return 0


def chaos_point(
    config: GpuConfig,
    token: str,
    plan: str = "ok",
    value: int = 1,
    hang_s: float = 30.0,
) -> Dict[str, Any]:
    """One chaos sweep point: behave per the plan step for this attempt.

    Behaviours: ``ok`` (return a seeded payload), ``raise`` (raise
    ``RuntimeError``), ``hang`` (sleep ``hang_s`` — far past any sane
    timeout), ``exit`` (``os._exit`` without reporting: a worker death),
    ``garbage`` (return a non-JSON-serialisable object, which fails the
    runner's serialisation boundary).  The successful payload depends
    only on ``(config.seed, token, value)`` — never on the attempt or
    the plan history — so a recovered job is bit-identical to one that
    never faulted.
    """
    state = os.environ.get(CHAOS_STATE_ENV)
    attempt = _attempt_number(Path(state), token) if state else 1
    steps = [step.strip() for step in plan.split(",") if step.strip()]
    step = steps[min(attempt, len(steps)) - 1] if steps else "ok"
    if step == "raise":
        raise RuntimeError(
            f"chaos: injected exception (token={token}, attempt={attempt})"
        )
    if step == "exit":
        os._exit(CHAOS_EXIT_CODE)
    if step == "hang":
        time.sleep(hang_s)
    if step == "garbage":
        return {"token": token, "oops": {1, 2, 3}}  # type: ignore[dict-item]
    rng = random.Random((config.seed << 16) ^ (value * 2654435761 % 2**31))
    return {
        "token": token,
        "value": value,
        "payload": [rng.randint(0, 255) for _ in range(8)],
    }


#: Dotted path of the workload (what SimJobs reference).
CHAOS_FN = f"{__name__}.chaos_point"


@dataclass
class ChaosReport:
    """Outcome of one full chaos drill, JSON-ready via :meth:`to_dict`."""

    seed: int
    jobs: int
    fault_plan: Dict[str, str]
    healthy_identical: bool
    recovered_identical: bool
    failures: List[Dict[str, Any]]
    expected_failures: List[str]
    counters: Dict[str, int]
    resume: Dict[str, Any]
    quarantine: Dict[str, Any]
    problems: List[str] = field(default_factory=list)
    #: Labeled metrics manifest of the chaos sweep itself (the drill is
    #: the one sweep in the repo guaranteed to exercise every failure
    #: kind, so its manifest doubles as a metrics-plane fixture).
    metrics: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return not self.problems

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "jobs": self.jobs,
            "fault_plan": dict(self.fault_plan),
            "ok": self.ok,
            "healthy_identical": self.healthy_identical,
            "recovered_identical": self.recovered_identical,
            "failures": list(self.failures),
            "expected_failures": list(self.expected_failures),
            "counters": dict(self.counters),
            "resume": dict(self.resume),
            "quarantine": dict(self.quarantine),
            "problems": list(self.problems),
            "metrics": self.metrics,
        }


def _token(index: int) -> str:
    return f"job{index:03d}"


def _build_jobs(
    config: GpuConfig,
    num_jobs: int,
    plans: Dict[int, str],
    hang_s: float,
) -> List[SimJob]:
    return [
        SimJob(
            fn=CHAOS_FN,
            config=config,
            params={
                "token": _token(index),
                "plan": plans.get(index, "ok"),
                "value": index + 1,
                "hang_s": hang_s,
            },
        )
        for index in range(num_jobs)
    ]


def assign_faults(
    seed: int, num_jobs: int, kinds: Sequence[str]
) -> Dict[int, str]:
    """Deterministically place one fault of each kind (cycling) on a
    seeded sample of job indices."""
    rng = random.Random(seed)
    count = min(len(kinds), num_jobs)
    indices = sorted(rng.sample(range(num_jobs), count)) if count else []
    return {
        index: FAULT_PLANS[kinds[position % len(kinds)]]
        for position, index in enumerate(indices)
    }


def run_chaos(
    seed: int = 0,
    num_jobs: int = 32,
    kinds: Sequence[str] = tuple(FAULT_PLANS),
    workers: Optional[int] = None,
    timeout_s: float = 0.5,
    hang_s: float = 30.0,
    backoff_s: float = 0.01,
    scratch: Optional[Path] = None,
    config: Optional[GpuConfig] = None,
    on_progress=None,
) -> ChaosReport:
    """Run the full chaos drill and verify the fault-tolerance contract.

    Builds a ``num_jobs``-point sweep, injects one fault plan of each
    requested kind at seeded positions, runs it under supervision
    (timeout ``timeout_s``, 3 attempts, fast deterministic backoff),
    then checks healthy bit-identity against a fault-free reference,
    resume-after-failure, and cache-corruption quarantine.  All scratch
    state (attempt ledgers, cache, journal) lives under ``scratch`` (a
    temp dir by default).
    """
    config = config or small_config()
    owns_scratch = scratch is None
    scratch = Path(scratch or tempfile.mkdtemp(prefix="repro-chaos-"))
    problems: List[str] = []

    plans = assign_faults(seed, num_jobs, kinds)
    jobs = _build_jobs(config, num_jobs, plans, hang_s=hang_s)
    policy = SweepSupervision(
        timeout_s=timeout_s, max_attempts=3,
        backoff_base_s=backoff_s, backoff_max_s=backoff_s * 4,
    )

    # Fault-free reference: identical params for healthy jobs (plan
    # "ok"), so their content-hash keys — and, if the contract holds,
    # their results — match the chaos run exactly.  Faulty jobs run
    # their *plans replaced by "ok"* to produce the payload a recovered
    # job must reproduce.  No cache, separate ledger: nothing shared.
    reference_jobs = _build_jobs(config, num_jobs, {}, hang_s=hang_s)
    old_state = os.environ.get(CHAOS_STATE_ENV)
    try:
        os.environ[CHAOS_STATE_ENV] = str(scratch / "reference-state")
        reference = run_supervised(
            reference_jobs, workers=workers,
            policy=SweepSupervision(timeout_s=None, max_attempts=1),
        )
        if reference.failures:
            problems.append(
                f"reference sweep itself failed: {reference.failures[0]}"
            )

        # ---- Chaos run ------------------------------------------------
        os.environ[CHAOS_STATE_ENV] = str(scratch / "chaos-state")
        cache = ResultCache(scratch / "cache")
        journal = SweepJournal(scratch / "journal.jsonl")
        outcome = run_supervised(
            jobs, workers=workers, cache=cache, progress=on_progress,
            policy=policy, journal=journal,
        )

        healthy = [i for i in range(num_jobs) if i not in plans]
        transient = sorted(
            i for i, plan in plans.items() if plan.split(",")[-1] == "ok"
            and len([s for s in plan.split(",") if s != "ok"])
            < policy.max_attempts
        )
        fatal = sorted(set(plans) - set(transient))

        healthy_identical = all(
            outcome.results[i] == reference.results[i] for i in healthy
        )
        if not healthy_identical:
            problems.append("healthy job results diverged from the "
                            "fault-free reference")
        recovered_identical = all(
            outcome.results[i] == reference.results[i] for i in transient
        )
        if not recovered_identical:
            problems.append("retry-recovered results diverged from the "
                            "fault-free reference")
        failed_indices = sorted(f.index for f in outcome.failures)
        if failed_indices != fatal:
            problems.append(
                f"expected failures at {fatal}, got {failed_indices}"
            )
        if not all(isinstance(outcome.results[i], JobFailure)
                   for i in fatal):
            problems.append("exhausted jobs did not surface as JobFailure "
                            "records in the results")

        # ---- Resume: only failed/missing points re-execute ------------
        ledger = scratch / "chaos-state"
        before = {
            _token(i): attempts_recorded(ledger, _token(i))
            for i in range(num_jobs)
        }
        resumed = run_supervised(
            jobs, workers=workers, cache=None, policy=policy,
            journal=SweepJournal(scratch / "journal.jsonl"), resume=True,
        )
        executed = sorted(
            i for i in range(num_jobs)
            if attempts_recorded(ledger, _token(i)) > before[_token(i)]
        )
        resume_info: Dict[str, Any] = {
            "replayed": resumed.counters.get("journal_replays", 0),
            "reexecuted": executed,
            "failures": len(resumed.failures),
        }
        if executed != fatal:
            problems.append(
                f"resume re-executed {executed}, expected exactly the "
                f"failed points {fatal}"
            )
        if resumed.failures:
            problems.append("resume run still reports failures; fatal "
                            "plans should recover on their next attempt")
        if not all(resumed.results[i] == reference.results[i]
                   for i in range(num_jobs)):
            problems.append("post-resume results are not bit-identical "
                            "to the fault-free reference")

        # ---- Cache corruption -> quarantine ---------------------------
        corrupt = healthy[: min(2, len(healthy))]
        for index in corrupt:
            job = jobs[index]
            key = cache.key(job.fn, job.resolved_config(), job.params)
            path = cache._path(key)
            entry = json.loads(path.read_text(encoding="utf-8"))
            entry["result"]["value"] = -999  # bit-rot the stored payload
            path.write_text(json.dumps(entry), encoding="utf-8")
        rerun = run_supervised(
            jobs, workers=workers, cache=cache, policy=policy,
        )
        quarantine_info: Dict[str, Any] = {
            "injected": len(corrupt),
            "quarantined": rerun.counters.get("quarantined", 0),
            "records": rerun.quarantines,
        }
        if rerun.counters.get("quarantined", 0) != len(corrupt):
            problems.append(
                f"expected {len(corrupt)} quarantined entries, got "
                f"{rerun.counters.get('quarantined', 0)}"
            )
        if not all(rerun.results[i] == reference.results[i]
                   for i in corrupt):
            problems.append("recomputed results for quarantined entries "
                            "diverged from the reference")
    finally:
        if old_state is None:
            os.environ.pop(CHAOS_STATE_ENV, None)
        else:
            os.environ[CHAOS_STATE_ENV] = old_state

    # Sanity: the drill must actually have injected what it claims.
    steps = {s for plan in plans.values() for s in plan.split(",")}
    for counter, expected in (
        ("failures_exception", bool(steps & {"raise", "garbage"})),
        ("failures_timeout", "hang" in steps),
        ("failures_worker_death", "exit" in steps),
    ):
        if expected and not outcome.counters.get(counter, 0):
            problems.append(
                f"fault injection gap: no {counter} events despite an "
                f"injected plan that should produce them"
            )

    report = ChaosReport(
        seed=seed,
        jobs=num_jobs,
        fault_plan={_token(i): plans[i] for i in sorted(plans)},
        healthy_identical=healthy_identical,
        recovered_identical=recovered_identical,
        failures=[f.to_dict() for f in outcome.failures],
        expected_failures=[_token(i) for i in fatal],
        counters=outcome.counters,
        resume=resume_info,
        quarantine=quarantine_info,
        problems=problems,
        metrics=outcome.metrics,
    )
    if owns_scratch:
        import shutil

        shutil.rmtree(scratch, ignore_errors=True)
    return report

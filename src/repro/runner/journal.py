"""Persistent sweep journal: append-only JSONL checkpoints for resume.

A crash, OOM kill, or Ctrl-C used to cost a sweep every in-flight result.
The journal makes sweep progress durable: as each job finishes, the
supervisor appends one self-contained JSON line — keyed by the same
content-hash :func:`~repro.runner.cache.job_key` the result cache uses —
and flushes it to disk.  A later run with ``resume=True`` replays every
completed key and re-executes only the remainder (failed or never-started
points), so ``python -m repro fig10 --resume`` picks a sweep up exactly
where it died.

Record shapes (one JSON object per line)::

    {"kind": "begin",   "total": 12, "code_version": "...", "meta": {...}}
    {"kind": "result",  "key": "<sha256>", "index": 3, "result": ...}
    {"kind": "failure", "key": "<sha256>", "index": 7, "failure": {...}}

The format is deliberately forgiving: records are appended with a flush
per line, the loader skips any line that does not parse (a torn tail from
a crash mid-write), and later records win over earlier ones per key — so
a journal can accumulate several runs' worth of history and still load to
a consistent "latest state per point".  Content-hash keys make stale
journals safe: entries from an older code version or a different grid
simply match no job and are ignored.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, Optional, Union

from .cache import code_version

#: Environment variable overriding the default journal directory.
JOURNAL_DIR_ENV = "REPRO_JOURNAL_DIR"

#: Default journal directory (relative to the working directory).
DEFAULT_JOURNAL_DIR = ".repro_sweeps"


def default_journal_path(name: str) -> Path:
    """Conventional journal location for a named sweep (CLI commands)."""
    root = Path(os.environ.get(JOURNAL_DIR_ENV, DEFAULT_JOURNAL_DIR))
    return root / f"{name}.jsonl"


@dataclass
class JournalState:
    """Latest state per job key, reconstructed from a journal file."""

    #: key -> stored result, for every point whose *latest* record is a
    #: completed result.
    results: Dict[str, Any] = field(default_factory=dict)
    #: key -> failure payload, for points whose latest record is a
    #: failure (these are re-executed on resume).
    failures: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Total records parsed (all kinds, before last-wins collapsing).
    records: int = 0
    #: Lines that did not parse as JSON (torn tail from a crash).
    torn: int = 0


class SweepJournal:
    """Append-only JSONL checkpoint for one sweep.

    The file handle is opened lazily on the first write (so constructing
    a journal for a fully-cached sweep touches nothing) and every record
    is flushed as written — the journal's whole point is surviving a
    process that dies without warning.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[IO[str]] = None
        self.written = 0

    # ------------------------------------------------------------------ #
    # Writing.
    # ------------------------------------------------------------------ #
    def _write(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self.written += 1

    def record_begin(
        self, total: int, meta: Optional[Dict[str, Any]] = None
    ) -> None:
        """Mark the start of a (possibly resumed) run over ``total`` jobs."""
        record = {
            "kind": "begin",
            "total": total,
            "code_version": code_version(),
        }
        if meta:
            record["meta"] = meta
        self._write(record)

    def record_result(self, key: str, index: int, result: Any) -> None:
        """Checkpoint one completed point (flushed immediately)."""
        self._write(
            {"kind": "result", "key": key, "index": index, "result": result}
        )

    def record_failure(
        self, key: str, index: int, failure: Dict[str, Any]
    ) -> None:
        """Checkpoint one exhausted point (re-executed on resume)."""
        self._write(
            {"kind": "failure", "key": key, "index": index,
             "failure": failure}
        )

    def flush(self) -> None:
        """Force buffered records and the OS file state to disk."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Reading.
    # ------------------------------------------------------------------ #
    def load(self) -> JournalState:
        """Replay this journal file into a :class:`JournalState`."""
        return load_journal(self.path)

    def completed(self) -> Dict[str, Any]:
        """key -> result for every point completed in a previous run."""
        return self.load().results


def load_journal(path: Union[str, Path]) -> JournalState:
    """Parse a journal file, tolerating a torn tail and stale records.

    Unparsable lines are counted in ``torn`` and skipped; for each key
    the *last* record wins, so a point that failed and later succeeded
    (or vice versa) resolves to its most recent outcome.
    """
    state = JournalState()
    path = Path(path)
    if not path.exists():
        return state
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                state.torn += 1
                continue
            if not isinstance(record, dict):
                state.torn += 1
                continue
            state.records += 1
            kind = record.get("kind")
            key = record.get("key")
            if kind == "result" and isinstance(key, str):
                state.results[key] = record.get("result")
                state.failures.pop(key, None)
            elif kind == "failure" and isinstance(key, str):
                failure = record.get("failure")
                state.failures[key] = (
                    failure if isinstance(failure, dict) else {}
                )
                state.results.pop(key, None)
    return state

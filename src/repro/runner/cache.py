"""Content-addressed on-disk cache for simulation results.

Sweep experiments re-run the same (config, workload, seed) points over and
over — across CLI invocations, benchmark sessions, and notebook restarts.
Every one of those points is a pure function of its inputs (all randomness
flows from the seed recorded in :class:`~repro.config.GpuConfig`), so the
result can be cached on disk and replayed for free.

The cache key is a SHA-256 over the canonical JSON encoding of:

* the dotted path of the workload function,
* the full :class:`~repro.config.GpuConfig` (nested dataclasses included),
* the workload's keyword parameters,
* the seed, and
* a *code version* — a hash over every ``.py`` source file of the
  ``repro`` package, so editing the simulator invalidates the whole cache
  instead of silently replaying stale results.

Entries are JSON files under ``<root>/<key[:2]>/<key>.json`` written
atomically (temp file + ``os.replace``), so a crashed or parallel writer
never leaves a torn entry.  Every entry carries a content checksum of its
result; an entry that fails to parse or verify on read is *quarantined*
(moved to ``<root>/_quarantine/`` and recorded on the cache object) so
torn or corrupted state is surfaced once instead of silently re-missed.
The root defaults to ``.repro_cache`` in the working directory and can be
overridden with ``$REPRO_CACHE_DIR``.

As the shared artifact store behind the sweep service the cache is
optionally **size-bounded**: give it ``max_entries`` and/or ``max_bytes``
(or set ``$REPRO_CACHE_MAX_ENTRIES`` / ``$REPRO_CACHE_MAX_BYTES``) and
every ``put`` evicts least-recently-used entries until the store fits.
Recency is the entry file's mtime — ``get`` touches it on every hit — so
eviction order survives process restarts and is shared between concurrent
writers without any lock: writes are already atomic renames, a concurrent
eviction of a file another process is about to read is simply that
reader's miss, and two evictors racing on the same file lose nothing but
an ``unlink`` raising ``FileNotFoundError`` (ignored).  Hit/miss/put/
eviction counts are published as the ``cache_ops_total`` counter family
in the :mod:`repro.metrics` registry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Environment variables for the default store bounds (unset = unbounded).
CACHE_MAX_ENTRIES_ENV = "REPRO_CACHE_MAX_ENTRIES"
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"${name} must be an integer, got {raw!r}")
    if value <= 0:
        raise ValueError(f"${name} must be positive, got {value}")
    return value

_code_version: Optional[str] = None


def code_version(refresh: bool = False) -> str:
    """Hash of every ``.py`` file in the ``repro`` package (memoised).

    Any edit to the simulator changes this value and therefore every cache
    key, which is the only safe default for a cycle-level model where a
    one-line change can shift every measured latency.

    The memo exists because sweeps compute thousands of keys; it goes
    stale if the source tree changes while the process lives (a notebook
    kernel spanning an edit/reload cycle).  ``refresh=True`` rehashes the
    tree and replaces the memo — :class:`ResultCache` does this once per
    construction, so every new cache sees the code that is on disk *now*.
    """
    global _code_version
    if _code_version is None or refresh:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(path.relative_to(package_root).as_posix().encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _code_version = digest.hexdigest()[:16]
    return _code_version


def _jsonable(value: Any) -> Any:
    """Convert dataclasses/tuples to plain JSON types for hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(
        _jsonable(value), sort_keys=True, separators=(",", ":")
    )


def job_key(
    fn: str,
    config: Any,
    params: Optional[Mapping[str, Any]] = None,
    seed: Optional[int] = None,
    version: Optional[str] = None,
) -> str:
    """Content-hash key for one simulation point.

    This is the single keying scheme shared by :class:`ResultCache` and
    the sweep journal (:mod:`repro.runner.journal`), so a journal written
    against one cache replays against any other — the key depends only on
    the point's inputs and the code version, never on where results are
    stored.
    """
    payload = canonical_json(
        {
            "fn": fn,
            "config": config,
            "params": dict(params or {}),
            "seed": seed,
            "code_version": version or code_version(),
        }
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def result_checksum(result: Any) -> str:
    """Short content digest of a stored result (integrity check)."""
    return hashlib.sha256(canonical_json(result).encode()).hexdigest()[:16]


class ResultCache:
    """On-disk result cache keyed by content hash.

    Results must be JSON-serialisable; callers get back exactly what a
    JSON round trip of the original produces (tuples become lists), so a
    cache hit and a fresh run are type-identical.
    """

    #: Subdirectory (under the cache root) corrupt entries are moved to.
    QUARANTINE_DIR = "_quarantine"

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        *,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.root = Path(root)
        if max_entries is None:
            max_entries = _env_int(CACHE_MAX_ENTRIES_ENV)
        if max_bytes is None:
            max_bytes = _env_int(CACHE_MAX_BYTES_ENV)
        if max_entries is not None and max_entries <= 0:
            raise ValueError(f"max_entries must be positive: {max_entries}")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive: {max_bytes}")
        #: LRU bounds; ``None`` means unbounded on that axis.
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Corrupt entries found by :meth:`get`, in discovery order:
        #: ``{"key", "path", "reason"}`` dicts.  The supervisor folds
        #: these into the sweep failure manifest so a poisoned cache is
        #: surfaced, never silently re-missed.
        self.quarantines: list = []
        #: Code version pinned at construction.  Forcing a refresh here
        #: (rather than trusting the module-level memo) means a cache
        #: built after an in-process source edit keys on the *current*
        #: tree, not whatever the first import hashed.
        self.code_version = code_version(refresh=True)
        # Labeled counters in the process metrics registry (or a caller
        # scoped one), so sweep manifests expose store hit rate/pressure.
        if metrics is None:
            from ..metrics.registry import get_registry

            metrics = get_registry()
        help_text = "Artifact-store operations by outcome."
        self._m_hits = metrics.counter("cache_ops_total", help_text, op="hit")
        self._m_misses = metrics.counter(
            "cache_ops_total", help_text, op="miss"
        )
        self._m_puts = metrics.counter("cache_ops_total", help_text, op="put")
        self._m_evictions = metrics.counter(
            "cache_ops_total", help_text, op="eviction"
        )

    def key(
        self,
        fn: str,
        config: Any,
        params: Optional[Mapping[str, Any]] = None,
        seed: Optional[int] = None,
    ) -> str:
        """Cache key for one simulation point."""
        return job_key(fn, config, params, seed, version=self.code_version)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def quarantined(self) -> int:
        """Number of corrupt entries quarantined so far."""
        return len(self.quarantines)

    def _quarantine(self, key: str, path: Path, reason: str) -> None:
        """Move a corrupt entry aside and record it.

        The entry is renamed into ``<root>/_quarantine/`` (numbered on
        collision) so the evidence survives for post-mortem while the
        slot becomes a clean miss that the next ``put`` repopulates.
        """
        target_dir = self.root / self.QUARANTINE_DIR
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / path.name
        counter = 0
        while target.exists():
            counter += 1
            target = target_dir / f"{path.stem}.{counter}{path.suffix}"
        try:
            os.replace(path, target)
        except OSError:
            target = path  # unmovable: record in place, still a miss
        self.quarantines.append(
            {"key": key, "path": str(target), "reason": reason}
        )

    def _note_miss(self) -> None:
        self.misses += 1
        self._m_misses.inc()

    def _note_hit(self, path: Path) -> None:
        self.hits += 1
        self._m_hits.inc()
        # Refresh the entry's recency stamp so LRU eviction (here or in
        # any other process sharing the store) spares hot entries.
        try:
            os.utime(path)
        except OSError:
            pass  # concurrently evicted; the result we read is still good

    def get(self, key: str) -> Optional[Any]:
        """Stored result for ``key``, or None.

        A missing file is a plain miss.  A file that *exists* but cannot
        be trusted — torn/partial JSON, a well-formed document without a
        ``"result"`` key, or a result whose stored checksum no longer
        matches its content — is **quarantined**: moved into
        ``<root>/_quarantine/`` and recorded in :attr:`quarantines`, then
        reported as a miss so the point is recomputed.  Corruption is
        therefore surfaced exactly once instead of being silently
        re-missed (or worse, silently replayed) on every sweep.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except OSError:
            self._note_miss()
            return None
        except json.JSONDecodeError:
            self._quarantine(key, path, "torn or non-JSON entry")
            self._note_miss()
            return None
        try:
            result = entry["result"]
        except (KeyError, TypeError):
            self._quarantine(key, path, "entry has no 'result' field")
            self._note_miss()
            return None
        meta = entry.get("meta") if isinstance(entry, dict) else None
        stored = meta.get("checksum") if isinstance(meta, dict) else None
        if stored is not None and stored != result_checksum(result):
            self._quarantine(
                key, path,
                f"checksum mismatch (stored {stored}, "
                f"computed {result_checksum(result)})",
            )
            self._note_miss()
            return None
        self._note_hit(path)
        return result

    def meta(self, key: str) -> Optional[Dict[str, Any]]:
        """Stored metadata for ``key`` (None if absent or unreadable)."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            meta = entry.get("meta")
        except (OSError, json.JSONDecodeError, AttributeError):
            return None
        return meta if isinstance(meta, dict) else None

    def put(
        self,
        key: str,
        result: Any,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Atomically store ``result``; returns its JSON round trip.

        The entry's ``meta`` always records the code version the result
        was produced under, so entries stay self-describing even when
        inspected outside the keying scheme.  When the store is bounded,
        the write is followed by an LRU sweep that never evicts the entry
        just written.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"result": result}
        entry["meta"] = {
            "code_version": self.code_version,
            "checksum": result_checksum(result),
            **(meta or {}),
        }
        encoded = json.dumps(entry, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(encoded)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._m_puts.inc()
        if self.max_entries is not None or self.max_bytes is not None:
            self._evict(keep=path)
        return json.loads(encoded)["result"]

    # -- LRU eviction -------------------------------------------------- #
    def _entries(self) -> List[Tuple[float, int, Path]]:
        """Live entries as ``(mtime, size, path)``, oldest first."""
        entries: List[Tuple[float, int, Path]] = []
        for path in self.root.glob("??/*.json"):
            if path.name.startswith("."):
                continue  # another writer's in-progress temp file
            try:
                stat = path.stat()
            except OSError:
                continue  # evicted by a concurrent writer mid-scan
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort(key=lambda item: (item[0], item[2].name))
        return entries

    def _evict(self, keep: Optional[Path] = None) -> int:
        """Unlink least-recently-used entries until the store fits.

        ``keep`` (the entry the caller just wrote) is never a candidate,
        so a pathologically small bound still leaves every ``put``
        readable by its own writer.  Lock-free against concurrent
        writers: a racing ``unlink`` simply means someone else evicted
        the file first, which is not counted here.
        """
        entries = self._entries()
        count = len(entries)
        total = sum(size for _, size, _ in entries)
        removed = 0
        for _, size, path in entries:
            over = (
                self.max_entries is not None and count > self.max_entries
            ) or (self.max_bytes is not None and total > self.max_bytes)
            if not over:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                pass  # a concurrent evictor beat us to it
            else:
                removed += 1
                self.evictions += 1
                self._m_evictions.inc()
            count -= 1
            total -= size
        return removed

    def clear(self) -> int:
        """Delete every live entry (quarantined files are kept); returns
        the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("??/*.json"):
            if path.name.startswith("."):
                continue  # another writer's in-progress temp file
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

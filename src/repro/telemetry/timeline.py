"""Per-epoch link-utilization and queue-occupancy time series.

Time is divided into fixed *epochs* of ``epoch_cycles`` cycles.  Each NoC
link (a mux output or a crossbar output port) owns a :class:`LinkSeries`
that accumulates flits moved per epoch; each :class:`~repro.noc.buffer.
PacketQueue` can carry a :class:`QueueMeter` that tracks its peak flit
occupancy within the current epoch.

Flit accounting is event-driven (the component that moves a flit calls
``LinkSeries.add`` with the current cycle), so idle epochs cost nothing
and the series stays sparse.  Occupancy peaks are flushed on epoch
boundaries by a :class:`TimelineProbe` — a regular engine component that
parks itself between boundaries via the active-set timer mechanism, so
telemetry-on runs still fast-forward through idle stretches (in
epoch-sized hops) and telemetry-off runs never register a probe at all.

The probe reads model state and never mutates it, which is what keeps
seeded runs bit-identical with telemetry on or off.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.engine import Component


class LinkSeries:
    """Flits moved per epoch over one NoC link."""

    __slots__ = ("name", "width", "epoch_cycles", "flits")

    def __init__(self, name: str, width: int, epoch_cycles: int) -> None:
        self.name = name
        #: Flits per cycle the link can carry (utilization denominator).
        self.width = width
        self.epoch_cycles = epoch_cycles
        #: epoch index -> flits moved during that epoch (sparse).
        self.flits: Dict[int, int] = {}

    def add(self, cycle: int, n: int) -> None:
        epoch = cycle // self.epoch_cycles
        flits = self.flits
        flits[epoch] = flits.get(epoch, 0) + n

    @property
    def total_flits(self) -> int:
        return sum(self.flits.values())

    def utilization(self) -> Dict[int, float]:
        """epoch -> fraction of the link's flit capacity used."""
        denom = self.width * self.epoch_cycles
        return {epoch: n / denom for epoch, n in self.flits.items()}

    @property
    def peak_utilization(self) -> float:
        if not self.flits:
            return 0.0
        return max(self.flits.values()) / (self.width * self.epoch_cycles)

    def reset(self) -> None:
        """Drop all recorded epochs (component/engine reset)."""
        self.flits.clear()


class QueueMeter:
    """Peak flit occupancy of one queue, folded into per-epoch samples."""

    __slots__ = ("name", "queue", "peak", "series")

    def __init__(self, name: str, queue) -> None:
        self.name = name
        self.queue = queue
        #: Running peak since the last epoch flush.
        self.peak = 0
        #: epoch index -> peak occupancy (flits) during that epoch; zero
        #: epochs are omitted to keep long idle runs cheap.
        self.series: Dict[int, int] = {}

    def note(self, occupancy: int) -> None:
        if occupancy > self.peak:
            self.peak = occupancy

    def flush(self, epoch: int) -> None:
        if self.peak:
            previous = self.series.get(epoch, 0)
            if self.peak > previous:
                self.series[epoch] = self.peak
        # The standing occupancy seeds the next epoch's peak, so a queue
        # that stays full without new pushes is still reported full.
        self.peak = self.queue.used_flits

    def note_cleared(self) -> None:
        """The queue was cleared: the standing peak baseline is gone.

        Called by :meth:`~repro.noc.buffer.PacketQueue.clear`.  A clear
        discards the queued packets, so carrying the pre-clear peak into
        the next flush would report occupancy that no longer exists.
        """
        self.peak = self.queue.used_flits

    def reset(self) -> None:
        """Forget all recorded epochs and re-seed from live occupancy."""
        self.series.clear()
        self.peak = self.queue.used_flits

    @property
    def peak_flits(self) -> int:
        current = max(self.series.values()) if self.series else 0
        return max(current, self.peak)


class Timeline:
    """All link series and queue meters of one device."""

    def __init__(self, epoch_cycles: int = 64) -> None:
        if epoch_cycles <= 0:
            raise ValueError("epoch_cycles must be positive")
        self.epoch_cycles = epoch_cycles
        self.links: List[LinkSeries] = []
        self.meters: List[QueueMeter] = []

    def register_link(self, name: str, width: int) -> LinkSeries:
        series = LinkSeries(name, max(1, width), self.epoch_cycles)
        self.links.append(series)
        return series

    def register_queue(self, queue) -> QueueMeter:
        """Attach a meter to ``queue`` (sets ``queue.meter``)."""
        meter = QueueMeter(queue.name, queue)
        queue.meter = meter
        self.meters.append(meter)
        return meter

    def flush(self, epoch: int) -> None:
        for meter in self.meters:
            meter.flush(epoch)

    def finalize(self, cycle: int) -> None:
        """Flush the partial epoch at the end of a run (idempotent)."""
        self.flush(cycle // self.epoch_cycles)

    def reset(self) -> None:
        """Clear every link series and queue meter (engine reset)."""
        for series in self.links:
            series.reset()
        for meter in self.meters:
            meter.reset()


class TimelineProbe(Component):
    """Engine component that flushes occupancy peaks on epoch boundaries.

    Wakes exactly at cycles ``k * epoch_cycles`` under both engine
    strategies (the active engine via a timer, the naive engine by
    checking every tick), flushing the epoch that just ended.  Purely
    observational: reads queue occupancies, mutates no model state.
    """

    name = "telemetry.probe"

    def __init__(self, timeline: Timeline) -> None:
        self.timeline = timeline
        self._next_flush = timeline.epoch_cycles

    def tick(self, cycle: int) -> None:
        if cycle >= self._next_flush:
            epoch_cycles = self.timeline.epoch_cycles
            self.timeline.flush(cycle // epoch_cycles - 1)
            self._next_flush = (cycle // epoch_cycles + 1) * epoch_cycles

    def idle_until(self, cycle: int) -> Optional[int]:
        return self._next_flush

    def reset(self) -> None:
        self._next_flush = self.timeline.epoch_cycles

"""Flit-lifecycle event vocabulary for the NoC tracer.

Events are stored as plain 6-tuples ``(cycle, kind, component_id, a, b,
c)`` — no per-event object, so the enabled tracer costs one tuple and one
deque append per event.  ``kind`` indexes the tables below; ``a``/``b``/
``c`` are kind-specific integer payloads named by :data:`KIND_ARGS`.

The lifecycle of one read transaction, in event order:

``SM_INJECT`` (LSU pushes the packet into the SM's injection queue) →
``MUX_GRANT``/``MUX_XFER`` at the TPC mux, then again at the GPC mux →
``XBAR_GRANT``/``XBAR_XFER`` across the request crossbar →
``L2_HIT`` (or ``L2_MISS`` followed by ``DRAM_ISSUE``/``DRAM_COMPLETE``)
→ ``MUX_GRANT``/``MUX_XFER`` at the reply mux → ``REPLY_DELIVER`` at the
GPC reply distributor → ``READ_RTT`` when the warp's blocking op
completes (a *span*: the exporter renders it as a duration event).
"""

from __future__ import annotations

SM_INJECT = 0
MUX_GRANT = 1
MUX_XFER = 2
XBAR_GRANT = 3
XBAR_XFER = 4
L2_HIT = 5
L2_MISS = 6
DRAM_ISSUE = 7
DRAM_COMPLETE = 8
REPLY_DELIVER = 9
READ_RTT = 10

#: kind -> human/Perfetto event name.
KIND_NAMES = (
    "sm_inject",
    "mux_grant",
    "mux_xfer",
    "xbar_grant",
    "xbar_xfer",
    "l2_hit",
    "l2_miss",
    "dram_issue",
    "dram_complete",
    "reply_deliver",
    "l2_round_trip",
)

#: kind -> trace category (Perfetto ``cat`` field).
KIND_CATEGORIES = (
    "sm",
    "mux",
    "mux",
    "xbar",
    "xbar",
    "l2",
    "l2",
    "dram",
    "dram",
    "reply",
    "sm",
)

#: kind -> names of the (a, b, c) payload fields actually used.
KIND_ARGS = (
    ("uid", "is_write", "slice"),   # SM_INJECT
    ("port", "uid"),                # MUX_GRANT
    ("port", "uid"),                # MUX_XFER
    ("port", "uid", "out"),         # XBAR_GRANT
    ("port", "uid", "out"),         # XBAR_XFER
    ("uid", "src_sm"),              # L2_HIT
    ("uid", "src_sm"),              # L2_MISS
    ("address",),                   # DRAM_ISSUE
    ("address",),                   # DRAM_COMPLETE
    ("uid", "src_sm"),              # REPLY_DELIVER
    ("latency", "uid"),             # READ_RTT
)

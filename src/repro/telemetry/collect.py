"""Process-local device collector.

Experiment entry points (figure functions, runner workloads) build their
:class:`~repro.gpu.device.GpuDevice` instances internally and return only
numbers, which is right for reproducibility but leaves observers with no
handle on the devices' stats registries and telemetry hubs.  The
collector closes that gap without threading a parameter through every
experiment signature: ``GpuDevice.__init__`` calls :func:`note_device`,
and any caller that wants the devices wraps the experiment in
:func:`collecting`::

    with collecting() as frame:
        result = rw_contention_profile(config)
    manifest = frame.manifest()

Frames nest (a stack), are process-local (each runner worker process has
its own), and cost one truthiness check per device construction when
nobody is collecting.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from ..sim.stats import Sampler
from .hub import latency_summary

_frames: List["Collector"] = []


class Collector:
    """Devices constructed while this frame was on the stack."""

    def __init__(self) -> None:
        self.devices: List[Any] = []

    def hubs(self) -> List[Any]:
        """Telemetry hubs of collected devices, finalized for export."""
        hubs = []
        for device in self.devices:
            hub = getattr(device, "telemetry", None)
            if hub is not None:
                hub.finalize(device.engine.cycle)
                hubs.append(hub)
        return hubs

    def manifest(self) -> Optional[Dict[str, Any]]:
        """Merged JSON-safe metrics manifest across collected devices.

        Returns ``None`` when no device was seen, so callers (the runner)
        can skip attaching an empty section to pure-python job results.
        """
        if not self.devices:
            return None
        merged_latency = Sampler()
        per_device: List[Dict[str, Any]] = []
        for device in self.devices:
            summary = latency_summary(device.stats)
            merged_latency.merge(
                Sampler.from_summary(summary["read_latency"])
            )
            hub = getattr(device, "telemetry", None)
            if hub is not None:
                hub.finalize(device.engine.cycle)
                entry = hub.manifest(device.stats)
            else:
                entry = dict(summary)
            entry["cycles"] = device.engine.cycle
            per_device.append(entry)
        return {
            "devices": len(self.devices),
            "read_latency": merged_latency.summary(),
            "per_device": per_device,
        }

    def metrics(self) -> Optional[Dict[str, Any]]:
        """Merged engine-profile metrics across collected devices.

        Devices built with ``config.metrics_enabled`` carry an
        :class:`~repro.metrics.EngineProfiler`; their registries are
        folded into one metrics manifest (counters sum, samplers and
        histograms merge).  Returns ``None`` when no collected device
        was profiling, so results of unprofiled runs stay unchanged.
        """
        profiled = 0
        merged = None
        for device in self.devices:
            profiler = getattr(device, "profiler", None)
            if profiler is None:
                continue
            if merged is None:
                from ..metrics.registry import MetricsRegistry

                merged = MetricsRegistry()
            profiled += 1
            merged.merge(profiler.registry)
        if merged is None:
            return None
        return {"devices": profiled, **merged.to_manifest()}


@contextmanager
def collecting() -> Iterator[Collector]:
    """Collect every device constructed inside the ``with`` block."""
    frame = Collector()
    _frames.append(frame)
    try:
        yield frame
    finally:
        _frames.remove(frame)


def note_device(device: Any) -> None:
    """Called by ``GpuDevice.__init__``; no-op unless someone collects."""
    if _frames:
        for frame in _frames:
            frame.devices.append(device)

"""The per-device telemetry hub.

One :class:`Telemetry` object per :class:`~repro.gpu.device.GpuDevice`
(built only when ``GpuConfig.telemetry_enabled`` is set) owns the event
tracer, the utilization/occupancy timeline, the component-name registry
(trace events carry small integer component ids; the hub maps them back
to names at export time) and the record of engine fast-forward jumps —
which is what lets tests assert that no event ever carries a cycle the
engine skipped over.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..sim.stats import StatsRegistry
from .timeline import Timeline
from .tracer import Tracer

#: Cap on retained fast-forward spans (a span per idle gap; covert-channel
#: runs have one per guard slot, so this is generous).
MAX_FAST_FORWARDS = 65536


class Telemetry:
    """Tracer + timeline + component registry for one device."""

    def __init__(
        self,
        ring_capacity: int = 65536,
        epoch_cycles: int = 64,
    ) -> None:
        self.tracer = Tracer(ring_capacity)
        self.timeline = Timeline(epoch_cycles)
        #: Component id -> name (ids are dense, assigned by register()).
        self.component_names: List[str] = []
        #: (from_cycle, to_cycle) engine quiescence jumps, in order.
        self.fast_forwards: List[Tuple[int, int]] = []
        self._ff_dropped = 0

    @classmethod
    def from_config(cls, config) -> "Telemetry":
        return cls(
            ring_capacity=config.telemetry_ring_capacity,
            epoch_cycles=config.telemetry_epoch_cycles,
        )

    def register(self, name: str) -> int:
        """Assign a component id for ``name`` (used in trace events)."""
        self.component_names.append(name)
        return len(self.component_names) - 1

    def note_fast_forward(self, from_cycle: int, to_cycle: int) -> None:
        """Engine hook: the cycle counter jumped over a quiescent gap."""
        if len(self.fast_forwards) >= MAX_FAST_FORWARDS:
            self._ff_dropped += 1
            return
        self.fast_forwards.append((from_cycle, to_cycle))

    def finalize(self, cycle: int) -> None:
        """Flush partial-epoch occupancy state at the end of a run."""
        self.timeline.finalize(cycle)

    def reset(self) -> None:
        """Drop everything observed so far (wired to ``Engine.on_reset``).

        Component registrations survive — the same components re-emit
        under the same ids after the reset — so a run after an engine
        reset records exactly what a fresh device would.
        """
        self.tracer.clear()
        self.timeline.reset()
        self.fast_forwards.clear()
        self._ff_dropped = 0

    # ------------------------------------------------------------------ #
    # Manifest.
    # ------------------------------------------------------------------ #
    def manifest(
        self, stats: Optional[StatsRegistry] = None
    ) -> Dict[str, Any]:
        """JSON-safe summary of everything this hub observed.

        With a ``stats`` registry, merged round-trip latency summaries
        (sampler aggregates and histogram percentiles) are folded in.
        """
        links = {
            series.name: {
                "flits": series.total_flits,
                "epochs": len(series.flits),
                "peak_utilization": round(series.peak_utilization, 4),
            }
            for series in self.timeline.links
            if series.flits
        }
        busiest = sorted(
            (meter for meter in self.timeline.meters if meter.peak_flits),
            key=lambda meter: meter.peak_flits,
            reverse=True,
        )[:32]
        out: Dict[str, Any] = {
            "events": {
                "recorded": self.tracer.recorded,
                "buffered": len(self.tracer),
                "dropped": self.tracer.dropped,
                "ring_capacity": self.tracer.capacity,
            },
            "fast_forward": {
                "spans": len(self.fast_forwards) + self._ff_dropped,
                "recorded": len(self.fast_forwards),
                # Spans observed past MAX_FAST_FORWARDS are counted but
                # not retained; a non-zero value means per-span data
                # (the "cycles" sum) is a lower bound.
                "dropped": self._ff_dropped,
                "cycles": sum(to - frm for frm, to in self.fast_forwards),
            },
            "epoch_cycles": self.timeline.epoch_cycles,
            "links": links,
            "queues": {
                meter.name: {"peak_flits": meter.peak_flits}
                for meter in busiest
            },
        }
        if stats is not None:
            out.update(latency_summary(stats))
        return out


def latency_summary(stats: StatsRegistry) -> Dict[str, Any]:
    """Merged round-trip latency summary of one stats registry.

    Folds every per-SM ``*.read_latency`` sampler (and histogram, when
    present) into a single device-wide aggregate.
    """
    from ..sim.stats import Histogram, Sampler

    merged = Sampler()
    for name, sampler in stats.samplers.items():
        if name.endswith(".read_latency"):
            merged.merge(sampler)
    merged_hist: Optional[Histogram] = None
    for name, histogram in stats.histograms.items():
        if name.endswith(".read_latency") and histogram.count:
            if merged_hist is None:
                merged_hist = Histogram(
                    histogram.bucket_width, histogram.num_buckets
                )
            merged_hist.merge(histogram)
    return {
        "read_latency": merged.summary(),
        "read_latency_percentiles": (
            merged_hist.to_dict() if merged_hist is not None else None
        ),
    }

"""Chrome trace-event / Perfetto JSON exporter.

Converts one or more :class:`~repro.telemetry.hub.Telemetry` hubs into
the Chrome trace-event JSON object format (``{"traceEvents": [...]}``),
which both ``chrome://tracing`` and https://ui.perfetto.dev open
directly.

Mapping:

* every simulated component becomes a thread (``M``/metadata events name
  them) under one process per device;
* point-in-time flit events (mux grants, crossbar transfers, L2 hits,
  DRAM issue/complete, reply delivery) become instant events (``ph:
  "i"``);
* ``READ_RTT`` events become complete spans (``ph: "X"``) stretching
  from the warp's issue cycle to the delivery cycle — the L2 round-trip
  the covert-channel receiver thresholds on;
* per-epoch link-utilization series become counter tracks (``ph: "C"``)
  so contention windows line up visually with the sender's bit schedule;
* engine fast-forward jumps become spans on a dedicated thread, making
  skipped idle stretches visible instead of mysterious gaps.

Timestamps are raw simulator cycles reported as microseconds (1 cycle ==
1 us in the viewer); absolute wall time is meaningless in a cycle-level
model, relative spacing is what matters.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from .events import KIND_ARGS, KIND_CATEGORIES, KIND_NAMES, READ_RTT

#: Thread id reserved for engine fast-forward spans (component ids are
#: dense from 0, so a large fixed id never collides).
FAST_FORWARD_TID = 999999


def chrome_trace(hubs: Iterable) -> Dict[str, Any]:
    """Render ``hubs`` as a Chrome trace-event JSON object.

    ``hubs`` is an iterable of (finalized) :class:`Telemetry` objects,
    one per device; each becomes a separate process in the trace.
    """
    trace_events: List[Dict[str, Any]] = []
    for pid, hub in enumerate(hubs):
        trace_events.append(_meta(pid, 0, "process_name",
                                  {"name": f"gpu{pid}"}))
        for tid, name in enumerate(hub.component_names):
            trace_events.append(_meta(pid, tid, "thread_name",
                                      {"name": name}))
        trace_events.append(_meta(pid, FAST_FORWARD_TID, "thread_name",
                                  {"name": "engine.fast_forward"}))

        for cycle, kind, component, a, b, c in hub.tracer:
            args = dict(zip(KIND_ARGS[kind], (a, b, c)))
            if kind == READ_RTT:
                # Span from issue to delivery: a == latency in cycles.
                trace_events.append({
                    "name": KIND_NAMES[kind],
                    "cat": KIND_CATEGORIES[kind],
                    "ph": "X",
                    "ts": cycle - a,
                    "dur": a,
                    "pid": pid,
                    "tid": component,
                    "args": args,
                })
            else:
                trace_events.append({
                    "name": KIND_NAMES[kind],
                    "cat": KIND_CATEGORIES[kind],
                    "ph": "i",
                    "s": "t",
                    "ts": cycle,
                    "pid": pid,
                    "tid": component,
                    "args": args,
                })

        epoch_cycles = hub.timeline.epoch_cycles
        for series in hub.timeline.links:
            if not series.flits:
                continue
            name = f"util:{series.name}"
            for epoch in sorted(series.flits):
                trace_events.append({
                    "name": name,
                    "cat": "link",
                    "ph": "C",
                    "ts": epoch * epoch_cycles,
                    "pid": pid,
                    "args": {"flits": series.flits[epoch]},
                })
        for meter in hub.timeline.meters:
            if not meter.series:
                continue
            name = f"occ:{meter.name}"
            for epoch in sorted(meter.series):
                trace_events.append({
                    "name": name,
                    "cat": "queue",
                    "ph": "C",
                    "ts": epoch * epoch_cycles,
                    "pid": pid,
                    "args": {"flits": meter.series[epoch]},
                })

        for from_cycle, to_cycle in hub.fast_forwards:
            trace_events.append({
                "name": "fast_forward",
                "cat": "engine",
                "ph": "X",
                "ts": from_cycle,
                "dur": to_cycle - from_cycle,
                "pid": pid,
                "tid": FAST_FORWARD_TID,
                "args": {"skipped_cycles": to_cycle - from_cycle},
            })

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"clock": "sim_cycles", "source": "repro.telemetry"},
    }


def write_chrome_trace(path: str, hubs: Iterable) -> Dict[str, Any]:
    """Write :func:`chrome_trace` output to ``path``; returns the dict."""
    trace = chrome_trace(hubs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
    return trace


def _meta(pid: int, tid: int, name: str,
          args: Dict[str, Any]) -> Dict[str, Any]:
    return {"name": name, "ph": "M", "pid": pid, "tid": tid, "args": args}

"""Ring-buffered flit-event tracer.

The tracer is a bounded deque of event tuples: once full, recording a new
event evicts the oldest (and counts it in :attr:`Tracer.dropped`), so an
arbitrarily long run uses bounded memory and always retains the most
recent window — which is the window an observer debugging an error burst
actually wants.

Components never hold a tracer when telemetry is disabled (their
``_tracer`` attribute stays ``None``), so the disabled hot path costs one
``is not None`` branch per emission site and performs no calls or
allocations attributable to this module.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Tuple

#: (cycle, kind, component_id, a, b, c)
TraceEvent = Tuple[int, int, int, int, int, int]


class Tracer:
    """Bounded ring buffer of :data:`TraceEvent` tuples."""

    __slots__ = ("capacity", "events", "dropped")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        #: Events evicted because the ring was full.
        self.dropped = 0

    def emit(
        self,
        cycle: int,
        kind: int,
        component: int,
        a: int = 0,
        b: int = 0,
        c: int = 0,
    ) -> None:
        events = self.events
        if len(events) == self.capacity:
            self.dropped += 1
        events.append((cycle, kind, component, a, b, c))

    @property
    def recorded(self) -> int:
        """Total events ever emitted (buffered + evicted)."""
        return len(self.events) + self.dropped

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

"""NoC observability: event tracing, timelines, and Perfetto export.

Everything in this package is opt-in via ``GpuConfig.telemetry_enabled``
and structured so that the disabled configuration costs exactly one
``is not None`` branch at each instrumentation site — seeded runs are
bit-identical with telemetry on or off (asserted by tests and by
``python -m repro bench``).
"""

from . import events
from .collect import Collector, collecting, note_device
from .export import chrome_trace, write_chrome_trace
from .hub import Telemetry, latency_summary
from .timeline import LinkSeries, QueueMeter, Timeline, TimelineProbe
from .tracer import Tracer

__all__ = [
    "events",
    "Collector",
    "collecting",
    "note_device",
    "chrome_trace",
    "write_chrome_trace",
    "Telemetry",
    "latency_summary",
    "LinkSeries",
    "QueueMeter",
    "Timeline",
    "TimelineProbe",
    "Tracer",
]

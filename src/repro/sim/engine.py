"""Cycle-driven simulation engine with active-set scheduling.

The whole GPU model is built from :class:`Component` objects that the
:class:`Engine` ticks once per cycle in two phases:

``tick()``
    Produce work for this cycle: arbitrate, move flits, issue requests.
    Components are ticked in registration order, which the device builder
    arranges to follow the pipeline direction (SMs first, then muxes, then
    the crossbar, then L2/DRAM, then the reply path) so a flit can traverse
    one hop per cycle without one-cycle bubbles being inserted artificially.

``post_tick()``
    Commit state that must only become visible next cycle (e.g. buffer
    occupancy updates), keeping intra-cycle evaluation order-independent
    where it matters.

Scheduling strategies
---------------------

``strategy="naive"``
    The original flat loop: every component is ticked every cycle.  Kept as
    the reference implementation; the active strategy must be bit-identical
    to it (the equivalence tests in ``tests/test_engine_active.py`` enforce
    this on full covert-channel runs).

``strategy="active"`` (default)
    Active-set scheduling.  Components report, after each tick, whether
    they have anything left to do via :meth:`Component.idle_until`:

    * ``None`` — busy; keep ticking every cycle (the safe default, so
      components that never opt in behave exactly as under ``naive``);
    * a future cycle ``c`` — quiescent until ``c`` barring new input; the
      engine parks the component and sets a timer;
    * :data:`FOREVER` — purely reactive; the component is parked until an
      external event (a queue push, a kernel launch, a DRAM completion)
      calls :meth:`Component.wake`.

    Because an idle component's ``tick`` is by contract a no-op, skipping
    it is cycle-exact.  When *nothing* is active — every warp asleep in
    ``WAIT_MEM``/``WaitUntilClock``, every queue and in-flight buffer
    empty — the engine fast-forwards the cycle counter directly to the
    earliest pending timer (or the end of the ``step`` window) instead of
    spinning through empty cycles.

Mid-cycle wake ordering matches the naive loop: a component woken at an
index *after* the current scan position is ticked in the same cycle (an
upstream push is visible downstream within the cycle, as registration
order is pipeline order); a wake at or before the current position takes
effect next cycle (exactly when the naive loop would next reach it).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Optional

#: Sentinel returned by :meth:`Component.idle_until` for "no self-scheduled
#: work, ever — wake me only on external input".  Any cycle number at or
#: beyond this is treated as "no timer".
FOREVER = 1 << 62

#: Accepted Engine scheduling strategies.  "vector" is implemented by
#: :class:`repro.sim.vector.VectorEngine` (event-driven batch scheduling
#: over numpy state arrays) and is instantiated via :func:`create_engine`.
STRATEGIES = ("active", "naive", "vector")


def create_engine(strategy: str = "active") -> "Engine":
    """Build the engine for ``strategy``.

    ``"vector"`` requires numpy: without it a
    :class:`repro.config.ConfigError` is raised (never a silent fallback
    to another strategy — a run must use exactly the engine it asked
    for).
    """
    if strategy == "vector":
        from ..config import ConfigError

        try:
            from .vector import VectorEngine
        except ImportError as exc:
            raise ConfigError(
                "engine_strategy='vector' requires numpy, which is not "
                "installed; install the 'vector' extra (pip install "
                "repro[vector]) or use engine_strategy='active'"
            ) from exc
        return VectorEngine()
    return Engine(strategy=strategy)


class Component:
    """Base class for anything the engine ticks once per cycle."""

    #: Human-readable name used in traces and error messages.
    name: str = "component"
    #: Back-reference set by :meth:`Engine.register` (one engine at most).
    _engine: Optional["Engine"] = None
    #: Position in the engine's registration (= pipeline) order.
    _engine_index: int = -1

    def tick(self, cycle: int) -> None:  # pragma: no cover - interface
        """Advance one cycle of work."""

    def post_tick(self, cycle: int) -> None:
        """Commit end-of-cycle state.  Optional."""

    def reset(self) -> None:
        """Return to the post-construction state.  Optional."""

    def state_digest(self):
        """Comparable summary of this component's mutable state.

        Used by the lockstep oracle (``repro.validate.oracle``) to compare
        two engines running the same seeded workload under different
        scheduling strategies.  Must be cheap, hashable, and must not
        include identity-bound values (object ids, global counters such
        as packet uids) that differ between separately-built devices.
        Return ``None`` (the default) to opt out of comparison.
        """
        return None

    # -- activity contract (active-set scheduling) ---------------------- #
    def idle_until(self, cycle: int) -> Optional[int]:
        """Earliest future cycle at which this component has work.

        Called by the engine immediately after ``tick(cycle)`` under the
        ``active`` strategy.  Return:

        * ``None`` — busy: tick me again next cycle (default; always
          correct);
        * an ``int > cycle`` — my ``tick`` is a no-op until that cycle
          unless new input arrives (the engine will park me and set a
          timer);
        * :data:`FOREVER` — purely reactive: park me until something
          calls :meth:`wake`.

        The contract is strict: while parked, the component's ``tick``
        must be a state-preserving no-op, otherwise the active strategy
        diverges from the naive reference.
        """
        return None

    def wake(self) -> None:
        """Mark this component active (new external input arrived).

        Safe to call from anywhere — components not registered with an
        engine, or registered with a ``naive`` engine, ignore it.
        """
        engine = self._engine
        if engine is not None:
            engine.wake(self)


class Engine:
    """Ticks registered components in order until stopped.

    Parameters
    ----------
    components:
        Initial component list; more can be added with :meth:`register`.
    strategy:
        ``"active"`` (default) for active-set scheduling with quiescence
        fast-forward, or ``"naive"`` for the reference tick-everything
        loop.  Both are cycle-exact with respect to each other.
    """

    def __init__(
        self,
        components: Optional[List[Component]] = None,
        strategy: str = "active",
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown engine strategy {strategy!r}; "
                f"expected one of {STRATEGIES}"
            )
        if strategy == "vector" and type(self) is Engine:
            raise ValueError(
                "strategy='vector' is implemented by VectorEngine; "
                "build it via create_engine('vector')"
            )
        self.strategy = strategy
        self._components: List[Component] = []
        self._post_components: List[Component] = []
        self.cycle: int = 0
        # -- active-set state ------------------------------------------- #
        #: Per-component "tick me this cycle" flag (index-parallel).
        self._active: List[bool] = []
        #: Whether each component overrides post_tick (index-parallel).
        self._has_post: List[bool] = []
        self._num_active: int = 0
        #: Min-heap of (wake_cycle, index) timers; entries may be stale
        #: (superseded by an earlier wake) — stale pops are harmless
        #: because waking an idle component only costs a no-op tick.
        self._timers: List = []
        #: Earliest scheduled timer per component, to avoid heap spam.
        self._timer_at: List[Optional[int]] = []
        # -- instrumentation -------------------------------------------- #
        #: Total component ticks actually executed.
        self.ticks_executed: int = 0
        #: Cycles skipped in one jump because the whole model was quiescent.
        self.fast_forwarded_cycles: int = 0
        #: Optional observer called as ``on_fast_forward(from, to)`` when
        #: the active strategy jumps over a quiescent gap (telemetry).
        self.on_fast_forward: Optional[Callable[[int, int], None]] = None
        #: Optional observer called at the end of :meth:`reset`, after
        #: every component has been reset.  The device wires this to its
        #: telemetry/stats reset so an engine reset leaves no stale
        #: observability state behind.
        self.on_reset: Optional[Callable[[], None]] = None
        #: Optional :class:`repro.metrics.EngineProfiler`.  Read-only
        #: sampled self-profiling of the scheduling loop (active-set
        #: sizes, fast-forward spans); ``None`` costs one branch per
        #: busy cycle.  Only the scheduling strategies consult it — the
        #: naive reference loop has no schedule to profile.
        self.profiler = None
        for component in components or []:
            self.register(component)

    def register(self, component: Component) -> Component:
        """Add ``component`` to the tick list and return it."""
        component._engine = self
        component._engine_index = len(self._components)
        self._components.append(component)
        has_post = type(component).post_tick is not Component.post_tick
        # Only components that override post_tick pay for the second phase.
        if has_post:
            self._post_components.append(component)
        self._has_post.append(has_post)
        # New components start active; the first tick prunes idle ones.
        self._active.append(True)
        self._num_active += 1
        self._timer_at.append(None)
        return component

    def register_all(self, components: List[Component]) -> None:
        for component in components:
            self.register(component)

    @property
    def components(self) -> List[Component]:
        return list(self._components)

    @property
    def num_active(self) -> int:
        """Components currently in the active set (``active`` strategy)."""
        return self._num_active

    @property
    def quiescent(self) -> bool:
        """True when no component is active (timers may still be pending)."""
        return self._num_active == 0

    # ------------------------------------------------------------------ #
    # Wake-up plumbing (active strategy; no-ops under naive).
    # ------------------------------------------------------------------ #
    def wake(self, component: Component, at: Optional[int] = None) -> None:
        """(Re-)activate ``component``.

        With ``at=None`` the component joins the active set immediately:
        if its pipeline position has not been passed this cycle it is
        ticked this very cycle, otherwise next cycle — exactly when the
        naive loop would next run it.  With a future ``at``, a timer is
        scheduled instead.
        """
        index = component._engine_index
        if at is not None and at > self.cycle:
            self._schedule(index, at)
            return
        if not self._active[index]:
            self._active[index] = True
            self._num_active += 1

    def _schedule(self, index: int, at: int) -> None:
        if at >= FOREVER:
            return
        previous = self._timer_at[index]
        if previous is not None and previous <= at:
            return  # an equal-or-earlier timer is already pending
        self._timer_at[index] = at
        heappush(self._timers, (at, index))

    def _fire_due_timers(self, cycle: int) -> None:
        timers = self._timers
        active = self._active
        while timers and timers[0][0] <= cycle:
            due, index = heappop(timers)
            if self._timer_at[index] == due:
                self._timer_at[index] = None
            if not active[index]:
                active[index] = True
                self._num_active += 1

    # ------------------------------------------------------------------ #
    # Stepping.
    # ------------------------------------------------------------------ #
    def step(self, cycles: int = 1) -> int:
        """Run ``cycles`` cycles; return the cycle counter afterwards."""
        if self.strategy == "naive":
            return self._step_naive(cycles)
        return self._step_active(cycles)

    def _step_naive(self, cycles: int) -> int:
        components = self._components
        post_components = self._post_components
        for _ in range(cycles):
            cycle = self.cycle
            for component in components:
                component.tick(cycle)
            self.ticks_executed += len(components)
            for component in post_components:
                component.post_tick(cycle)
            self.cycle = cycle + 1
        return self.cycle

    def _step_active(self, cycles: int) -> int:
        components = self._components
        active = self._active
        has_post = self._has_post
        profiler = self.profiler
        target = self.cycle + cycles
        while self.cycle < target:
            cycle = self.cycle
            if self._timers:
                self._fire_due_timers(cycle)
            if self._num_active == 0:
                # Whole model quiescent: fast-forward to the earliest
                # timer (or the end of this step window) in one jump.
                jump = self._timers[0][0] if self._timers else target
                if jump > target:
                    jump = target
                if jump <= cycle:  # pragma: no cover - defensive
                    jump = cycle + 1
                self.fast_forwarded_cycles += jump - cycle
                if self.on_fast_forward is not None:
                    self.on_fast_forward(cycle, jump)
                if profiler is not None:
                    profiler.note_fast_forward(jump - cycle)
                self.cycle = jump
                continue
            if profiler is not None and cycle >= profiler.next_sample:
                profiler.sample(cycle, self._num_active)
            post_due: Optional[List[Component]] = None
            index = 0
            # Plain index loop: mid-cycle wakes at higher indices must be
            # picked up within this same scan (len() can also grow if a
            # tick registers new components).
            while index < len(components):
                if active[index]:
                    component = components[index]
                    component.tick(cycle)
                    self.ticks_executed += 1
                    if has_post[index]:
                        if post_due is None:
                            post_due = [component]
                        else:
                            post_due.append(component)
                    until = component.idle_until(cycle)
                    if until is not None and until > cycle + 1:
                        active[index] = False
                        self._num_active -= 1
                        self._schedule(index, until)
                index += 1
            if post_due is not None:
                for component in post_due:
                    component.post_tick(cycle)
            self.cycle = cycle + 1
        return self.cycle

    def run_until(
        self,
        condition: Callable[[], bool],
        max_cycles: int = 10_000_000,
        check_every: int = 1,
    ) -> int:
        """Step until ``condition()`` is true; raise on ``max_cycles``.

        Semantics (identical under both strategies):

        * ``condition`` is evaluated *before* the first step — a condition
          that already holds returns immediately at the current cycle —
          and then every ``check_every`` cycles, so the returned cycle is
          the first multiple of ``check_every`` (from the starting cycle)
          at which the condition is observed true.
        * The budget is exact: the engine never advances more than
          ``max_cycles`` cycles past the starting cycle.  The final step
          before the budget runs out is clamped to the remaining cycles,
          and :class:`TimeoutError` is raised once exactly ``max_cycles``
          cycles have elapsed with the condition still false.

        ``check_every`` amortizes the cost of expensive conditions by only
        evaluating them every N cycles.
        """
        start = self.cycle
        while not condition():
            elapsed = self.cycle - start
            remaining = max_cycles - elapsed
            if remaining <= 0:
                raise TimeoutError(
                    f"condition not met within {max_cycles} cycles"
                )
            self.step(check_every if check_every < remaining else remaining)
        return self.cycle

    def reset(self) -> None:
        """Reset the cycle counter and every component."""
        self.cycle = 0
        self.ticks_executed = 0
        self.fast_forwarded_cycles = 0
        self._timers.clear()
        self._timer_at = [None] * len(self._components)
        self._active = [True] * len(self._components)
        self._num_active = len(self._components)
        for component in self._components:
            component.reset()
        if self.on_reset is not None:
            self.on_reset()

"""Cycle-driven simulation engine.

The whole GPU model is built from :class:`Component` objects that the
:class:`Engine` ticks once per cycle in two phases:

``tick()``
    Produce work for this cycle: arbitrate, move flits, issue requests.
    Components are ticked in registration order, which the device builder
    arranges to follow the pipeline direction (SMs first, then muxes, then
    the crossbar, then L2/DRAM, then the reply path) so a flit can traverse
    one hop per cycle without one-cycle bubbles being inserted artificially.

``post_tick()``
    Commit state that must only become visible next cycle (e.g. buffer
    occupancy updates), keeping intra-cycle evaluation order-independent
    where it matters.

The engine is deliberately simple — no event queue — because nearly every
component in the experiments is active every cycle while the channel is
being driven, and the constant factor of a flat list walk beats a heap.
"""

from __future__ import annotations

from typing import Callable, List, Optional


class Component:
    """Base class for anything the engine ticks once per cycle."""

    #: Human-readable name used in traces and error messages.
    name: str = "component"

    def tick(self, cycle: int) -> None:  # pragma: no cover - interface
        """Advance one cycle of work."""

    def post_tick(self, cycle: int) -> None:
        """Commit end-of-cycle state.  Optional."""

    def reset(self) -> None:
        """Return to the post-construction state.  Optional."""


class Engine:
    """Ticks registered components in order until stopped.

    Parameters
    ----------
    components:
        Initial component list; more can be added with :meth:`register`.
    """

    def __init__(self, components: Optional[List[Component]] = None) -> None:
        self._components: List[Component] = []
        self._post_components: List[Component] = []
        self.cycle: int = 0
        for component in components or []:
            self.register(component)

    def register(self, component: Component) -> Component:
        """Add ``component`` to the tick list and return it."""
        self._components.append(component)
        # Only components that override post_tick pay for the second phase.
        if type(component).post_tick is not Component.post_tick:
            self._post_components.append(component)
        return component

    def register_all(self, components: List[Component]) -> None:
        for component in components:
            self.register(component)

    @property
    def components(self) -> List[Component]:
        return list(self._components)

    def step(self, cycles: int = 1) -> int:
        """Run ``cycles`` cycles; return the cycle counter afterwards."""
        components = self._components
        post_components = self._post_components
        for _ in range(cycles):
            cycle = self.cycle
            for component in components:
                component.tick(cycle)
            for component in post_components:
                component.post_tick(cycle)
            self.cycle = cycle + 1
        return self.cycle

    def run_until(
        self,
        condition: Callable[[], bool],
        max_cycles: int = 10_000_000,
        check_every: int = 1,
    ) -> int:
        """Step until ``condition()`` is true; raise on ``max_cycles``.

        ``check_every`` amortizes the cost of expensive conditions by only
        evaluating them every N cycles.
        """
        start = self.cycle
        while not condition():
            if self.cycle - start >= max_cycles:
                raise TimeoutError(
                    f"condition not met within {max_cycles} cycles"
                )
            self.step(check_every)
        return self.cycle

    def reset(self) -> None:
        """Reset the cycle counter and every component."""
        self.cycle = 0
        for component in self._components:
            component.reset()

"""Lightweight statistics collection shared by all components.

A :class:`StatsRegistry` is a flat namespace of named counters and samplers.
Components increment counters as they work; experiments snapshot and diff
the registry before/after a run.  Keeping this trivially simple (plain
dicts) matters: stats updates happen on the per-cycle hot path.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional


class Sampler:
    """Accumulates scalar observations (e.g. latencies)."""

    __slots__ = ("count", "total", "minimum", "maximum", "values")

    def __init__(self, keep_values: bool = False) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        #: Raw observations; only retained when ``keep_values`` is set
        #: (the per-cycle hot path skips the append entirely otherwise).
        self.values: Optional[List[float]] = [] if keep_values else None

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if self.values is not None:
            self.values.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        if self.values is not None:
            self.values.clear()


class StatsRegistry:
    """Named counters and samplers with snapshot/diff support."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = defaultdict(int)
        self.samplers: Dict[str, Sampler] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def sampler(self, name: str, keep_values: bool = False) -> Sampler:
        existing = self.samplers.get(name)
        if existing is None:
            existing = Sampler(keep_values=keep_values)
            self.samplers[name] = existing
        return existing

    def sample(self, name: str, value: float) -> None:
        self.sampler(name).add(value)

    def snapshot(self) -> Dict[str, int]:
        """Copy of the counter map (samplers are not snapshotted)."""
        return dict(self.counters)

    def diff(self, before: Dict[str, int]) -> Dict[str, int]:
        """Counter deltas since ``before`` (a prior :meth:`snapshot`)."""
        return {
            key: value - before.get(key, 0)
            for key, value in self.counters.items()
            if value != before.get(key, 0)
        }

    def reset(self) -> None:
        self.counters.clear()
        for sampler in self.samplers.values():
            sampler.reset()

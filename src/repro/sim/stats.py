"""Lightweight statistics collection shared by all components.

A :class:`StatsRegistry` is a flat namespace of named counters, samplers
and fixed-bucket histograms.  Components increment counters as they work;
experiments snapshot and diff the registry before/after a run.  Keeping
this trivially simple (plain dicts) matters: stats updates happen on the
per-cycle hot path.

Latency distributions are recorded in :class:`Histogram` objects —
fixed-width buckets with O(num_buckets) percentile queries — instead of
retaining raw per-observation value lists, so a million-cycle run costs a
few hundred ints of memory rather than one float per observation.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any, Dict, List, Optional


def _json_bound(value: float) -> Optional[float]:
    """A min/max bound made JSON-safe.

    ``float("inf")``/``-inf`` serialize as the non-RFC ``Infinity`` token,
    which strict JSON parsers reject; an unobserved bound is ``null``.
    """
    return value if math.isfinite(value) else None


class Sampler:
    """Accumulates scalar observations (e.g. latencies)."""

    __slots__ = ("count", "total", "minimum", "maximum", "values")

    def __init__(self, keep_values: bool = False) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        #: Raw observations; only retained when ``keep_values`` is set
        #: (the per-cycle hot path skips the append entirely otherwise).
        self.values: Optional[List[float]] = [] if keep_values else None

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if self.values is not None:
            self.values.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Sampler") -> "Sampler":
        """Fold ``other``'s observations into this sampler (in place).

        Used to aggregate latency statistics across devices and across
        the runner's worker processes, where each job returns a summary
        of its own registry.  Raw values are concatenated only when both
        sides retained them.
        """
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        if self.values is not None and other.values is not None:
            self.values.extend(other.values)
        elif other.values is not None and self.count == other.count:
            self.values = list(other.values)
        return self

    def summary(self) -> Dict[str, Any]:
        """JSON-safe {count, mean, min, max, total} summary."""
        if not self.count:
            return {"count": 0, "mean": 0.0, "min": None, "max": None,
                    "total": 0.0}
        # Aggregate-only samplers (``from_summary`` of a summary that lost
        # its bounds) can carry ``count > 0`` with untouched ±inf bounds.
        return {
            "count": self.count,
            "mean": self.mean,
            "min": _json_bound(self.minimum),
            "max": _json_bound(self.maximum),
            "total": self.total,
        }

    @classmethod
    def from_summary(cls, data: Dict[str, Any]) -> "Sampler":
        """Rebuild an aggregate-only sampler from :meth:`summary` output."""
        sampler = cls()
        count = int(data.get("count", 0))
        if count:
            sampler.count = count
            sampler.total = float(
                data.get("total", data.get("mean", 0.0) * count)
            )
            if data.get("min") is not None:
                sampler.minimum = float(data["min"])
            if data.get("max") is not None:
                sampler.maximum = float(data["max"])
        return sampler

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        if self.values is not None:
            self.values.clear()


class Histogram:
    """Fixed-bucket histogram with percentile queries.

    Bucket ``i`` counts observations in ``[i*bucket_width,
    (i+1)*bucket_width)``; everything at or beyond the last edge lands in
    an overflow bucket (percentiles falling there report the observed
    maximum).  ``add`` is O(1) and allocation-free, so it is safe on the
    simulator's completion paths; percentile queries walk the bucket
    array once.
    """

    __slots__ = ("bucket_width", "num_buckets", "buckets", "overflow",
                 "count", "total", "minimum", "maximum")

    def __init__(self, bucket_width: int = 16, num_buckets: int = 256) -> None:
        if bucket_width <= 0 or num_buckets <= 0:
            raise ValueError("bucket_width and num_buckets must be positive")
        self.bucket_width = bucket_width
        self.num_buckets = num_buckets
        self.buckets = [0] * num_buckets
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        index = int(value) // self.bucket_width
        if 0 <= index < self.num_buckets:
            self.buckets[index] += 1
        else:
            self.overflow += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` (0..100), as a bucket upper edge.

        The upper edge is the conservative answer for latency budgets: at
        least ``p`` percent of observations were at or below it.
        """
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(self.count * p / 100.0))
        if rank > self.count:
            rank = self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            cumulative += bucket_count
            if cumulative >= rank:
                return float((index + 1) * self.bucket_width)
        return float(self.maximum)  # rank falls in the overflow bucket

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (geometries must match)."""
        if (other.bucket_width != self.bucket_width
                or other.num_buckets != self.num_buckets):
            raise ValueError(
                f"histogram geometry mismatch: "
                f"{self.bucket_width}x{self.num_buckets} vs "
                f"{other.bucket_width}x{other.num_buckets}"
            )
        for index, bucket_count in enumerate(other.buckets):
            self.buckets[index] += bucket_count
        self.overflow += other.overflow
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary with the headline percentiles."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": _json_bound(self.minimum),
            "max": _json_bound(self.maximum),
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "overflow": self.overflow,
            "bucket_width": self.bucket_width,
            "num_buckets": self.num_buckets,
        }

    def state_dict(self) -> Dict[str, Any]:
        """Full-fidelity JSON-safe state: buckets included.

        Unlike :meth:`to_dict` (a human-facing summary), the state dict
        round-trips through :meth:`from_state` without losing bucket
        counts, so histograms can be merged *after* JSON transport —
        the metrics plane ships these across worker-shard boundaries.
        """
        return {
            "bucket_width": self.bucket_width,
            "num_buckets": self.num_buckets,
            "buckets": list(self.buckets),
            "overflow": self.overflow,
            "count": self.count,
            "total": self.total,
            "min": _json_bound(self.minimum),
            "max": _json_bound(self.maximum),
        }

    @classmethod
    def from_state(cls, data: Dict[str, Any]) -> "Histogram":
        """Rebuild a histogram from :meth:`state_dict` output."""
        histogram = cls(
            bucket_width=int(data.get("bucket_width", 16)),
            num_buckets=int(data.get("num_buckets", 256)),
        )
        buckets = list(data.get("buckets") or ())
        if len(buckets) > histogram.num_buckets:
            raise ValueError(
                f"histogram state has {len(buckets)} buckets but declares "
                f"num_buckets={histogram.num_buckets}"
            )
        for index, bucket_count in enumerate(buckets):
            histogram.buckets[index] = int(bucket_count)
        histogram.overflow = int(data.get("overflow", 0))
        histogram.count = int(data.get("count", 0))
        histogram.total = float(data.get("total", 0.0))
        if data.get("min") is not None:
            histogram.minimum = float(data["min"])
        if data.get("max") is not None:
            histogram.maximum = float(data["max"])
        return histogram

    def reset(self) -> None:
        self.buckets = [0] * self.num_buckets
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")


class StatsRegistry:
    """Named counters, samplers and histograms with snapshot/diff support."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = defaultdict(int)
        self.samplers: Dict[str, Sampler] = {}
        self.histograms: Dict[str, Histogram] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def sampler(self, name: str, keep_values: bool = False) -> Sampler:
        existing = self.samplers.get(name)
        if existing is None:
            existing = Sampler(keep_values=keep_values)
            self.samplers[name] = existing
        return existing

    def sample(self, name: str, value: float) -> None:
        self.sampler(name).add(value)

    def histogram(
        self, name: str, bucket_width: int = 16, num_buckets: int = 256
    ) -> Histogram:
        existing = self.histograms.get(name)
        if existing is None:
            existing = Histogram(bucket_width, num_buckets)
            self.histograms[name] = existing
        return existing

    def snapshot(self) -> Dict[str, Any]:
        """Copy of the counter map, plus sampler summaries.

        Non-empty samplers appear under the reserved ``"samplers"`` key as
        {count, mean, min, max, total} dicts, so experiment before/after
        snapshots no longer silently drop latency data.
        """
        snap: Dict[str, Any] = dict(self.counters)
        if self.samplers:
            summaries = {
                name: sampler.summary()
                for name, sampler in self.samplers.items()
                if sampler.count
            }
            if summaries:
                snap["samplers"] = summaries
        return snap

    def diff(self, before: Dict[str, Any]) -> Dict[str, Any]:
        """Deltas since ``before`` (a prior :meth:`snapshot`).

        Counter deltas keep the historical flat shape; samplers that
        gained observations since ``before`` appear under ``"samplers"``
        with the *interval's* count and mean (min/max are lifetime values
        — a running min cannot be un-merged).
        """
        out: Dict[str, Any] = {
            key: value - before.get(key, 0)
            for key, value in self.counters.items()
            if value != before.get(key, 0)
        }
        before_samplers = before.get("samplers") or {}
        sampler_diffs: Dict[str, Any] = {}
        for name, sampler in self.samplers.items():
            if not sampler.count:
                continue
            prior = before_samplers.get(name)
            prior_count = prior["count"] if prior else 0
            delta_count = sampler.count - prior_count
            if not delta_count:
                continue
            prior_total = prior.get("total", 0.0) if prior else 0.0
            delta_total = sampler.total - prior_total
            sampler_diffs[name] = {
                "count": delta_count,
                "mean": delta_total / delta_count,
                "min": _json_bound(sampler.minimum),
                "max": _json_bound(sampler.maximum),
                "total": delta_total,
            }
        if sampler_diffs:
            out["samplers"] = sampler_diffs
        return out

    def reset(self) -> None:
        self.counters.clear()
        for sampler in self.samplers.values():
            sampler.reset()
        for histogram in self.histograms.values():
            histogram.reset()

"""Per-SM hardware clock registers with a calibrated skew model.

Section 4.1 of the paper shows that NVIDIA's per-SM ``clock()`` register can
be used for sender/receiver synchronization because SMs that are physically
co-located read nearly identical values: under 5 cycles of skew within a
TPC and under 15 cycles within a GPC, while *different* GPCs differ by
billions of cycles (Figure 6 shows a ~4x spread across GPCs).

The model here reproduces exactly that structure:

``clock(sm) = engine_cycle + gpc_base[gpc] + tpc_offset[tpc] + sm_offset[sm]
              (+ read jitter) (+ optional defensive fuzz)``

where ``gpc_base`` values are drawn uniformly from a billions-wide range and
the TPC/SM offsets are bounded by the paper's measured skews.
"""

from __future__ import annotations

import random
from typing import List

from ..config import GpuConfig
from .engine import Engine


class ClockSystem:
    """Factory and reader for every SM's clock register.

    Parameters
    ----------
    config:
        GPU configuration (provides topology and the skew model).
    engine:
        The simulation engine whose cycle counter is the time base.
    seed_salt:
        Mixed into the config seed so independent devices built from the
        same config do not share offsets.
    """

    def __init__(
        self, config: GpuConfig, engine: Engine, seed_salt: int = 0
    ) -> None:
        self._config = config
        self._engine = engine
        skew = config.clock_skew
        rng = random.Random((config.seed << 16) ^ 0xC10C ^ seed_salt)
        self._rng = rng
        self._gpc_base: List[int] = [
            rng.randrange(skew.gpc_base_min, skew.gpc_base_max)
            for _ in range(config.num_gpcs)
        ]
        self._tpc_offset: List[int] = [
            rng.randrange(0, skew.tpc_jitter + 1)
            for _ in range(config.num_tpcs)
        ]
        self._sm_offset: List[int] = [
            rng.randrange(0, skew.sm_jitter + 1)
            for _ in range(config.num_sms)
        ]
        self._read_jitter = skew.read_jitter
        self._fuzz = config.clock_fuzz
        #: Per-SM static offsets, precomputed once: ``sm_to_gpc`` walks
        #: the TPC→GPC topology map, which is far too expensive to
        #: rebuild on every clock() read (receivers read the clock every
        #: probe iteration).
        self._base_offsets: List[int] = [
            self._gpc_base[config.sm_to_gpc(sm)]
            + self._tpc_offset[config.sm_to_tpc(sm)]
            + self._sm_offset[sm]
            for sm in range(config.num_sms)
        ]
        #: RNG state right after the offset draws; reset() rewinds the
        #: per-read jitter stream to here so a device reset replays
        #: exactly like a freshly built device.
        self._initial_rng_state = rng.getstate()

    @property
    def config(self) -> GpuConfig:
        return self._config

    def base_offset(self, sm_id: int) -> int:
        """The static (cycle-independent) offset of ``sm_id``'s register."""
        return self._base_offsets[sm_id]

    def read(self, sm_id: int) -> int:
        """Read ``clock()`` on ``sm_id`` at the current engine cycle.

        Includes per-read sampling jitter and, if the defensive
        ``clock_fuzz`` knob is nonzero, a uniform random fuzz term
        (Section 6's clock-fuzzing countermeasure).
        """
        value = self._engine.cycle + self.base_offset(sm_id)
        if self._read_jitter:
            value += self._rng.randrange(0, self._read_jitter + 1)
        if self._fuzz:
            value += self._rng.randrange(-self._fuzz, self._fuzz + 1)
        return value & 0xFFFFFFFF  # the hardware register is 32-bit

    def read_raw(self, sm_id: int) -> int:
        """Read the full-width register without truncation or jitter."""
        return self._engine.cycle + self.base_offset(sm_id)

    def skew_between(self, sm_a: int, sm_b: int) -> int:
        """Static skew (absolute difference) between two SMs' registers."""
        return abs(self.base_offset(sm_a) - self.base_offset(sm_b))

    def reset(self) -> None:
        """Rewind the jitter/fuzz stream to its post-construction state.

        The static offsets are fixed for the device's lifetime; only the
        per-read stream advances, and a device reset must rewind it so
        post-reset clock reads match a fresh device's.
        """
        self._rng.setstate(self._initial_rng_state)

"""Event-driven batch engine (``strategy="vector"``).

The active-set engine (:class:`~repro.sim.engine.Engine`) still performs
an O(all-components) index scan on every *busy* cycle — at the paper's
Table-1 scale (80 SMs, 48 L2 slices, 212 components) that scan dominates
wall-clock even though only ~2 components are active per busy cycle.

:class:`VectorEngine` keeps the active strategy's semantics bit-identical
while replacing the scan with event-driven stepping:

* the active set is a materialised index set; each busy cycle processes
  exactly the active indices in pipeline order (a min-heap frontier),
  so the per-cycle cost is O(#active · log #active), not O(N);
* large frontiers (all-channels workloads) are ordered with one numpy
  ``sort`` over a preallocated int64 array instead of heapify — the
  "batched active-set scheduling" half of the vector strategy;
* contiguous runs of same-shaped components (a TPC mux tree, the per-GPC
  reply-mux bank) can be registered as a *bank*
  (:class:`repro.noc.soa.MuxBank`): when the frontier reaches the bank
  the whole bank ticks as one operation, with queue-occupancy gathers
  over the struct-of-arrays mirrors deciding which members have work.

Mid-cycle wake ordering is preserved exactly: a wake at an index after
the current frontier position is pushed into the live frontier and ticks
this cycle; a wake at or before it becomes active next cycle — precisely
when the naive loop would next reach that component.

This module imports numpy at import time; :func:`repro.sim.engine
.create_engine` translates the ImportError into a clean
:class:`repro.config.ConfigError` (no silent fallback).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List, Optional

import numpy as np

from .engine import Component, Engine

#: Frontier size above which ordering switches from heapq to numpy sort.
_NUMPY_FRONTIER = 24

#: Sentinel for "not scanning" (no wake can beat it).
_NOT_SCANNING = 1 << 62


class VectorEngine(Engine):
    """Event-driven engine, bit-identical to ``strategy="active"``."""

    def __init__(self, components: Optional[List[Component]] = None) -> None:
        #: Indices with their active flag set (mirrors ``_active``).
        self._active_set: set = set()
        #: Live frontier heap for the cycle being scanned.
        self._frontier: List[int] = []
        #: Index currently being processed, or ``_NOT_SCANNING``.
        self._scan_pos: int = _NOT_SCANNING
        #: Registered component banks: index -> (bank, lo, hi) for the
        #: first member index; other members map to the same record.
        self._bank_at: dict = {}
        super().__init__(components, strategy="vector")

    # ------------------------------------------------------------------ #
    # Registration / wake plumbing (keeps ``_active_set`` in sync).
    # ------------------------------------------------------------------ #
    def register(self, component: Component) -> Component:
        component = super().register(component)
        index = component._engine_index
        self._active_set.add(index)
        if index > self._scan_pos != _NOT_SCANNING:
            heappush(self._frontier, index)
        return component

    def register_bank(self, bank) -> None:
        """Register a component bank for batched ticking.

        Members must already be registered, contiguous in registration
        order, and must not override ``post_tick`` (banks commit no
        deferred state).
        """
        indices = [m._engine_index for m in bank.members]
        lo, hi = min(indices), max(indices) + 1
        if sorted(indices) != list(range(lo, hi)):
            raise ValueError(f"bank {bank.name}: members not contiguous")
        if any(self._has_post[i] for i in indices):
            raise ValueError(f"bank {bank.name}: members use post_tick")
        bank.lo = lo
        record = (bank, lo, hi)
        for index in indices:
            self._bank_at[index] = record

    def wake(self, component: Component, at: Optional[int] = None) -> None:
        index = component._engine_index
        if at is not None and at > self.cycle:
            self._schedule(index, at)
            return
        if not self._active[index]:
            self._active[index] = True
            self._num_active += 1
            self._active_set.add(index)
            if index > self._scan_pos:
                heappush(self._frontier, index)

    def _fire_due_timers(self, cycle: int) -> None:
        timers = self._timers
        active = self._active
        active_set = self._active_set
        while timers and timers[0][0] <= cycle:
            due, index = heappop(timers)
            if self._timer_at[index] == due:
                self._timer_at[index] = None
            if not active[index]:
                active[index] = True
                self._num_active += 1
                active_set.add(index)

    # ------------------------------------------------------------------ #
    # Stepping.
    # ------------------------------------------------------------------ #
    def step(self, cycles: int = 1) -> int:
        components = self._components
        active = self._active
        has_post = self._has_post
        active_set = self._active_set
        bank_at = self._bank_at
        profiler = self.profiler
        target = self.cycle + cycles
        while self.cycle < target:
            cycle = self.cycle
            if self._timers:
                self._fire_due_timers(cycle)
            if not active_set:
                # Whole model quiescent: jump to the earliest timer.
                jump = self._timers[0][0] if self._timers else target
                if jump > target:
                    jump = target
                if jump <= cycle:  # pragma: no cover - defensive
                    jump = cycle + 1
                self.fast_forwarded_cycles += jump - cycle
                if self.on_fast_forward is not None:
                    self.on_fast_forward(cycle, jump)
                if profiler is not None:
                    profiler.note_fast_forward(jump - cycle)
                self.cycle = jump
                continue
            if profiler is not None and cycle >= profiler.next_sample:
                profiler.sample(cycle, self._num_active)
            # Order this cycle's frontier by pipeline index.  A sorted
            # list is a valid min-heap, so mid-cycle wakes can heappush
            # into it directly.
            count = len(active_set)
            if count > _NUMPY_FRONTIER:
                order = np.fromiter(active_set, dtype=np.int64, count=count)
                order.sort()
                frontier = order.tolist()
            else:
                frontier = sorted(active_set)
            self._frontier = frontier
            post_due: Optional[List[Component]] = None
            ticked = 0
            pos = -1
            while frontier:
                index = heappop(frontier)
                if index <= pos:
                    continue  # duplicate mid-cycle wake
                pos = index
                self._scan_pos = index
                if not active[index]:  # pragma: no cover - defensive
                    continue
                record = bank_at.get(index)
                if record is not None:
                    bank, lo, hi = record
                    # The bank's members are contiguous, so every active
                    # index in [index, hi) belongs to it; tick them as
                    # one batched operation and advance the scan past
                    # the whole bank.
                    members = [i for i in range(index, hi) if active[i]]
                    self._scan_pos = hi - 1
                    if profiler is not None:
                        profiler.note_bank_dispatch(len(members))
                    ticked += bank.tick_batch(
                        self, members, cycle
                    )
                    pos = hi - 1
                    continue
                component = components[index]
                component.tick(cycle)
                ticked += 1
                if has_post[index]:
                    if post_due is None:
                        post_due = [component]
                    else:
                        post_due.append(component)
                until = component.idle_until(cycle)
                if until is not None and until > cycle + 1:
                    active[index] = False
                    self._num_active -= 1
                    active_set.discard(index)
                    self._schedule(index, until)
            self._scan_pos = _NOT_SCANNING
            self.ticks_executed += ticked
            if post_due is not None:
                for component in post_due:
                    component.post_tick(cycle)
            self.cycle = cycle + 1
        return self.cycle

    def park(self, index: int, until: int) -> None:
        """Deactivate ``index`` until ``until`` (bank tick support)."""
        if self._active[index]:
            self._active[index] = False
            self._num_active -= 1
            self._active_set.discard(index)
            self._schedule(index, until)

    def reset(self) -> None:
        super().reset()
        self._active_set = set(range(len(self._components)))
        self._frontier = []
        self._scan_pos = _NOT_SCANNING

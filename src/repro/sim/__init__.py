"""Simulation kernel: cycle engine, clock registers, statistics."""

from .engine import Component, Engine
from .clock import ClockSystem
from .stats import Sampler, StatsRegistry

__all__ = ["Component", "Engine", "ClockSystem", "Sampler", "StatsRegistry"]

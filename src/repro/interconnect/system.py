"""A multi-GPU system: N devices joined by an NVLink-class fabric.

:class:`MultiGpuSystem` generalizes the single :class:`GpuDevice` to a
node of several devices sharing one simulation engine.  The fabric is
assembled from the same NoC building blocks as the on-chip network:

* every device gets two egress queues toward the fabric (request
  injection from its SMs, read replies from its L2 remote VOQs),
* every topology node gets a :class:`~repro.noc.crossbar.Crossbar`
  router arbitrating those egress queues and incoming link RX queues
  onto outgoing links or local delivery,
* every directed link gets a :class:`~repro.interconnect.link.LinkPipe`
  modeling serialization bandwidth and flight latency,
* every device gets a :class:`~repro.interconnect.link.FabricIngress`
  shim landing delivered packets in its L2 slices / reply path.

All devices tick on one shared engine, so the lockstep oracle can
digest-compare a whole system across engine strategies exactly like a
single device, and ``engine.reset()`` restores the entire node.

Example::

    system = MultiGpuSystem(small_config(), LinkConfig(num_devices=2))
    gpu0, gpu1 = system.devices
    gpu1.preload_region(base, size)          # remote data lives in GPU1 L2
    gpu0.launch(kernel_with_remote_memops)   # MemOp(device=1) goes over NVLink
    system.run()
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..config import GpuConfig, LinkConfig, VOLTA_V100
from ..gpu.device import GpuDevice
from ..noc.buffer import PacketQueue
from ..noc.crossbar import Crossbar
from ..noc.packet import Packet
from ..sim.engine import create_engine
from .link import FabricIngress, LinkPipe
from .topology import FabricTopology, build_topology


class MultiGpuSystem:
    """``link.num_devices`` GPUs joined by a configurable fabric."""

    def __init__(
        self,
        config: GpuConfig = VOLTA_V100,
        link: Optional[LinkConfig] = None,
        l1_enabled: bool = False,
        seed_salt: int = 0,
    ) -> None:
        self.config = config
        self.link = link if link is not None else LinkConfig()
        self.topology: FabricTopology = build_topology(self.link)
        self.engine = create_engine(config.engine_strategy)
        #: The member devices; ``devices[d].device_id == d``.
        self.devices: List[GpuDevice] = [
            GpuDevice(
                config,
                l1_enabled=l1_enabled,
                # Distinct per-device clock/SM jitter streams, offset by
                # the caller's salt (sweep points re-salt whole systems).
                seed_salt=(seed_salt << 6) + d,
                engine=self.engine,
                device_id=d,
                fabric=True,
            )
            for d in range(self.link.num_devices)
        ]
        for device in self.devices:
            device._cross_deliver = self._deliver_cross
        self._build_fabric()
        # Single-slot engine hooks: the devices declined them (shared
        # engine), so the system installs fan-outs over all devices.
        self.engine.on_reset = self._on_engine_reset
        hubs = [d.telemetry for d in self.devices if d.telemetry is not None]
        if hubs:

            def _note_fast_forward(start: int, stop: int) -> None:
                for hub in hubs:
                    hub.note_fast_forward(start, stop)

            self.engine.on_fast_forward = _note_fast_forward
        if config.metrics_enabled:
            # One engine, one hot loop: attribute engine-level signals to
            # device 0's registry (labeled ``device=0``); the per-mux
            # signals already land in their own device's profiler.
            self.engine.profiler = self.devices[0].profiler

    # ------------------------------------------------------------------ #
    # Fabric construction.
    # ------------------------------------------------------------------ #
    def _build_fabric(self) -> None:
        config = self.config
        link = self.link
        topo = self.topology
        cap = link.link_buffer_depth

        # Per directed link: TX on the sending node, RX on the receiving
        # node, and the serializing pipe between them.
        self._tx: Dict[tuple, PacketQueue] = {}
        self._rx: Dict[tuple, PacketQueue] = {}
        self.link_pipes: List[LinkPipe] = []
        for edge in topo.links:
            a, b = edge
            tx = PacketQueue(f"link{a}-{b}.tx", cap)
            rx = PacketQueue(f"link{a}-{b}.rx", cap)
            self._tx[edge] = tx
            self._rx[edge] = rx
            self.link_pipes.append(
                LinkPipe(
                    f"link{a}-{b}",
                    tx,
                    rx,
                    width=link.link_width,
                    latency=link.link_latency,
                )
            )

        # Per device: the router's local-delivery queue and ingress shim.
        self.delivery_queues: List[PacketQueue] = [
            PacketQueue(f"d{d}.fab.deliver", cap * 2)
            for d in range(topo.num_devices)
        ]
        self.ingress: List[FabricIngress] = [
            FabricIngress(
                f"d{d}.fab.ingress", self.delivery_queues[d], self.devices[d]
            )
            for d in range(topo.num_devices)
        ]

        # Per node: a crossbar router.  Link *bandwidth* lives in the
        # pipes' serializers, so the router width is the generous on-chip
        # crossbar width — contention shows up as TX-queue back-pressure,
        # not router starvation.
        self.routers: List[Crossbar] = []
        for node in range(topo.num_nodes):
            is_device = node < topo.num_devices
            out_edges = [e for e in topo.links if e[0] == node]
            in_edges = [e for e in topo.links if e[1] == node]
            inputs: List[PacketQueue] = []
            if is_device:
                device = self.devices[node]
                inputs.append(device.fabric_inject)
                inputs.append(device.fabric_reply)
            inputs.extend(self._rx[e] for e in in_edges)
            outputs: List[PacketQueue] = [self._tx[e] for e in out_edges]
            out_index = {e[1]: i for i, e in enumerate(out_edges)}
            local_index = None
            if is_device:
                local_index = len(outputs)
                outputs.append(self.delivery_queues[node])
            self.routers.append(
                Crossbar(
                    f"fab{node}.router",
                    inputs,
                    outputs,
                    route=self._make_route(node, out_index, local_index),
                    width=config.xbar_width,
                    policy_name=link.arbitration,
                    seed=config.seed + 500 + node,
                    stats=(self.devices[node].stats if is_device else None),
                )
            )

        # Registration order is the fabric pipeline order, appended after
        # every device's own components (deterministic across builds, as
        # the digest-positional lockstep oracle requires).
        self.engine.register_all(self.routers)
        self.engine.register_all(self.link_pipes)
        self.engine.register_all(self.ingress)

        # Reactive wake wiring (active/vector strategies park idle
        # fabric components; these hooks un-park them on new input).
        for node, router in enumerate(self.routers):
            if node < topo.num_devices:
                device = self.devices[node]
                device.fabric_inject.on_push = router.wake
                device.fabric_reply.on_push = router.wake
        for edge, pipe in zip(topo.links, self.link_pipes):
            self._tx[edge].on_push = pipe.wake
            self._rx[edge].on_push = self.routers[edge[1]].wake
            # pipe claimed rx.on_space at construction (credit stalls).
        for d in range(topo.num_devices):
            self.delivery_queues[d].on_push = self.ingress[d].wake

        # Fabric observability: each link's utilization series and its
        # TX/RX occupancy meters land on the hub of the link's device
        # endpoint (every edge touches at least one device in all three
        # topologies; for device-to-device edges the *sender* owns the
        # link, matching the on-chip "egress mux owns the wire" idiom).
        # No-op when telemetry is disabled — hubs are None and queues
        # keep their `meter is None` fast path.
        for edge, pipe in zip(topo.links, self.link_pipes):
            a, b = edge
            hub_node = a if a < topo.num_devices else b
            hub = self.devices[hub_node].telemetry
            if hub is None:
                continue
            pipe.attach_telemetry(hub)
            hub.timeline.register_queue(self._tx[edge])
            hub.timeline.register_queue(self._rx[edge])
        for d in range(topo.num_devices):
            hub = self.devices[d].telemetry
            if hub is None:
                continue
            device = self.devices[d]
            hub.timeline.register_queue(self.delivery_queues[d])
            if device.fabric_inject is not None:
                hub.timeline.register_queue(device.fabric_inject)
            if device.fabric_reply is not None:
                hub.timeline.register_queue(device.fabric_reply)

        # Fabric integrity: a dedicated checker for everything past the
        # device edge (routers, link credit flow, delivery queues) —
        # each device already audits its own interior via
        # InvariantChecker.attach.  Registered last on the shared
        # engine, so audits see settled end-of-cycle fabric state.
        self._validator = None
        if config.validate_enabled:
            from ..validate.invariants import InvariantChecker

            InvariantChecker.attach_system(self)

    def _make_route(
        self,
        node: int,
        out_index: Dict[int, int],
        local_index: Optional[int],
    ) -> Callable[[Packet], int]:
        next_hop = self.topology.next_hop[node]

        def route(packet: Packet) -> int:
            # Replies travel toward the issuing device, requests toward
            # the serving device.
            target = packet.src_device if packet.is_reply else packet.dst_device
            if target == node:
                return local_index
            return out_index[next_hop[target]]

        return route

    # ------------------------------------------------------------------ #
    # Cross-device plumbing.
    # ------------------------------------------------------------------ #
    def _deliver_cross(self, packet: Packet, cycle: int) -> None:
        """Completion owed to a foreign device (posted-write credits).

        Remote posted writes follow the local convention — the ack is
        free and instantaneous at L2 acceptance.  Timed remote *reads*
        never come through here: their replies ride the fabric back and
        pay serialization + flight latency in both directions.
        """
        self.devices[packet.src_device]._deliver_reply(packet, cycle)

    def _on_engine_reset(self) -> None:
        for device in self.devices:
            device._reset_observability()

    # ------------------------------------------------------------------ #
    # Public API (mirrors GpuDevice where it makes sense).
    # ------------------------------------------------------------------ #
    @property
    def cycle(self) -> int:
        return self.engine.cycle

    @property
    def all_idle(self) -> bool:
        """Every stream on every device has drained."""
        return all(device.all_idle for device in self.devices)

    def device(self, index: int) -> GpuDevice:
        return self.devices[index]

    def __len__(self) -> int:
        return len(self.devices)

    def run(self, max_cycles: int = 20_000_000, check_every: int = 32) -> int:
        """Step until every device's streams drain; returns final cycle."""
        return self.engine.run_until(
            lambda: self.all_idle,
            max_cycles=max_cycles,
            check_every=check_every,
        )

    def reset(self) -> None:
        """Restore the whole node to its post-construction state."""
        self.engine.reset()

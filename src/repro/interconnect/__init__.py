"""Multi-GPU interconnect: NVLink-class links between GpuDevices.

Public surface:

* :class:`~repro.config.LinkConfig` — fabric shape and link parameters
  (re-exported from :mod:`repro.config`).
* :func:`~repro.interconnect.topology.build_topology` — resolve a
  ``LinkConfig`` to nodes, directed links and next-hop routes.
* :class:`~repro.interconnect.system.MultiGpuSystem` — N devices on one
  engine joined by routers, serializing link pipes and ingress shims.
"""

from ..config import LINK_TOPOLOGIES, LinkConfig
from .link import FabricIngress, LinkPipe
from .system import MultiGpuSystem
from .topology import FabricTopology, build_topology

__all__ = [
    "LINK_TOPOLOGIES",
    "LinkConfig",
    "FabricIngress",
    "LinkPipe",
    "FabricTopology",
    "build_topology",
    "MultiGpuSystem",
]

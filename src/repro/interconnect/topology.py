"""Inter-GPU fabric topologies expressed as data.

A topology is a set of *nodes* (the GPU devices, plus one extra hub node
for the NVSwitch-style star), a list of directed point-to-point links,
and a precomputed next-hop table.  Everything downstream — the per-node
routers, the link pipes, the covert-channel placement — consumes this
record; adding a topology means adding a builder here, not new wiring
code.

Three shapes cover the systems the NVLink side-channel papers study:

* ``ring``   — each device links to its two neighbours (NVLink bridge
  boards, pre-NVSwitch DGX rings).  Shortest-direction routing, ties
  broken clockwise.
* ``full``   — a direct link per ordered device pair (the hybrid mesh of
  small DGX boxes).
* ``switch`` — every device hangs off one central crossbar node
  (NVSwitch); all traffic crosses exactly two links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..config import LinkConfig


@dataclass(frozen=True)
class FabricTopology:
    """A fabric shape resolved to nodes, links and routes.

    Attributes
    ----------
    num_devices:
        GPU device count; device ids double as node ids ``0..N-1``.
    num_nodes:
        Devices plus any switch hub nodes.
    links:
        Directed point-to-point links ``(src_node, dst_node)``; each
        becomes one serializing :class:`~repro.interconnect.link.LinkPipe`.
    next_hop:
        ``next_hop[node][target_device]`` is the neighbour node a packet
        bound for ``target_device`` leaves ``node`` toward, or ``-1``
        when ``node`` *is* the target.
    """

    num_devices: int
    num_nodes: int
    links: Tuple[Tuple[int, int], ...]
    next_hop: Tuple[Tuple[int, ...], ...]

    @property
    def switch_nodes(self) -> Tuple[int, ...]:
        """Hub nodes that are switches rather than devices."""
        return tuple(range(self.num_devices, self.num_nodes))


def _ring(n: int) -> FabricTopology:
    links: List[Tuple[int, int]] = []
    for d in range(n):
        fwd = (d + 1) % n
        back = (d - 1) % n
        links.append((d, fwd))
        if back != fwd:  # n == 2 collapses both directions onto one pair
            links.append((d, back))
    next_hop: List[Tuple[int, ...]] = []
    for node in range(n):
        row = []
        for target in range(n):
            if target == node:
                row.append(-1)
                continue
            fwd_dist = (target - node) % n
            back_dist = (node - target) % n
            # Shortest direction; clockwise on ties (deterministic).
            if fwd_dist <= back_dist:
                row.append((node + 1) % n)
            else:
                row.append((node - 1) % n)
        next_hop.append(tuple(row))
    return FabricTopology(n, n, tuple(links), tuple(next_hop))


def _full(n: int) -> FabricTopology:
    links = tuple(
        (a, b) for a in range(n) for b in range(n) if a != b
    )
    next_hop = tuple(
        tuple(-1 if t == node else t for t in range(n))
        for node in range(n)
    )
    return FabricTopology(n, n, links, next_hop)


def _switch(n: int) -> FabricTopology:
    hub = n
    links: List[Tuple[int, int]] = []
    for d in range(n):
        links.append((d, hub))
        links.append((hub, d))
    next_hop: List[Tuple[int, ...]] = [
        tuple(-1 if t == node else hub for t in range(n))
        for node in range(n)
    ]
    next_hop.append(tuple(range(n)))  # the hub reaches every device directly
    return FabricTopology(n, n + 1, tuple(links), tuple(next_hop))


_BUILDERS = {"ring": _ring, "full": _full, "switch": _switch}


def build_topology(link: LinkConfig) -> FabricTopology:
    """Resolve a :class:`~repro.config.LinkConfig` to its route data."""
    try:
        builder = _BUILDERS[link.topology]
    except KeyError:  # pragma: no cover - LinkConfig already validates
        raise ValueError(f"unknown link topology {link.topology!r}") from None
    if link.num_devices == 1:
        # A degenerate single-device "system": no links, no routes.
        return FabricTopology(1, 1, (), ((-1,),))
    return builder(link.num_devices)

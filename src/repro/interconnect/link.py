"""Inter-GPU link components: the serializing pipe and the ingress shim.

A directed link is modeled as a TX queue on the sending node, an RX
queue on the receiving node, and a :class:`LinkPipe` between them.  The
pipe is where NVLink's two physical costs live:

* **serialization** — a packet of ``F`` flits occupies the link for
  ``ceil(F / width)`` cycles before the next packet may start, so the
  link's flit rate is the shared resource two co-resident kernels
  contend for (the covert channel's medium);
* **latency** — a fixed one-way flight time added after serialization,
  covering the PHY, retimers and (for switch topologies) hub traversal.

Credit flow is end-to-end per hop: the pipe reserves space in the far
RX queue *before* starting serialization, so a congested receiver
back-pressures through TX into the sender's router and ultimately the
issuing SM — the same VCT discipline the on-chip NoC uses.

:class:`FabricIngress` is the landing shim on each device: it drains the
node router's local-delivery queue into the device proper — requests
into the addressed L2 slice's request queue, replies into the device's
reply delivery path.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..noc.buffer import PacketQueue
from ..noc.packet import Packet
from ..sim.engine import Component, FOREVER


class LinkPipe(Component):
    """One directed inter-GPU link: serializer plus fixed flight time.

    Parameters
    ----------
    name:
        Trace name, e.g. ``"link0-1"``.
    tx, rx:
        Boundary queues.  The pipe pops ``tx`` and commits into ``rx``;
        it is the sole caller of ``rx.reserve``/``rx.commit`` and claims
        ``rx.on_space`` to re-arm after a credit stall.
    width:
        Flits accepted per cycle (link bandwidth).
    latency:
        One-way flight cycles added after serialization completes.
    """

    def __init__(
        self,
        name: str,
        tx: PacketQueue,
        rx: PacketQueue,
        width: int,
        latency: int,
    ) -> None:
        self.name = name
        self.tx = tx
        self.rx = rx
        self.width = width
        self.latency = latency
        #: Cycle at which the serializer frees up for the next packet.
        self._busy_until = 0
        #: Packets in flight: ``(arrival_cycle, packet)`` in FIFO order.
        self._in_flight: Deque[Tuple[int, Packet]] = deque()
        #: Link-utilization series (set by :meth:`attach_telemetry`).
        self._tl_link = None
        # Credit stall release: when the far RX drains, try to start the
        # next packet.  The pipe is the RX queue's only on_space client
        # (the far router wakes via on_push).
        rx.on_space = self.wake

    def attach_telemetry(self, hub) -> None:
        """Opt this link into the hub's per-link utilization series.

        Mirrors :meth:`repro.noc.mux.Mux.attach_telemetry`: flits are
        recorded at serialization start, so the series measures offered
        wire occupancy against ``width`` flits/cycle capacity.  Purely
        observational — simulated behaviour is bit-identical either way.
        """
        self._tl_link = hub.timeline.register_link(self.name, self.width)

    def reserved_demand(self):
        """Yield ``(rx_queue, flits)`` for each in-flight packet.

        The pipe reserves RX space at serialization start and commits at
        arrival, so at every audit point the RX queue's reserved flits
        must be exactly the sum over :attr:`_in_flight` — the fabric-side
        counterpart of the switch conservation contract that
        :class:`repro.validate.invariants.InvariantChecker` audits.
        """
        for _, packet in self._in_flight:
            yield self.rx, packet.flits

    # ------------------------------------------------------------------ #
    def tick(self, cycle: int) -> None:
        # Deliver arrivals whose flight time has elapsed.  Space was
        # reserved at serialization start, so commit cannot fail.
        while self._in_flight and self._in_flight[0][0] <= cycle:
            _, packet = self._in_flight.popleft()
            self.rx.commit(packet)
        # Start serializing the next packet once the wire is free and
        # the far buffer has credits.
        if cycle < self._busy_until:
            return
        head = self.tx.head()
        if head is None:
            return
        if not self.rx.can_reserve(head.flits):
            return  # credit stall; rx.on_space re-arms us
        self.rx.reserve(head.flits)
        self.tx.pop()
        if self._tl_link is not None:
            self._tl_link.add(cycle, head.flits)
        serialize = -(-head.flits // self.width)  # ceil division
        self._busy_until = cycle + serialize
        self._in_flight.append((cycle + serialize + self.latency, head))

    def idle_until(self, cycle: int) -> Optional[int]:
        nxt = FOREVER
        if self._in_flight:
            nxt = self._in_flight[0][0]
        if self.tx:
            if cycle < self._busy_until:
                nxt = min(nxt, self._busy_until)
            elif self.rx.can_reserve(self.tx.head().flits):
                return None  # can start a packet right now
            # else: credit-stalled; woken by rx.on_space
        if nxt == FOREVER:
            return FOREVER
        return nxt if nxt > cycle else None

    def reset(self) -> None:
        self._busy_until = 0
        self._in_flight.clear()
        self.tx.clear()
        self.rx.clear()

    def state_digest(self):
        return (
            self._busy_until,
            tuple((arrive, packet.signature()) for arrive, packet in self._in_flight),
            self.tx.state_digest(),
            self.rx.state_digest(),
        )


class FabricIngress(Component):
    """Drains a node router's local-delivery queue into its device.

    Requests (remote reads/writes addressed to this device) are pushed
    into the addressed L2 slice's request queue, from which point they
    are indistinguishable from local traffic.  Replies (completions of
    this device's own remote accesses) go straight to the device's
    reply-delivery path.  On request-queue back-pressure the shim simply
    holds the head — the delivery queue then back-pressures the router.
    """

    def __init__(self, name: str, queue: PacketQueue, device) -> None:
        self.name = name
        self.queue = queue
        self.device = device

    def tick(self, cycle: int) -> None:
        queue = self.queue
        device = self.device
        while queue:
            head = queue.head()
            if head.is_reply:
                queue.pop()
                device._deliver_reply(head, cycle)
                continue
            if not device.l2_request_queues[head.slice_id].push(head):
                break  # L2 slice full; retry while our queue is nonempty
            queue.pop()

    def idle_until(self, cycle: int) -> Optional[int]:
        # Busy-retry while holding packets (covers L2 back-pressure
        # without claiming the request queue's single on_space slot).
        return None if self.queue else FOREVER

    def reset(self) -> None:
        self.queue.clear()

    def state_digest(self):
        return (self.queue.state_digest(),)

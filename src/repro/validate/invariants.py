"""Conservation invariants for the cycle-level model.

Every number the repo reports rests on flit-level accounting spread over
dozens of components, and the covert channel lives in timing deltas small
enough that a silent bug — a lost flit, a double-committed packet, a
reservation that never drains — would corrupt results without failing the
end-to-end tests.  The :class:`InvariantChecker` is a regular engine
:class:`~repro.sim.engine.Component`, registered last so it observes
settled end-of-cycle state, that audits:

* **packet conservation** — every packet injected by an SM is delivered
  back exactly once (read replies and write acknowledgements through
  ``GpuDevice._deliver_reply``; posted writes at L2 acceptance), never
  zero times and never twice;
* **queue accounting** — every :class:`~repro.noc.buffer.PacketQueue`
  keeps ``0 <= used + reserved <= capacity`` with ``used`` equal to the
  flits actually queued;
* **reserve/commit matching** — each switch's per-port ``_progress`` /
  ``_reserved`` state is self-consistent, and every queue's reserved
  flits are exactly the sum of its upstream switches' in-flight packets,
  so a ``reserve`` that is never matched by a ``commit`` (or matched
  twice) is caught at the first audit after it happens.

Violations raise a structured :class:`InvariantViolation` naming the
cycle, the component, and the failed invariant.  The checker never
mutates model state, so validated runs are bit-identical to unvalidated
ones; when ``GpuConfig.validate_enabled`` is off no checker exists and
the hook sites cost one ``is not None`` branch (the telemetry pattern).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..noc.buffer import PacketQueue
from ..noc.crossbar import Crossbar
from ..noc.mux import Mux
from ..noc.packet import Packet
from ..sim.engine import Component


class InvariantViolation(Exception):
    """A conservation invariant failed.

    Attributes
    ----------
    cycle:
        Engine cycle at which the inconsistency was observed.
    component:
        Name of the queue/switch/checker stage that failed.
    kind:
        Machine-readable invariant tag (``"capacity"``,
        ``"used-accounting"``, ``"reservation-leak"``,
        ``"progress-consistency"``, ``"link-credit"``,
        ``"double-delivery"``, ``"unknown-delivery"``,
        ``"duplicate-injection"``, ``"undelivered"``).
    detail:
        Human-readable description of the observed state.
    """

    def __init__(self, cycle: int, component: str, kind: str, detail: str):
        self.cycle = cycle
        self.component = component
        self.kind = kind
        self.detail = detail
        super().__init__(
            f"[cycle {cycle}] {component}: {kind}: {detail}"
        )


class InvariantChecker(Component):
    """Audits queue/switch/packet conservation every ``check_every`` cycles.

    Build one with :meth:`attach`, which wires it into a
    :class:`~repro.gpu.device.GpuDevice`; with :meth:`attach_system`,
    which wires a fabric-boundary checker into a
    :class:`~repro.interconnect.MultiGpuSystem`; or construct directly
    and call :meth:`watch_queue` / :meth:`watch_switch` /
    :meth:`watch_link` for bare-component tests.
    """

    name = "validate.checker"

    def __init__(self, check_every: int = 1) -> None:
        if check_every <= 0:
            raise ValueError("check_every must be positive")
        self.check_every = check_every
        self.queues: List[PacketQueue] = []
        self.switches: List = []  # Mux and Crossbar instances
        self.links: List = []  # LinkPipe-shaped credit holders
        #: request uid -> (inject cycle, kind, flits) for in-flight packets.
        self._in_flight: Dict[int, Tuple[int, str, int]] = {}
        self.injected = 0
        self.delivered = 0
        self.checks_run = 0
        self.violations = 0
        self._next_check = 0

    # ------------------------------------------------------------------ #
    # Wiring.
    # ------------------------------------------------------------------ #
    @classmethod
    def attach(cls, device) -> "InvariantChecker":
        """Wire a checker into every queue, switch, and SM of ``device``.

        Registered on the engine *after* every model component (and after
        the telemetry probe, if any), so each audit sees the settled
        state of the cycle it runs in.
        """
        checker = cls(check_every=device.config.validate_interval)
        for queue in device.inject_queues:
            checker.watch_queue(queue)
        for queue in device.tpc_queues:
            checker.watch_queue(queue)
        for queue in device.gpc_queues:
            checker.watch_queue(queue)
        for queue in device.l2_request_queues:
            checker.watch_queue(queue)
        for voqs in device.l2_reply_voqs:
            for queue in voqs:
                checker.watch_queue(queue)
        for queue in device.gpc_reply_queues:
            checker.watch_queue(queue)
        for mux in device.tpc_muxes:
            checker.watch_switch(mux)
        for mux in device.gpc_muxes:
            checker.watch_switch(mux)
        checker.watch_switch(device.request_xbar)
        for switch in device.reply_muxes:
            checker.watch_switch(switch)
        for sm in device.sms:
            sm._validator = checker
        device._validator = checker
        device.engine.register(checker)
        return checker

    @classmethod
    def attach_system(cls, system) -> "InvariantChecker":
        """Wire a *fabric* checker into a multi-GPU system.

        Each member device already carries its own checker (wired by
        :meth:`attach` at device construction when
        ``GpuConfig.validate_enabled``); this one covers everything past
        the device edge, where conservation previously went unaudited:

        * the per-node fabric routers (plain :class:`Crossbar`\\ s, so
          the switch audit applies unchanged),
        * every link's TX/RX queue and the serializing
          :class:`~repro.interconnect.link.LinkPipe` between them — the
          pipe's reserve-at-serialization-start / commit-at-arrival
          credit flow is audited exactly like a switch's in-flight
          reservations via :meth:`watch_link`,
        * the local-delivery queues feeding each ingress shim, and
        * each device's fabric egress queues (``fabric_inject`` is
          push-only, ``fabric_reply`` is reserved into by the device's
          ``remote_reply_mux``, which therefore joins the watch set so
          its demand is accounted).

        Registered on the shared engine after every fabric component, so
        audits see settled end-of-cycle state.
        """
        checker = cls(check_every=system.config.validate_interval)
        for device in system.devices:
            if device.fabric_inject is not None:
                checker.watch_queue(device.fabric_inject)
            if device.fabric_reply is not None:
                checker.watch_queue(device.fabric_reply)
            if device.remote_reply_mux is not None:
                checker.watch_switch(device.remote_reply_mux)
        for queue in system._tx.values():
            checker.watch_queue(queue)
        for queue in system._rx.values():
            checker.watch_queue(queue)
        for queue in system.delivery_queues:
            checker.watch_queue(queue)
        for router in system.routers:
            checker.watch_switch(router)
        for pipe in system.link_pipes:
            checker.watch_link(pipe)
        system._validator = checker
        system.engine.register(checker)
        return checker

    def watch_queue(self, queue: PacketQueue) -> None:
        self.queues.append(queue)

    def watch_switch(self, switch) -> None:
        if not isinstance(switch, (Mux, Crossbar)):
            raise TypeError(f"cannot audit {type(switch).__name__}")
        self.switches.append(switch)

    def watch_link(self, pipe) -> None:
        """Audit a link pipe's credit flow (reserve/commit over RX).

        Accepts any component exposing the ``reserved_demand()`` /
        ``_in_flight`` contract of
        :class:`~repro.interconnect.link.LinkPipe`.
        """
        if not hasattr(pipe, "reserved_demand") or not hasattr(
            pipe, "_in_flight"
        ):
            raise TypeError(f"cannot audit {type(pipe).__name__} as a link")
        self.links.append(pipe)

    # ------------------------------------------------------------------ #
    # Conservation hooks (called from SM inject / device deliver).
    # ------------------------------------------------------------------ #
    def note_inject(self, packet: Packet, cycle: int) -> None:
        """An SM pushed ``packet`` into its injection queue."""
        uid = packet.uid
        if uid in self._in_flight:
            self._raise(
                cycle, f"sm{packet.src_sm}", "duplicate-injection",
                f"packet uid={uid} addr={packet.address:#x} injected twice"
            )
        self._in_flight[uid] = (cycle, packet.kind, packet.flits)
        self.injected += 1

    def note_deliver(self, packet: Packet, cycle: int) -> None:
        """A request completed back at its SM (reply or posted-write ack).

        ``packet`` is either the reply (carrying ``req_uid``) or, for
        posted writes acknowledged at L2 acceptance, the request itself.
        """
        uid = packet.req_uid if packet.is_reply else packet.uid
        entry = self._in_flight.pop(uid, None)
        if entry is None:
            kind = (
                "double-delivery" if uid >= 0 else "unknown-delivery"
            )
            self._raise(
                cycle, f"sm{packet.src_sm}", kind,
                f"delivery for request uid={uid} "
                f"addr={packet.address:#x} that is not in flight "
                f"(never injected, or already delivered once)"
            )
        self.delivered += 1

    @property
    def in_flight_count(self) -> int:
        """Packets injected but not yet delivered."""
        return len(self._in_flight)

    def in_flight_report(self) -> List[Tuple[int, int, str, int]]:
        """``(uid, inject_cycle, kind, flits)`` rows, oldest first."""
        return sorted(
            (uid, cycle, kind, flits)
            for uid, (cycle, kind, flits) in self._in_flight.items()
        )

    def check_drained(self, cycle: int) -> None:
        """Raise unless every injected packet has been delivered."""
        if not self._in_flight:
            return
        oldest = self.in_flight_report()[:4]
        self._raise(
            cycle, self.name, "undelivered",
            f"{len(self._in_flight)} packet(s) injected but never "
            f"delivered; oldest: {oldest}"
        )

    # ------------------------------------------------------------------ #
    # Per-cycle audit.
    # ------------------------------------------------------------------ #
    def tick(self, cycle: int) -> None:
        if cycle < self._next_check:
            return
        self._next_check = cycle + self.check_every
        self.checks_run += 1
        self.audit(cycle)

    def audit(self, cycle: int) -> None:
        """Audit every watched switch, link, and queue, raising on failure."""
        expected_reserved: Dict[int, int] = {}
        for switch in self.switches:
            self._audit_switch(cycle, switch)
            for queue, flits in switch.reserved_demand():
                key = id(queue)
                expected_reserved[key] = expected_reserved.get(key, 0) + flits
        for pipe in self.links:
            self._audit_link(cycle, pipe)
            for queue, flits in pipe.reserved_demand():
                key = id(queue)
                expected_reserved[key] = expected_reserved.get(key, 0) + flits
        for queue in self.queues:
            self._audit_queue(cycle, queue, expected_reserved.get(id(queue), 0))

    def _audit_switch(self, cycle: int, switch) -> None:
        progress = switch._progress
        reserved = switch._reserved
        inputs = switch.inputs
        for port in range(len(inputs)):
            if reserved[port] != (progress[port] > 0):
                self._raise(
                    cycle, switch.name, "progress-consistency",
                    f"port {port}: reserved={reserved[port]} but "
                    f"progress={progress[port]} (a reservation must be "
                    f"held exactly while a packet is mid-transmission)"
                )
            if progress[port] > 0:
                head = inputs[port].head()
                if head is None:
                    self._raise(
                        cycle, switch.name, "progress-consistency",
                        f"port {port}: {progress[port]} flit(s) of "
                        f"progress but the input queue is empty (head "
                        f"popped without commit?)"
                    )
                elif progress[port] >= head.flits:
                    self._raise(
                        cycle, switch.name, "progress-consistency",
                        f"port {port}: progress {progress[port]} >= "
                        f"packet length {head.flits} (missed completion)"
                    )

    def _audit_link(self, cycle: int, pipe) -> None:
        """Sanity of a link pipe's in-flight window.

        The RX-side credit match itself (reserved flits == in-flight
        demand) is enforced by :meth:`_audit_queue` through the pooled
        ``expected_reserved`` map, exactly as for switches; here we check
        the window's own shape: positive packet lengths and FIFO arrival
        order (the serializer admits one packet at a time, so arrival
        cycles must be non-decreasing).
        """
        last_arrival = None
        for arrival, packet in pipe._in_flight:
            if packet.flits <= 0:
                self._raise(
                    cycle, pipe.name, "link-credit",
                    f"in-flight packet uid={packet.uid} has "
                    f"{packet.flits} flits"
                )
            if last_arrival is not None and arrival < last_arrival:
                self._raise(
                    cycle, pipe.name, "progress-consistency",
                    f"in-flight arrivals out of order: {arrival} after "
                    f"{last_arrival} (serializer admitted out of turn)"
                )
            last_arrival = arrival

    def _audit_queue(
        self, cycle: int, queue: PacketQueue, expected_reserved: int
    ) -> None:
        used = queue._used_flits
        reserved = queue._reserved_flits
        if used < 0 or reserved < 0:
            self._raise(
                cycle, queue.name, "capacity",
                f"negative accounting: used={used} reserved={reserved}"
            )
        if used + reserved > queue.capacity_flits:
            self._raise(
                cycle, queue.name, "capacity",
                f"used({used}) + reserved({reserved}) exceeds "
                f"capacity({queue.capacity_flits})"
            )
        actual = sum(packet.flits for packet in queue._queue)
        if used != actual:
            self._raise(
                cycle, queue.name, "used-accounting",
                f"used_flits={used} but queued packets hold {actual} "
                f"flits"
            )
        if reserved != expected_reserved:
            self._raise(
                cycle, queue.name, "reservation-leak",
                f"reserved_flits={reserved} but upstream switches hold "
                f"in-flight packets for {expected_reserved} flits (every "
                f"reserve must be matched by exactly one commit)"
            )

    def _raise(
        self, cycle: int, component: str, kind: str, detail: str
    ) -> None:
        self.violations += 1
        raise InvariantViolation(cycle, component, kind, detail)

    # ------------------------------------------------------------------ #
    # Engine contract.
    # ------------------------------------------------------------------ #
    def idle_until(self, cycle: int) -> Optional[int]:
        """Park until the next audit cycle (``check_every`` hops).

        With ``check_every == 1`` the checker stays in the active set —
        validated runs trade quiescence fast-forward for per-cycle
        coverage; larger intervals let idle stretches fast-forward in
        audit-sized hops, exactly like the telemetry probe.
        """
        return None if self._next_check <= cycle + 1 else self._next_check

    def reset(self) -> None:
        self._in_flight.clear()
        self.injected = 0
        self.delivered = 0
        self.checks_run = 0
        self.violations = 0
        self._next_check = 0

"""Simulation-integrity layer: invariants, lockstep oracle, fuzzing.

Three lines of defence against silent model corruption, switchable for
any run via ``GpuConfig.validate_enabled`` (invariants) or used directly
(oracle, fuzzer):

* :class:`InvariantChecker` / :class:`InvariantViolation` — per-cycle
  conservation audits (packet delivered exactly once, queue flit
  accounting, switch reserve/commit matching);
* :class:`LockstepOracle` / :func:`verify_equivalence` — the naive
  engine as ground truth for the active-set engine, with bisection to
  the first divergent (cycle, component);
* :func:`fuzz` / :func:`run_case` — randomized configs and workloads
  driven through both of the above (``python -m repro fuzz``).
"""

from .invariants import InvariantChecker, InvariantViolation
from .oracle import Divergence, LockstepOracle, verify_equivalence
from .fuzz import FuzzCase, FuzzReport, fuzz, run_case

__all__ = [
    "InvariantChecker",
    "InvariantViolation",
    "Divergence",
    "LockstepOracle",
    "verify_equivalence",
    "FuzzCase",
    "FuzzReport",
    "fuzz",
    "run_case",
]

"""Lockstep oracle: the naive engine as ground truth for the active one.

PR 2 replaced tick-everything scheduling with an active-set engine whose
park/wake bookkeeping is the single most bug-prone piece of the simulator:
a component that parks one cycle too long produces timing that is subtly —
not obviously — wrong, and the covert channel *is* timing.  The oracle
makes the equivalence claim checkable for any config and workload: it
builds the same device twice, once per engine strategy, steps both in
lockstep, and compares per-component :meth:`state_digest` snapshots every
``compare_every`` cycles.

On a mismatch it does not just say "diverged somewhere before cycle N": it
rebuilds a fresh device pair (seeded runs are deterministic, so a rebuild
replays identically), fast-forwards to the last matching checkpoint, and
re-steps one cycle at a time to pin the **first** divergent cycle and the
first divergent component in registration (pipeline) order.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..config import GpuConfig
from ..gpu.device import GpuDevice

#: A stimulus launches work on a freshly built device (kernels, preloads).
#: It must be deterministic: called once per device, both calls must
#: produce the same launches for the lockstep comparison to be meaningful.
Stimulus = Callable[[GpuDevice], None]


@dataclass
class Divergence:
    """First point where the two engine strategies disagree."""

    cycle: int
    component: str
    naive_digest: object
    active_digest: object

    def __str__(self) -> str:
        return (
            f"engines diverged at cycle {self.cycle} in "
            f"{self.component}: naive={self.naive_digest!r} "
            f"active={self.active_digest!r}"
        )


class LockstepOracle:
    """Runs one config under both engine strategies and compares state.

    Parameters
    ----------
    config:
        Base config; ``engine_strategy`` is overridden per device.
    stimulus:
        Deterministic workload installer (may be None for an idle device).
    compare_every:
        Coarse checkpoint interval.  Larger values are cheaper (digests
        are the expensive part) without losing precision — the bisection
        pass recovers the exact cycle.
    """

    def __init__(
        self,
        config: GpuConfig,
        stimulus: Optional[Stimulus] = None,
        compare_every: int = 64,
        l1_enabled: bool = False,
    ) -> None:
        if compare_every <= 0:
            raise ValueError("compare_every must be positive")
        self.config = config
        self.stimulus = stimulus
        self.compare_every = compare_every
        self.l1_enabled = l1_enabled

    # ------------------------------------------------------------------ #
    def _build(self, strategy: str) -> GpuDevice:
        config = dataclasses.replace(self.config, engine_strategy=strategy)
        device = GpuDevice(config, l1_enabled=self.l1_enabled)
        if self.stimulus is not None:
            self.stimulus(device)
        return device

    @staticmethod
    def _compare(
        naive: GpuDevice, active: GpuDevice
    ) -> Optional[Tuple[str, object, object]]:
        """First (name, naive_digest, active_digest) mismatch, or None."""
        for a, b in zip(naive.engine.components, active.engine.components):
            da = a.state_digest()
            db = b.state_digest()
            if da != db:
                return (a.name, da, db)
        return None

    # ------------------------------------------------------------------ #
    def run(self, max_cycles: int = 200_000) -> Optional[Divergence]:
        """Compare the strategies for up to ``max_cycles`` cycles.

        Returns None when every checkpoint (and the final state) matched,
        or a :class:`Divergence` pinpointing the first bad cycle.  Stops
        early once both devices report all streams drained — after one
        final checkpoint on the drained state.
        """
        naive = self._build("naive")
        active = self._build("active")
        cycle = 0
        last_good = 0
        while cycle < max_cycles:
            step = min(self.compare_every, max_cycles - cycle)
            naive.engine.step(step)
            active.engine.step(step)
            cycle += step
            mismatch = self._compare(naive, active)
            if mismatch is not None:
                return self._bisect(last_good, cycle)
            last_good = cycle
            if naive.scheduler.all_idle and active.scheduler.all_idle:
                break
        return None

    def _bisect(self, good_cycle: int, bad_cycle: int) -> Divergence:
        """Replay a fresh pair and pin the first divergent cycle.

        Valid because every source of randomness is seeded from the
        config: the rebuilt devices retrace the original run exactly.
        """
        naive = self._build("naive")
        active = self._build("active")
        if good_cycle:
            naive.engine.step(good_cycle)
            active.engine.step(good_cycle)
        cycle = good_cycle
        while cycle < bad_cycle:
            naive.engine.step(1)
            active.engine.step(1)
            cycle += 1
            mismatch = self._compare(naive, active)
            if mismatch is not None:
                name, da, db = mismatch
                return Divergence(cycle, name, da, db)
        # The coarse pass diverged but the replay did not: the model has
        # hidden nondeterminism, which is itself a bug worth naming.
        return Divergence(
            bad_cycle, "<nondeterministic>",
            "replay matched", "original run diverged",
        )


def verify_equivalence(
    config: GpuConfig,
    stimulus: Optional[Stimulus] = None,
    max_cycles: int = 200_000,
    compare_every: int = 64,
) -> Optional[Divergence]:
    """One-shot helper: run the oracle, return its verdict."""
    oracle = LockstepOracle(config, stimulus, compare_every=compare_every)
    return oracle.run(max_cycles=max_cycles)

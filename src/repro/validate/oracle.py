"""Lockstep oracle: the naive engine as ground truth for the others.

PR 2 replaced tick-everything scheduling with an active-set engine whose
park/wake bookkeeping is the single most bug-prone piece of the simulator:
a component that parks one cycle too long produces timing that is subtly —
not obviously — wrong, and the covert channel *is* timing.  The vector
engine raises the stakes again (batched mux transfers, SoA write-through,
reactive SM parking).  The oracle makes the equivalence claim checkable
for any config and workload: it builds the same device once per engine
strategy, steps them all in lockstep, and compares per-component
:meth:`state_digest` snapshots every ``compare_every`` cycles, each
strategy against the first (the baseline).

On a mismatch it does not just say "diverged somewhere before cycle N": it
rebuilds a fresh device set (seeded runs are deterministic, so a rebuild
replays identically), fast-forwards to the last matching checkpoint, and
re-steps one cycle at a time to pin the **first** divergent cycle and the
first divergent component in registration (pipeline) order.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..config import ENGINE_STRATEGIES, GpuConfig
from ..gpu.device import GpuDevice

#: A stimulus launches work on a freshly built device (kernels, preloads).
#: It must be deterministic: called once per device, both calls must
#: produce the same launches for the lockstep comparison to be meaningful.
Stimulus = Callable[[GpuDevice], None]

#: Default strategy set: baseline first, then the strategies under test.
DEFAULT_STRATEGIES: Tuple[str, ...] = ("naive", "active")


@dataclass
class Divergence:
    """First point where two engine strategies disagree.

    ``naive_digest``/``active_digest`` keep their PR-2 names for
    back-compat; they hold the baseline strategy's digest and the
    divergent strategy's digest respectively (see ``baseline`` /
    ``strategy`` for which strategies those actually were).
    """

    cycle: int
    component: str
    naive_digest: object
    active_digest: object
    baseline: str = "naive"
    strategy: str = "active"

    def __str__(self) -> str:
        return (
            f"engines diverged at cycle {self.cycle} in "
            f"{self.component}: {self.baseline}={self.naive_digest!r} "
            f"{self.strategy}={self.active_digest!r}"
        )


class LockstepOracle:
    """Runs one config under several engine strategies and compares state.

    Parameters
    ----------
    config:
        Base config; ``engine_strategy`` is overridden per device.
    stimulus:
        Deterministic workload installer (may be None for an idle device).
    compare_every:
        Coarse checkpoint interval.  Larger values are cheaper (digests
        are the expensive part) without losing precision — the bisection
        pass recovers the exact cycle.
    strategies:
        Engine strategies to run in lockstep; the first is the baseline
        every other strategy is compared against.  Defaults to the PR-2
        pair ``("naive", "active")``; pass all of
        :data:`~repro.config.ENGINE_STRATEGIES` for a three-way check.
    builder:
        Optional factory called with the strategy-patched config; must
        return a built target exposing ``.engine`` and ``.all_idle`` (a
        :class:`GpuDevice` by default).  This is how multi-device
        systems join the oracle::

            LockstepOracle(
                cfg, stimulus,
                builder=lambda c: MultiGpuSystem(c, LinkConfig(2)),
                strategies=ENGINE_STRATEGIES,
            )

        Because a :class:`~repro.interconnect.MultiGpuSystem` registers
        every device and fabric component on one shared engine in a
        deterministic order, the positional digest comparison works on
        it unchanged.
    """

    def __init__(
        self,
        config: GpuConfig,
        stimulus: Optional[Stimulus] = None,
        compare_every: int = 64,
        l1_enabled: bool = False,
        strategies: Sequence[str] = DEFAULT_STRATEGIES,
        builder: Optional[Callable[[GpuConfig], object]] = None,
    ) -> None:
        if compare_every <= 0:
            raise ValueError("compare_every must be positive")
        if len(strategies) < 2:
            raise ValueError("lockstep needs at least two strategies")
        for strategy in strategies:
            if strategy not in ENGINE_STRATEGIES:
                raise ValueError(f"unknown engine strategy {strategy!r}")
        self.config = config
        self.stimulus = stimulus
        self.compare_every = compare_every
        self.l1_enabled = l1_enabled
        self.strategies = tuple(strategies)
        self.builder = builder

    # ------------------------------------------------------------------ #
    def _build(self, strategy: str):
        config = dataclasses.replace(self.config, engine_strategy=strategy)
        if self.builder is not None:
            target = self.builder(config)
        else:
            target = GpuDevice(config, l1_enabled=self.l1_enabled)
        if self.stimulus is not None:
            self.stimulus(target)
        return target

    def _build_all(self) -> List:
        return [self._build(strategy) for strategy in self.strategies]

    def _compare(
        self, devices: List[GpuDevice]
    ) -> Optional[Tuple[str, object, object, str]]:
        """First mismatch against the baseline device, or None.

        Returns ``(component_name, baseline_digest, other_digest,
        other_strategy)``.  Components are compared positionally — every
        strategy builds the identical pipeline in the identical
        registration order.
        """
        baseline = devices[0]
        base_digests: List[object] = []
        for component in baseline.engine.components:
            base_digests.append(component.state_digest())
        for device, strategy in zip(devices[1:], self.strategies[1:]):
            for da, b in zip(base_digests, device.engine.components):
                db = b.state_digest()
                if da != db:
                    return (b.name, da, db, strategy)
        return None

    # ------------------------------------------------------------------ #
    def run(self, max_cycles: int = 200_000) -> Optional[Divergence]:
        """Compare the strategies for up to ``max_cycles`` cycles.

        Returns None when every checkpoint (and the final state) matched,
        or a :class:`Divergence` pinpointing the first bad cycle.  Stops
        early once all devices report all streams drained — after one
        final checkpoint on the drained state.
        """
        devices = self._build_all()
        cycle = 0
        last_good = 0
        while cycle < max_cycles:
            step = min(self.compare_every, max_cycles - cycle)
            for device in devices:
                device.engine.step(step)
            cycle += step
            mismatch = self._compare(devices)
            if mismatch is not None:
                return self._bisect(last_good, cycle)
            last_good = cycle
            if all(device.all_idle for device in devices):
                break
        return None

    def _bisect(self, good_cycle: int, bad_cycle: int) -> Divergence:
        """Replay a fresh device set and pin the first divergent cycle.

        Valid because every source of randomness is seeded from the
        config: the rebuilt devices retrace the original run exactly.
        """
        devices = self._build_all()
        if good_cycle:
            for device in devices:
                device.engine.step(good_cycle)
        cycle = good_cycle
        while cycle < bad_cycle:
            for device in devices:
                device.engine.step(1)
            cycle += 1
            mismatch = self._compare(devices)
            if mismatch is not None:
                name, da, db, strategy = mismatch
                return Divergence(
                    cycle, name, da, db,
                    baseline=self.strategies[0], strategy=strategy,
                )
        # The coarse pass diverged but the replay did not: the model has
        # hidden nondeterminism, which is itself a bug worth naming.
        return Divergence(
            bad_cycle, "<nondeterministic>",
            "replay matched", "original run diverged",
            baseline=self.strategies[0], strategy="<any>",
        )


def verify_equivalence(
    config: GpuConfig,
    stimulus: Optional[Stimulus] = None,
    max_cycles: int = 200_000,
    compare_every: int = 64,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    builder: Optional[Callable[[GpuConfig], object]] = None,
) -> Optional[Divergence]:
    """One-shot helper: run the oracle, return its verdict."""
    oracle = LockstepOracle(
        config, stimulus, compare_every=compare_every, strategies=strategies,
        builder=builder,
    )
    return oracle.run(max_cycles=max_cycles)

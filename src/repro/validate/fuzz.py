"""Randomized integrity fuzzing of the full simulator.

The unit suite exercises the configurations the paper's experiments use;
the fuzzer exercises the configurations nobody thought to write a test
for.  Each case draws a small random GPU (topology, channel widths,
arbitration policy, buffering mode, packet geometry, telemetry on/off)
and a random streaming workload from a seeded RNG, then subjects it to
both halves of the integrity layer:

1. a validated run — the :class:`~repro.validate.invariants
   .InvariantChecker` audits flit conservation every cycle and the run
   must drain (every injected packet delivered exactly once);
2. the lockstep oracle — the same config and workload under the naive
   and active engine strategies must stay digest-identical.

Cases are fully reproducible: ``run_case(seed)`` rebuilds everything from
the case seed, so a CI failure line like ``case seed=17 ...`` replays
locally with ``python -m repro fuzz --seed 17 --runs 1``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..config import ARBITRATION_POLICIES, GpuConfig
from ..gpu.device import GpuDevice
from ..gpu.workloads import make_streaming_kernel
from .invariants import InvariantViolation
from .oracle import DEFAULT_STRATEGIES, verify_equivalence


def random_config(rng: random.Random) -> GpuConfig:
    """A small random GPU with validation always on.

    Kept deliberately tiny (2–12 SMs, 2–8 L2 slices) so a per-cycle audit
    plus a double-engine oracle run stays in the tens of milliseconds and
    the fuzz budget buys many topologies instead of a few big ones.
    """
    num_gpcs = rng.randint(1, 2)
    tpcs_per_gpc = tuple(rng.randint(1, 3) for _ in range(num_gpcs))
    num_l2_slices = rng.choice([2, 4, 8])
    return GpuConfig(
        num_gpcs=num_gpcs,
        tpcs_per_gpc=tpcs_per_gpc,
        num_l2_slices=num_l2_slices,
        num_memory_controllers=max(1, num_l2_slices // rng.choice([1, 2, 4])),
        arbitration=rng.choice(ARBITRATION_POLICIES),
        tpc_channel_width=rng.choice([1, 1, 2]),
        gpc_channel_width=rng.choice([2, 4, 6]),
        gpc_reply_width=rng.choice([2, 3, 4]),
        tpc_reply_width=rng.choice([2, 4]),
        xbar_width=rng.choice([4, 8]),
        buffer_depth=rng.choice([4, 8]),
        reply_voq=rng.random() < 0.5,
        write_reply_flits=rng.choice([0, 0, 1]),
        timing_noise=rng.choice([0, 16]),
        l2_latency=rng.randrange(20, 81),
        telemetry_enabled=rng.random() < 0.5,
        validate_enabled=True,
        validate_interval=rng.choice([1, 1, 4]),
        seed=rng.randrange(1, 100_000),
    )


def random_stimulus(
    rng: random.Random, config: GpuConfig
) -> Callable[[GpuDevice], None]:
    """A deterministic workload installer drawn from ``rng``.

    The kernel specs are drawn *once*; the returned closure replays them
    identically on every device it is applied to, which is what the
    lockstep oracle requires.
    """
    specs = []
    for index in range(rng.randint(1, 3)):
        footprint_lines = config.num_l2_slices * rng.choice([4, 8, 16])
        specs.append(
            dict(
                kind=rng.choice(["read", "write"]),
                ops=rng.randint(4, 24),
                base=index << 22,
                num_blocks=rng.randint(1, config.num_sms),
                warps_per_block=rng.randint(1, 2),
                uncoalesced=rng.random() < 0.7,
                footprint_lines=footprint_lines,
            )
        )
    preload = rng.random() < 0.8

    def stimulus(device: GpuDevice) -> None:
        for spec in specs:
            if preload:
                device.preload_region(
                    spec["base"],
                    spec["footprint_lines"] * device.config.l2_line_bytes,
                )
            device.launch(make_streaming_kernel(device.config, **spec))

    return stimulus


@dataclass
class FuzzCase:
    """Outcome of one fuzz case (``failure`` is None on success)."""

    seed: int
    summary: str
    cycles: int = 0
    injected: int = 0
    delivered: int = 0
    failure: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class FuzzReport:
    """Aggregate over a fuzz session."""

    cases: List[FuzzCase] = field(default_factory=list)

    @property
    def failures(self) -> List[FuzzCase]:
        return [case for case in self.cases if not case.ok]

    @property
    def ok(self) -> bool:
        return not self.failures


def _describe(config: GpuConfig) -> str:
    return (
        f"gpcs={config.num_gpcs} tpcs={config.tpcs_per_gpc} "
        f"l2={config.num_l2_slices} arb={config.arbitration} "
        f"voq={config.reply_voq} wack={config.write_reply_flits} "
        f"noise={config.timing_noise} tel={config.telemetry_enabled} "
        f"ival={config.validate_interval} seed={config.seed}"
    )


def run_case(
    seed: int,
    max_cycles: int = 200_000,
    oracle_cycles: int = 6_000,
    oracle: bool = True,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
) -> FuzzCase:
    """Run one fuzz case end to end; never raises, records failures."""
    rng = random.Random(seed)
    config = random_config(rng)
    stimulus = random_stimulus(rng, config)
    case = FuzzCase(seed=seed, summary=_describe(config))
    device = GpuDevice(config)
    stimulus(device)
    try:
        device.run(max_cycles=max_cycles)
        device.assert_drained()
    except InvariantViolation as violation:
        case.failure = f"invariant: {violation}"
    except TimeoutError as timeout:
        case.failure = f"no-drain: {timeout}"
    finally:
        case.cycles = device.cycle
        checker = device.validator
        if checker is not None:
            case.injected = checker.injected
            case.delivered = checker.delivered
    if case.ok and oracle:
        divergence = verify_equivalence(
            config, stimulus, max_cycles=oracle_cycles,
            strategies=strategies,
        )
        if divergence is not None:
            case.failure = f"oracle: {divergence}"
    return case


def fuzz(
    runs: int = 25,
    seed: int = 0,
    max_cycles: int = 200_000,
    oracle_cycles: int = 6_000,
    oracle: bool = True,
    on_case: Optional[Callable[[FuzzCase], None]] = None,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
) -> FuzzReport:
    """Run ``runs`` cases with case seeds ``seed .. seed+runs-1``.

    ``strategies`` is forwarded to the lockstep oracle; pass all of
    :data:`~repro.config.ENGINE_STRATEGIES` for a three-way sweep that
    includes the vector engine.
    """
    report = FuzzReport()
    for case_seed in range(seed, seed + runs):
        case = run_case(
            case_seed,
            max_cycles=max_cycles,
            oracle_cycles=oracle_cycles,
            oracle=oracle,
            strategies=strategies,
        )
        report.cases.append(case)
        if on_case is not None:
            on_case(case)
    return report

"""Contention-anomaly detection (the GPUGuard-style defense).

The paper cites GPUGuard, which "detects malicious behavior based on
shared resource contention using a decision tree classifier".  This
module implements that idea against our simulator: a monitor samples
per-TPC interconnect telemetry in fixed windows, summarizes each window
into features, and a small decision-stump classifier (trained on labelled
traces, exactly like GPUGuard's tree) flags covert-channel-like behaviour.

What makes the covert channel detectable is its *shape*, not its volume:
slot-synchronized on/off bursts on one TPC channel produce a bimodal
utilization with high switching regularity, while benign kernels are
either steadily dense (streaming), steadily sparse (compute), or
irregular (pointer chase).  The features below capture exactly that:

* duty cycle (busy fraction of the window),
* burstiness (variance-to-mean ratio of per-window flit counts),
* on/off transition rate,
* bimodality of per-subwindow utilization.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import GpuConfig
from ..gpu.benign import (
    BENIGN_WORKLOADS,
    benign_footprint,
    make_benign_kernel,
)
from ..gpu.device import GpuDevice
from ..channel.protocol import ChannelParams
from ..channel.tpc_channel import TpcCovertChannel


# --------------------------------------------------------------------- #
# Telemetry collection.
# --------------------------------------------------------------------- #
@dataclass
class TpcTelemetry:
    """Per-subwindow flit counts for one TPC channel."""

    tpc: int
    subwindow_cycles: int
    flits: List[int] = field(default_factory=list)

    def features(self) -> Dict[str, float]:
        """Summarize the trace into classifier features."""
        counts = self.flits
        if not counts:
            return {
                "duty": 0.0, "burstiness": 0.0,
                "transitions": 0.0, "bimodality": 0.0,
            }
        n = len(counts)
        mean = sum(counts) / n
        busy = [1 if c > 0 else 0 for c in counts]
        duty = sum(busy) / n
        variance = sum((c - mean) ** 2 for c in counts) / n
        burstiness = variance / mean if mean > 0 else 0.0
        transitions = sum(
            1 for a, b in zip(busy, busy[1:]) if a != b
        ) / max(1, n - 1)
        # Bimodality: fraction of subwindows near either extreme of the
        # observed range (slot-keyed on/off traffic clusters at both).
        high = max(counts)
        if high == 0:
            bimodality = 0.0
        else:
            low_frac = sum(1 for c in counts if c <= high * 0.2) / n
            high_frac = sum(1 for c in counts if c >= high * 0.8) / n
            bimodality = low_frac * high_frac * 4.0  # 1.0 when 50/50
        return {
            "duty": duty,
            "burstiness": burstiness,
            "transitions": transitions,
            "bimodality": bimodality,
        }


class ContentionMonitor:
    """Samples per-TPC mux flit counters in fixed subwindows."""

    def __init__(
        self, device: GpuDevice, subwindow_cycles: int = 256
    ) -> None:
        self.device = device
        self.subwindow_cycles = subwindow_cycles
        self.telemetry: Dict[int, TpcTelemetry] = {
            tpc: TpcTelemetry(tpc, subwindow_cycles)
            for tpc in range(device.config.num_tpcs)
        }
        self._last: Dict[int, int] = {}

    def _counter(self, tpc: int) -> int:
        return self.device.stats.counters.get(f"tpc{tpc}.mux.flits", 0)

    def run(self, total_cycles: int) -> None:
        """Step the device, sampling every subwindow."""
        steps = max(1, total_cycles // self.subwindow_cycles)
        for tpc in self.telemetry:
            self._last[tpc] = self._counter(tpc)
        for _ in range(steps):
            self.device.engine.step(self.subwindow_cycles)
            for tpc, trace in self.telemetry.items():
                now = self._counter(tpc)
                trace.flits.append(now - self._last[tpc])
                self._last[tpc] = now


# --------------------------------------------------------------------- #
# Classifier (decision stumps, GPUGuard-style tree of depth 2).
# --------------------------------------------------------------------- #
@dataclass
class DetectorModel:
    """Thresholds learned from labelled traces."""

    #: feature -> (threshold, direction) where direction=+1 flags values
    #: above the threshold.
    stumps: Dict[str, Tuple[float, int]] = field(default_factory=dict)
    #: Votes needed to flag a window as covert.
    votes_needed: int = 2

    def classify(self, features: Dict[str, float]) -> bool:
        votes = 0
        for name, (threshold, direction) in self.stumps.items():
            value = features.get(name, 0.0)
            if direction > 0 and value > threshold:
                votes += 1
            elif direction < 0 and value < threshold:
                votes += 1
        return votes >= self.votes_needed


def _best_stump(
    positives: List[float], negatives: List[float]
) -> Tuple[float, int, float]:
    """Threshold + direction maximizing accuracy for one feature."""
    values = sorted(set(positives + negatives))
    best = (0.0, 1, 0.0)
    total = len(positives) + len(negatives)
    for index in range(len(values) - 1):
        threshold = (values[index] + values[index + 1]) / 2.0
        for direction in (1, -1):
            if direction > 0:
                correct = sum(1 for v in positives if v > threshold) + sum(
                    1 for v in negatives if v <= threshold
                )
            else:
                correct = sum(1 for v in positives if v < threshold) + sum(
                    1 for v in negatives if v >= threshold
                )
            accuracy = correct / total
            if accuracy > best[2]:
                best = (threshold, direction, accuracy)
    return best


def train_detector(
    covert_traces: Sequence[Dict[str, float]],
    benign_traces: Sequence[Dict[str, float]],
    max_stumps: int = 3,
) -> DetectorModel:
    """Fit decision stumps on labelled feature dicts."""
    if not covert_traces or not benign_traces:
        raise ValueError("need both covert and benign training traces")
    names = sorted(covert_traces[0])
    scored = []
    for name in names:
        threshold, direction, accuracy = _best_stump(
            [t[name] for t in covert_traces],
            [t[name] for t in benign_traces],
        )
        scored.append((accuracy, name, threshold, direction))
    scored.sort(reverse=True)
    chosen = scored[:max_stumps]
    model = DetectorModel(
        stumps={
            name: (threshold, direction)
            for _acc, name, threshold, direction in chosen
        },
        votes_needed=max(1, (len(chosen) + 1) // 2),
    )
    return model


# --------------------------------------------------------------------- #
# Trace generation on the simulator.
# --------------------------------------------------------------------- #
def covert_channel_trace(
    config: GpuConfig,
    observe_cycles: int = 24_000,
    payload_bits: int = 12,
    seed: int = 17,
    subwindow_cycles: int = 256,
) -> Dict[str, float]:
    """Features of the monitored TPC while the covert channel runs."""
    rng = random.Random(seed)
    bits = [rng.randint(0, 1) for _ in range(payload_bits)]
    channel = TpcCovertChannel(
        config,
        params=ChannelParams(threshold=1.0, sync_period=0),
        seed_salt=seed,
    )
    per_channel = [bits]
    # Build the run manually so the monitor can sample mid-flight.
    senders, receivers = channel._role_blocks()
    device = GpuDevice(config, seed_salt=seed)
    monitor = ContentionMonitor(device, subwindow_cycles)
    # Reuse the channel's kernel construction through _run's internals is
    # private; assemble equivalently via transmit on a device we control:
    from ..channel.protocol import (
        receiver_program,
        region_bytes,
        sender_program,
    )
    from ..gpu.kernel import Kernel

    params = channel.params
    line = config.l2_line_bytes
    region = region_bytes(params, line)
    sender_kernel = Kernel(
        sender_program,
        num_blocks=config.num_tpcs,
        warps_per_block=params.sender_warps,
        args={
            "params": params,
            "channel_bits": {block: bits for block in senders},
            "base_for": {block: 0 for block in senders},
            "line_bytes": line,
            "levels": None,
            "channel_of": dict(senders),
        },
        name="trojan",
    )
    receiver_kernel = Kernel(
        receiver_program,
        num_blocks=config.num_tpcs,
        warps_per_block=1,
        args={
            "params": params,
            "num_symbols": {block: len(bits) for block in receivers},
            "base_for": {
                block: params.sender_warps * region for block in receivers
            },
            "line_bytes": line,
            "measurements": {},
            "channel_of": dict(receivers),
        },
        name="spy",
    )
    device.preload_region(0, (params.sender_warps + 1) * region)
    device.launch(sender_kernel)
    device.launch(receiver_kernel)
    monitor.run(observe_cycles)
    return monitor.telemetry[channel.channel_tpcs[0]].features()


def benign_trace(
    config: GpuConfig,
    workload: str,
    observe_cycles: int = 24_000,
    seed: int = 23,
    subwindow_cycles: int = 256,
) -> Dict[str, float]:
    """Features of TPC0 while a benign workload runs on it."""
    device = GpuDevice(config, seed_salt=seed)
    monitor = ContentionMonitor(device, subwindow_cycles)
    active = set(config.tpc_sms(0))
    kernel = make_benign_kernel(
        config, workload, ops=400, active_sms=active
    )
    for sm in active:
        device.preload_region(sm * (1 << 16), benign_footprint(config))
    device.launch(kernel)
    monitor.run(observe_cycles)
    return monitor.telemetry[0].features()


@dataclass
class DetectionReport:
    """Outcome of the end-to-end detection study."""

    model: DetectorModel
    covert_detected: int
    covert_total: int
    false_positives: int
    benign_total: int

    @property
    def detection_rate(self) -> float:
        return self.covert_detected / max(1, self.covert_total)

    @property
    def false_positive_rate(self) -> float:
        return self.false_positives / max(1, self.benign_total)


def run_detection_study(
    config: GpuConfig,
    train_seeds: Sequence[int] = (1, 2, 3),
    test_seeds: Sequence[int] = (11, 12, 13, 14),
    workloads: Optional[Sequence[str]] = None,
) -> DetectionReport:
    """Train on some traces, evaluate on held-out traces."""
    workloads = list(workloads or sorted(BENIGN_WORKLOADS))
    covert_train = [
        covert_channel_trace(config, seed=s) for s in train_seeds
    ]
    benign_train = [
        benign_trace(config, w, seed=s)
        for s in train_seeds
        for w in workloads
    ]
    model = train_detector(covert_train, benign_train)
    covert_hits = sum(
        1
        for s in test_seeds
        if model.classify(covert_channel_trace(config, seed=s))
    )
    benign_tests = [
        benign_trace(config, w, seed=s)
        for s in test_seeds
        for w in workloads
    ]
    false_positives = sum(
        1 for features in benign_tests if model.classify(features)
    )
    return DetectionReport(
        model=model,
        covert_detected=covert_hits,
        covert_total=len(test_seeds),
        false_positives=false_positives,
        benign_total=len(benign_tests),
    )

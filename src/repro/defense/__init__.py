"""Countermeasures against the interconnect covert channel (Section 6)."""

from .arbitration_study import (
    ArbitrationSweep,
    DefenseOutcome,
    FIG15_POLICIES,
    SrrCostReport,
    arbitration_leakage_sweep,
    covert_channel_under_policy,
    srr_performance_cost,
    srr_workload_cost_study,
)
from .clock_fuzz import ClockFuzzStudy, run_clock_fuzz_study
from .detection import (
    ContentionMonitor,
    DetectionReport,
    DetectorModel,
    TpcTelemetry,
    benign_trace,
    covert_channel_trace,
    run_detection_study,
    train_detector,
)
from .partition import (
    MigInstance,
    TemporalPartitionPlan,
    colocation_blocked,
    cross_instance_channel_possible,
    make_mig_partition,
    partition_utilization,
    temporal_partition,
)

__all__ = [
    "ArbitrationSweep",
    "DefenseOutcome",
    "FIG15_POLICIES",
    "SrrCostReport",
    "arbitration_leakage_sweep",
    "covert_channel_under_policy",
    "srr_performance_cost",
    "srr_workload_cost_study",
    "ClockFuzzStudy",
    "run_clock_fuzz_study",
    "ContentionMonitor",
    "DetectionReport",
    "DetectorModel",
    "TpcTelemetry",
    "benign_trace",
    "covert_channel_trace",
    "run_detection_study",
    "train_detector",
    "MigInstance",
    "TemporalPartitionPlan",
    "colocation_blocked",
    "cross_instance_channel_possible",
    "make_mig_partition",
    "partition_utilization",
    "temporal_partition",
]

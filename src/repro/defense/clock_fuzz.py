"""Clock-fuzzing countermeasure (Section 6).

An alternative (weaker) defense the paper discusses: reduce the precision
of ``clock()`` so the sender and receiver cannot synchronize from it.  The
helpers here run the full covert channel at increasing fuzz amplitudes to
show (a) small fuzz barely hurts — the coarse resync tolerates tens of
cycles of error, and (b) fuzz comparable to the slot length finally breaks
synchronization, but the paper notes the channel could fall back to
handshake-based synchronization, so fuzzing does not *remove* the channel
the way strict arbitration does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import GpuConfig
from ..channel.protocol import ChannelParams
from ..channel.tpc_channel import TpcCovertChannel


@dataclass
class ClockFuzzStudy:
    """Covert-channel quality vs clock fuzz amplitude."""

    amplitudes: List[int]
    error_rates: List[float] = field(default_factory=list)
    bandwidths_mbps: List[float] = field(default_factory=list)

    def breaking_amplitude(self, error_limit: float = 0.25) -> Optional[int]:
        """Smallest tested fuzz that pushes errors past ``error_limit``."""
        for amplitude, error in zip(self.amplitudes, self.error_rates):
            if error > error_limit:
                return amplitude
        return None


def run_clock_fuzz_study(
    config: GpuConfig,
    amplitudes: Sequence[int] = (0, 16, 64, 256, 1024, 4096),
    params: Optional[ChannelParams] = None,
    payload_bits: int = 48,
    seed: int = 31,
) -> ClockFuzzStudy:
    """Transmit the same payload at each clock-fuzz amplitude."""
    rng = random.Random(seed)
    bits = [rng.randint(0, 1) for _ in range(payload_bits)]
    study = ClockFuzzStudy(amplitudes=list(amplitudes))
    for amplitude in amplitudes:
        fuzz_config = config.replace(clock_fuzz=amplitude)
        channel = TpcCovertChannel(fuzz_config, params=params)
        channel.calibrate()
        result = channel.transmit(bits)
        study.error_rates.append(result.error_rate)
        study.bandwidths_mbps.append(result.bandwidth_mbps)
    return study

"""Spatial/temporal partitioning defenses (Section 6 discussion).

Two scheduling-level countermeasures the paper discusses alongside secure
arbitration:

* **Temporal partitioning** (GPUGuard-style): never co-schedule blocks of
  different kernels on the same TPC (or GPC).  This removes the shared
  mux and with it the channel, but halves the SMs available to concurrent
  kernels.
* **MIG-style GPC isolation**: each tenant instance owns whole GPCs with
  a dedicated memory path.  Cross-instance channels disappear, but — as
  the paper stresses — MPS *within* an instance still permits the attack,
  so the channel survives intra-instance (Footnote 1, Section 5).

Both are modelled as placement constraints checked/enforced against the
reverse-engineered topology, plus helpers that measure their utilization
cost and verify their effect on the covert channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..config import GpuConfig
from ..channel.base import block_to_tpc_map


@dataclass(frozen=True)
class MigInstance:
    """A MIG-style instance: a set of GPCs owned by one tenant."""

    instance_id: int
    gpcs: Tuple[int, ...]

    def tpcs(self, config: GpuConfig) -> List[int]:
        members = config.gpc_members()
        return [tpc for gpc in self.gpcs for tpc in members[gpc]]


def make_mig_partition(
    config: GpuConfig, gpcs_per_instance: int = 1
) -> List[MigInstance]:
    """Split the GPU into MIG instances of ``gpcs_per_instance`` GPCs."""
    if not 1 <= gpcs_per_instance <= config.num_gpcs:
        raise ValueError("bad instance size")
    instances = []
    for index, start in enumerate(
        range(0, config.num_gpcs, gpcs_per_instance)
    ):
        gpcs = tuple(
            range(start, min(start + gpcs_per_instance, config.num_gpcs))
        )
        instances.append(MigInstance(instance_id=index, gpcs=gpcs))
    return instances


def cross_instance_channel_possible(
    config: GpuConfig,
    instances: Sequence[MigInstance],
    sender_instance: int,
    receiver_instance: int,
) -> bool:
    """Whether a TPC/GPC channel can connect two instances.

    The interconnect channels require sharing a TPC (or GPC); disjoint
    instances share neither, so cross-instance channels are impossible —
    while ``sender_instance == receiver_instance`` (MPS inside one MIG
    instance) remains fully attackable.
    """
    sender_gpcs = set(instances[sender_instance].gpcs)
    receiver_gpcs = set(instances[receiver_instance].gpcs)
    return bool(sender_gpcs & receiver_gpcs)


@dataclass
class TemporalPartitionPlan:
    """A co-scheduling plan that never shares a TPC between kernels."""

    #: kernel label -> TPCs it may occupy.
    assignments: Dict[str, Set[int]]

    def shares_tpc(self) -> bool:
        seen: Set[int] = set()
        for tpcs in self.assignments.values():
            if seen & tpcs:
                return True
            seen |= tpcs
        return False


def temporal_partition(
    config: GpuConfig, kernels: Sequence[str], level: str = "tpc"
) -> TemporalPartitionPlan:
    """Partition TPCs (or whole GPCs) between concurrent kernels.

    Returns a plan in which no two kernels share the unit of isolation;
    utilization cost: each kernel gets ``1/len(kernels)`` of the machine
    and, at TPC level, only one SM per TPC may be used by any *other*
    tenant epoch — the paper's noted downside.
    """
    if level not in ("tpc", "gpc"):
        raise ValueError("level must be 'tpc' or 'gpc'")
    assignments: Dict[str, Set[int]] = {label: set() for label in kernels}
    if level == "tpc":
        units: List[Set[int]] = [{tpc} for tpc in range(config.num_tpcs)]
    else:
        units = [set(tpcs) for tpcs in config.gpc_members().values()]
    for index, unit in enumerate(units):
        label = kernels[index % len(kernels)]
        assignments[label] |= unit
    return TemporalPartitionPlan(assignments=assignments)


def partition_utilization(
    config: GpuConfig, plan: TemporalPartitionPlan, kernel: str
) -> float:
    """Fraction of the GPU's SMs available to ``kernel`` under the plan."""
    tpcs = plan.assignments[kernel]
    return len(tpcs) * config.sms_per_tpc / config.num_sms


def colocation_blocked(
    config: GpuConfig, plan: TemporalPartitionPlan,
    sender: str, receiver: str,
) -> bool:
    """Whether the plan prevents a sender/receiver TPC channel."""
    return not (plan.assignments[sender] & plan.assignments[receiver])

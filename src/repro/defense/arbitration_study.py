"""Secure-arbitration evaluation (Section 6, Figure 15 and Table 1).

The countermeasure study compares three TPC-mux arbitration policies by
re-running the Section 4.2 leakage experiment (two SMs sharing a mux; the
co-runner's traffic fraction swept, the probe SM's execution time
measured):

* **RR**   — baseline round-robin: probe time grows linearly with the
  co-runner's traffic → the channel leaks.
* **CRR**  — coarse-grain (per-warp) round-robin: fewer arbitration
  events but identical bandwidth sharing → still leaks.
* **SRR**  — strict round-robin (time-division multiplexing): every input
  owns its cycles whether used or not → the probe's service rate is
  constant and the covert channel disappears, at the cost of up to 2x
  bandwidth loss for memory-intensive workloads.

The same helpers also quantify the performance cost of SRR for
compute-intensive (low duty) vs memory-intensive (high duty) workloads and
verify end-to-end that a covert channel transmission fails under SRR.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import GpuConfig
from ..channel.protocol import ChannelParams
from ..channel.tpc_channel import TpcCovertChannel
from ..reveng.tpc_discovery import measure_active_sms

#: Policies compared in Figure 15.
FIG15_POLICIES = ("rr", "crr", "srr")


@dataclass
class ArbitrationSweep:
    """Figure 15's data: normalized probe time per policy per fraction."""

    fractions: List[float]
    series: Dict[str, List[float]] = field(default_factory=dict)

    def slope(self, policy: str) -> float:
        """Leakage strength of a policy (0 means no covert channel)."""
        xs = self.fractions
        ys = self.series[policy]
        n = len(xs)
        mx = sum(xs) / n
        my = sum(ys) / n
        num = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
        den = sum((x - mx) ** 2 for x in xs)
        return num / den if den else 0.0


def arbitration_leakage_sweep(
    config: GpuConfig,
    policies: Sequence[str] = FIG15_POLICIES,
    fractions: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    ops: int = 16,
    probe_sm: int = 0,
) -> ArbitrationSweep:
    """Reproduce Figure 15: probe SM's time vs co-runner fraction.

    Matches the paper's simulation setup: two SMs of one TPC, two warps
    each, continuous write requests; SM1's request volume is varied.
    """
    sibling = next(
        sm
        for sm in config.tpc_sms(config.sm_to_tpc(probe_sm))
        if sm != probe_sm
    )
    sweep = ArbitrationSweep(fractions=list(fractions))
    for policy in policies:
        policy_config = config.replace(arbitration=policy)
        baseline = measure_active_sms(
            policy_config, {probe_sm}, "write", ops=ops
        )[probe_sm]
        series: List[float] = []
        for fraction in fractions:
            measured = measure_active_sms(
                policy_config,
                {probe_sm, sibling},
                "write",
                ops=ops,
                duty_overrides={sibling: fraction},
            )
            series.append(measured[probe_sm] / baseline)
        sweep.series[policy] = series
    return sweep


@dataclass
class DefenseOutcome:
    """End-to-end covert-channel result under a given arbitration."""

    policy: str
    error_rate: float
    bandwidth_mbps: float

    @property
    def channel_defeated(self) -> bool:
        """An error rate near 50% means the spy decodes coin flips."""
        return self.error_rate > 0.25


def covert_channel_under_policy(
    config: GpuConfig,
    policy: str,
    params: Optional[ChannelParams] = None,
    payload_bits: int = 64,
    seed: int = 29,
) -> DefenseOutcome:
    """Run the full TPC covert channel under an arbitration policy.

    The attacker retunes the slot to the policy (they control both ends):
    under CRR, grants hold whole warp groups, so probes take longer and a
    slot sized for RR would overrun — a larger T keeps the channel alive,
    which is exactly the paper's point that CRR is not a mitigation.
    """
    rng = random.Random(seed)
    bits = [rng.randint(0, 1) for _ in range(payload_bits)]
    policy_config = config.replace(arbitration=policy)
    if params is None and policy == "crr":
        params = ChannelParams(iterations=6, slot_per_iteration=700)
    channel = TpcCovertChannel(policy_config, params=params)
    channel.calibrate()
    result = channel.transmit(bits)
    return DefenseOutcome(
        policy=policy,
        error_rate=result.error_rate,
        bandwidth_mbps=result.bandwidth_mbps,
    )


@dataclass
class SrrCostReport:
    """Performance cost of strict round-robin (Section 6's trade-off)."""

    #: workload label -> normalized slowdown of SRR over RR.
    slowdowns: Dict[str, float] = field(default_factory=dict)


def srr_workload_cost_study(
    config: GpuConfig,
    ops: int = 60,
    workloads=None,
) -> SrrCostReport:
    """SRR slowdown across the benign workload suite.

    The paper's trade-off (Section 6): memory-intensive workloads can
    lose up to ~2x of their interconnect bandwidth under strict
    round-robin (their slots are wasted whenever the co-resident SM is
    idle), while compute-bound kernels barely notice.  This study runs
    each benign workload solo on one SM of a TPC under RR and SRR.
    """
    from ..gpu.benign import (
        BENIGN_WORKLOADS,
        benign_footprint,
        make_benign_kernel,
    )
    from ..gpu.device import GpuDevice

    report = SrrCostReport()
    names = list(workloads or sorted(BENIGN_WORKLOADS))
    for name in names:
        times = {}
        for policy in ("rr", "srr"):
            policy_config = config.replace(
                arbitration=policy, timing_noise=0
            )
            device = GpuDevice(policy_config)
            active = {0}
            kernel = make_benign_kernel(
                policy_config, name, ops=ops, active_sms=active
            )
            device.preload_region(0, benign_footprint(policy_config))
            times[policy] = device.run_kernels([kernel])[kernel.name]
        report.slowdowns[name] = times["srr"] / times["rr"]
    return report


def srr_performance_cost(
    config: GpuConfig,
    ops: int = 16,
    probe_sm: int = 0,
) -> SrrCostReport:
    """Quantify SRR's cost for solo memory- vs compute-intensive kernels.

    A lone memory-intensive SM under SRR only receives its time slice of
    the mux (up to 2x slowdown on a 2:1 mux); a compute-intensive kernel
    (low memory duty) barely notices.
    """
    report = SrrCostReport()
    for label, duty in (("memory-intensive", 1.0), ("compute-intensive", 0.02)):
        times: Dict[str, int] = {}
        for policy in ("rr", "srr"):
            policy_config = config.replace(arbitration=policy)
            times[policy] = measure_active_sms(
                policy_config, {probe_sm}, "write", ops=ops, duty=duty
            )[probe_sm]
        report.slowdowns[label] = times["srr"] / times["rr"]
    return report

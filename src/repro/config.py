"""GPU and NoC configuration.

The :class:`GpuConfig` dataclass holds every architectural parameter of the
simulated GPU.  The default instance, :data:`VOLTA_V100`, mirrors Table 1 of
the paper (a Volta-like configuration: 1200 MHz, 40 TPCs with 2 SMs each,
6 GPCs, 48 L2 slices, a crossbar interconnect with 40-byte flits and two
subnets) plus the microarchitectural knobs the paper's contention behaviour
depends on: the TPC/GPC mux concentration factors, the GPC bandwidth speedup,
the SM read window (MSHRs), and packet sizes in flits.

All randomness in the simulator flows from the ``seed`` recorded here so that
every experiment is deterministic and reproducible.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Arbitration policy names accepted throughout the package.
ARBITRATION_POLICIES = ("rr", "crr", "srr", "age", "fixed", "random")

#: Engine scheduling strategies accepted by ``engine_strategy``.
ENGINE_STRATEGIES = ("active", "naive", "vector")


class ConfigError(ValueError):
    """A configuration is invalid or unsatisfiable in this environment.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    call sites keep working; raised with an actionable message (e.g.
    ``engine_strategy="vector"`` requested without numpy installed).
    """


@dataclass(frozen=True)
class DramTiming:
    """HBM2-style DRAM timing parameters (in memory-controller cycles).

    Matches the memory model row of Table 1: tCL=12, tRP=12, tRC=40,
    tRAS=28, tRCD=12, tRRD=3.
    """

    t_cl: int = 12
    t_rp: int = 12
    t_rc: int = 40
    t_ras: int = 28
    t_rcd: int = 12
    t_rrd: int = 3
    #: Fixed controller/PHY/clock-crossing overhead per access, in core
    #: cycles.  Makes an L2 miss cost a realistic multiple of an L2 hit
    #: (on Volta a miss roughly doubles the round trip); without it the
    #: raw bank timings above would make DRAM faster than the L2
    #: pipeline, which is nonsense.
    t_overhead: int = 260

    @property
    def row_hit_latency(self) -> int:
        """Cycles to serve a request that hits the open row."""
        return self.t_cl

    @property
    def row_miss_latency(self) -> int:
        """Cycles to serve a request that must close and re-open a row."""
        return self.t_rp + self.t_rcd + self.t_cl

    @property
    def row_conflict_latency(self) -> int:
        """Worst case: obey tRC before activating the new row."""
        return max(self.t_rc, self.t_ras + self.t_rp) + self.t_rcd + self.t_cl


@dataclass(frozen=True)
class ClockSkewModel:
    """Parameters of the per-SM ``clock()`` register skew model.

    The paper (Section 4.1, Figure 6) measured that SMs within a TPC differ
    by fewer than 5 cycles, SMs within a GPC by fewer than 15 cycles, while
    different GPCs can differ by billions of cycles (up to a 4x factor)
    because their clock registers started counting at very different times.
    """

    #: Spread of per-GPC base offsets (cycles).  Volta measurements showed
    #: register values between ~1e9 and ~5e9 across GPCs.
    gpc_base_min: int = 1_000_000_000
    gpc_base_max: int = 5_000_000_000
    #: Maximum extra offset between TPCs of the same GPC.
    tpc_jitter: int = 12
    #: Maximum extra offset between the two SMs of a TPC.
    sm_jitter: int = 4
    #: Per-read measurement jitter (sampling noise of the clock read itself).
    read_jitter: int = 2


#: Environment knobs for the sweep-supervision defaults (see
#: :meth:`SweepSupervision.from_env`).
SWEEP_TIMEOUT_ENV = "REPRO_SWEEP_TIMEOUT_S"
SWEEP_ATTEMPTS_ENV = "REPRO_SWEEP_ATTEMPTS"
SWEEP_BACKOFF_ENV = "REPRO_SWEEP_BACKOFF_S"


@dataclass(frozen=True)
class SweepSupervision:
    """Fault-tolerance policy for supervised sweep execution.

    Consumed by :func:`repro.runner.supervisor.run_supervised`: every job
    of a sweep is executed in its own worker process under a per-job
    wall-clock ``timeout_s`` and retried up to ``max_attempts`` times with
    exponential backoff.  The backoff jitter is *deterministic* — derived
    from the job's content-hash key and the attempt number, never from
    wall-clock entropy — so a replayed sweep schedules retries
    identically.

    This lives here (rather than in the runner package) because it is
    configuration in the same sense as :class:`GpuConfig`: a frozen,
    picklable record that experiments thread through unchanged.  It is
    deliberately *not* a field of :class:`GpuConfig` — how a sweep is
    babysat must not perturb result-cache keys, which hash the GPU model
    alone.
    """

    #: Per-job wall-clock budget in seconds; a worker that has not
    #: reported within it is killed and the job rescheduled.  ``None``
    #: disables the timeout (a hung worker then hangs its slot forever).
    timeout_s: float | None = None
    #: Total attempts per job (1 = no retries).  A job whose last attempt
    #: fails becomes a structured ``JobFailure`` in the sweep results.
    max_attempts: int = 3
    #: First-retry backoff in seconds; attempt ``n`` waits
    #: ``backoff_base_s * backoff_factor**(n-1)`` (capped at
    #: ``backoff_max_s``) before being rescheduled.
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    #: Fractional jitter applied on top of the exponential delay,
    #: deterministic per (job key, attempt).
    backoff_jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")

    def replace(self, **changes) -> "SweepSupervision":
        """Return a copy of this policy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    @staticmethod
    def from_env() -> "SweepSupervision":
        """Default policy, overridable via ``REPRO_SWEEP_*`` variables.

        ``REPRO_SWEEP_TIMEOUT_S`` (float seconds), ``REPRO_SWEEP_ATTEMPTS``
        (int) and ``REPRO_SWEEP_BACKOFF_S`` (float, first-retry delay) let
        CI wrap every sweep command in a safety net without per-command
        flags.  Unset or unparsable variables fall back to the dataclass
        defaults.
        """
        import os

        changes: Dict[str, object] = {}
        raw = os.environ.get(SWEEP_TIMEOUT_ENV)
        if raw:
            try:
                changes["timeout_s"] = float(raw)
            except ValueError:
                pass
        raw = os.environ.get(SWEEP_ATTEMPTS_ENV)
        if raw:
            try:
                changes["max_attempts"] = int(raw)
            except ValueError:
                pass
        raw = os.environ.get(SWEEP_BACKOFF_ENV)
        if raw:
            try:
                changes["backoff_base_s"] = float(raw)
            except ValueError:
                pass
        return SweepSupervision(**changes)  # type: ignore[arg-type]


#: Inter-GPU link topologies accepted by :class:`LinkConfig`.
LINK_TOPOLOGIES = ("ring", "full", "switch")


@dataclass(frozen=True)
class LinkConfig:
    """Configuration of an inter-GPU (NVLink-class) fabric.

    Consumed by :class:`repro.interconnect.MultiGpuSystem`: ``num_devices``
    identical GPUs are joined by point-to-point links whose shape is
    expressed as data by ``topology``.  Like :class:`SweepSupervision`,
    this is deliberately *not* a set of :class:`GpuConfig` fields — the
    golden store and result cache hash the single-GPU model alone, and a
    fabric wrapped around N unmodified devices must not perturb those
    keys.  Link parameters reach workloads through job ``params`` instead.
    """

    #: Number of identical GPU devices in the system.
    num_devices: int = 2
    #: Fabric shape: "ring" (bidirectional ring, NVLink bridge style),
    #: "full" (a direct link per device pair, DGX hybrid-mesh style) or
    #: "switch" (every device hangs off one central crossbar, NVSwitch
    #: style).
    topology: str = "ring"
    #: Flits per cycle a link serializes.  With 40-byte flits, width 4 at
    #: 1200 MHz core clock ≈ 192 GB/s — a pair of bonded NVLink3 bricks.
    link_width: int = 4
    #: One-way link traversal latency in core cycles (serdes + retimer +
    #: PHY).  ~150 cycles each way puts an uncontended remote-L2 read at
    #: roughly 2.5x the local round trip, matching published NVLink
    #: peer-access measurements.
    link_latency: int = 150
    #: FIFO depth (flits) of the per-link TX/RX buffers.
    link_buffer_depth: int = 16
    #: Arbitration policy of the per-device fabric egress router.
    arbitration: str = "rr"

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError("num_devices must be at least 1")
        if self.topology not in LINK_TOPOLOGIES:
            raise ValueError(
                f"unknown link topology {self.topology!r}; "
                f"expected one of {LINK_TOPOLOGIES}"
            )
        if self.link_width < 1:
            raise ValueError("link_width must be at least 1")
        if self.link_latency < 1:
            raise ValueError("link_latency must be at least 1")
        if self.link_buffer_depth < 1:
            raise ValueError("link_buffer_depth must be at least 1")
        if self.arbitration not in ARBITRATION_POLICIES:
            raise ValueError(
                f"unknown arbitration {self.arbitration!r}; "
                f"expected one of {ARBITRATION_POLICIES}"
            )

    def replace(self, **changes) -> "LinkConfig":
        """Return a copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


#: Environment knobs for the sweep-service defaults (see
#: :meth:`ServiceConfig.from_env`).
SERVICE_SHARDS_ENV = "REPRO_SERVICE_SHARDS"
SERVICE_EXECUTION_ENV = "REPRO_SERVICE_EXECUTION"

#: Execution backends the sweep service can dispatch shards to.
SERVICE_EXECUTION_MODES = ("supervised", "inline")


@dataclass(frozen=True)
class ServiceConfig:
    """Shape of the async sweep service (:mod:`repro.runner.service`).

    Like :class:`SweepSupervision` this is a frozen record threaded
    through unchanged, and deliberately *not* part of
    :class:`GpuConfig` — how many shards answer a request must never
    perturb result-cache keys.

    ``execution`` picks the shard backend: ``"supervised"`` runs every
    job in its own worker process under the full
    :class:`SweepSupervision` net (timeouts, retries, backoff) and is
    the production default; ``"inline"`` executes in a thread of the
    service process — no isolation, but cheap enough for the
    property-based scheduler tests to run hundreds of jobs.
    """

    #: Number of shard workers draining the dispatch queue; each runs
    #: one job at a time, so this is the service's concurrency.
    shards: int = 2
    #: Shard backend, one of :data:`SERVICE_EXECUTION_MODES`.
    execution: str = "supervised"
    #: Artifact-store bounds handed to the service's default
    #: :class:`~repro.runner.cache.ResultCache` (None = unbounded).
    cache_max_entries: int | None = None
    cache_max_bytes: int | None = None
    #: Default staleness bound (seconds) for capacity surfaces built by
    #: the serve path; ``None`` disables the age check.
    surface_max_age_s: float | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.execution not in SERVICE_EXECUTION_MODES:
            raise ValueError(
                f"unknown execution {self.execution!r}; "
                f"expected one of {SERVICE_EXECUTION_MODES}"
            )
        if self.cache_max_entries is not None and self.cache_max_entries < 1:
            raise ValueError("cache_max_entries must be positive (or None)")
        if self.cache_max_bytes is not None and self.cache_max_bytes < 1:
            raise ValueError("cache_max_bytes must be positive (or None)")
        if self.surface_max_age_s is not None and self.surface_max_age_s <= 0:
            raise ValueError("surface_max_age_s must be positive (or None)")

    def replace(self, **changes) -> "ServiceConfig":
        """Return a copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    @staticmethod
    def from_env() -> "ServiceConfig":
        """Default service shape, overridable via ``REPRO_SERVICE_*``.

        ``REPRO_SERVICE_SHARDS`` (int) and ``REPRO_SERVICE_EXECUTION``
        (``supervised``/``inline``) mirror the ``REPRO_SWEEP_*``
        convention; unset or unparsable variables fall back to the
        dataclass defaults.
        """
        import os

        changes: Dict[str, object] = {}
        raw = os.environ.get(SERVICE_SHARDS_ENV)
        if raw:
            try:
                changes["shards"] = int(raw)
            except ValueError:
                pass
        raw = os.environ.get(SERVICE_EXECUTION_ENV)
        if raw and raw in SERVICE_EXECUTION_MODES:
            changes["execution"] = raw
        return ServiceConfig(**changes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class GpuConfig:
    """Complete configuration of the simulated GPU and its on-chip network."""

    # ------------------------------------------------------------------ #
    # Core hierarchy (Table 1: 40 TPCs, 2 SMs per TPC; V100 has 6 GPCs
    # where 4 GPCs have 7 TPCs and 2 GPCs have 6 TPCs = 40 total).
    # ------------------------------------------------------------------ #
    core_clock_mhz: int = 1200
    simt_width: int = 32
    num_gpcs: int = 6
    #: TPC count per GPC.  Sums to 40 for the default V100 (two GPCs have a
    #: disabled TPC, Section 3.3).
    tpcs_per_gpc: Tuple[int, ...] = (7, 7, 7, 7, 6, 6)
    sms_per_tpc: int = 2

    # ------------------------------------------------------------------ #
    # Memory system (Table 1: 128 KB L1/shmem per SM, 48 L2 slices of
    # 96 KB, 24 memory controllers, HBM2).
    # ------------------------------------------------------------------ #
    l1_size_bytes: int = 128 * 1024
    l1_line_bytes: int = 128
    l1_ways: int = 4
    l1_hit_latency: int = 28
    num_l2_slices: int = 48
    l2_slice_bytes: int = 96 * 1024
    l2_line_bytes: int = 128
    l2_ways: int = 16
    #: L2 replacement policy: GPU L2s use pseudo-random replacement, which
    #: lets a streaming third kernel displace the covert channel's hot
    #: lines under capacity pressure (Section 5's noise discussion);
    #: "lru" would shield the hot set artificially.
    l2_replacement: str = "random"
    #: L2 pipeline latency (cycles from request arrival to reply injection).
    #: Chosen so the uncontended round trip lands in the ~200-250 cycle
    #: range the paper measured on Volta (Section 4.1).
    l2_latency: int = 200
    #: L2 slice service throughput: one request accepted per cycle.
    l2_ports: int = 1
    num_memory_controllers: int = 24
    dram: DramTiming = field(default_factory=DramTiming)
    dram_queue_depth: int = 16

    # ------------------------------------------------------------------ #
    # Interconnect (Table 1: 1200 MHz crossbar, flit size 40, one VC,
    # two subnets: request + reply).
    # ------------------------------------------------------------------ #
    flit_bytes: int = 40
    num_vcs: int = 1
    num_subnets: int = 2
    #: Arbitration policy used by every mux: "rr", "crr", "srr", "age",
    #: "fixed" or "random".
    arbitration: str = "rr"
    #: Flits per cycle accepted by the TPC injection channel (2:1 mux, no
    #: speedup — this is the shared resource behind the TPC covert channel).
    tpc_channel_width: int = 1
    #: Flits per cycle accepted by the GPC channel (7:1 mux *with* speedup;
    #: the paper infers a speedup because 7 write-streaming TPCs only lose
    #: ~15% — 7 inputs over width 6 ≈ 1.17x oversubscription).
    gpc_channel_width: int = 6
    #: Flits per cycle on the reply path back into a GPC.  Lower than the
    #: request width: read replies carry whole cache sectors, so the read
    #: traffic of one SM per TPC oversubscribes it roughly 2x with 7 TPCs
    #: active (Fig 5b: degradation onset at 4 TPCs, ~2.1x at 7) while up
    #: to 3 TPCs fit within it.
    gpc_reply_width: int = 3
    #: Flits per cycle delivered to each TPC on the reply path.
    tpc_reply_width: int = 4
    #: Crossbar per-port width (flits/cycle) between GPCs and L2 slices.
    xbar_width: int = 8
    #: FIFO depth (flits) of every NoC buffer.
    buffer_depth: int = 8
    #: Reply-path buffering at the L2 slices: True (default) gives each
    #: slice one virtual output queue per destination GPC, so replies
    #: bound for a congested GPC never head-of-line-block other GPCs'
    #: replies.  False is the single-FIFO ablation: under multi-GPC load
    #: HOL blocking couples every GPC's latency to the most congested
    #: reply port (cross-channel noise explodes — see the ablation
    #: benchmark).
    reply_voq: bool = True

    # ------------------------------------------------------------------ #
    # Packet geometry (in flits).  A write carries data on the request
    # subnet; a read request is a single header flit but its reply carries
    # the sector data.
    # ------------------------------------------------------------------ #
    read_request_flits: int = 1
    read_reply_flits: int = 4
    #: A write carries its data on the request subnet (header + a 128-byte
    #: line over 40-byte flits), which is why write traffic saturates the
    #: narrow TPC injection channel so effectively (Section 3.4).
    write_request_flits: int = 4
    #: Write completions: 0 means posted writes are acknowledged at the L2
    #: without a reply packet (credits return directly, the GPU-typical
    #: behaviour); a positive value sends that many flits on the reply
    #: subnet instead.
    write_reply_flits: int = 0

    # ------------------------------------------------------------------ #
    # SM microarchitecture.
    # ------------------------------------------------------------------ #
    #: Maximum outstanding read requests per SM (MSHR window).  Reads are
    #: latency-bound: issue rate ≈ mshrs / round-trip, which is why two
    #: SMs' reads do not contend on the TPC channel while writes do.
    sm_mshrs: int = 64
    #: Maximum in-flight posted writes per SM before the LSU stalls.  Large
    #: enough that a streaming-write SM stays channel-bound (saturating its
    #: TPC injection channel) rather than ack-latency-bound.
    sm_write_buffer: int = 128
    #: Warps the scheduler can issue memory ops from per cycle.
    sm_issue_width: int = 1
    max_warps_per_sm: int = 64
    max_blocks_per_sm: int = 32

    # ------------------------------------------------------------------ #
    # Clock skew model (Section 4.1 / Figure 6).
    # ------------------------------------------------------------------ #
    clock_skew: ClockSkewModel = field(default_factory=ClockSkewModel)
    #: Amount of clock fuzzing applied to clock() reads (defense knob,
    #: Section 6: "clock fuzzing"); 0 disables fuzzing.
    clock_fuzz: int = 0
    #: Aggregate per-memory-op timing noise (cycles, uniform).  Models the
    #: system effects a real GPU adds on top of deterministic contention —
    #: warp-scheduler wake-up jitter, DRAM refresh, replays.  This is the
    #: noise floor that makes low-iteration covert-channel slots error
    #: prone (Figure 10) until more iterations average it out.  Seeded and
    #: fully deterministic; set 0 for a noise-free machine.
    timing_noise: int = 64

    #: Master seed for all simulator randomness.
    seed: int = 2021

    #: Simulation-engine scheduling strategy: "active" (active-set
    #: scheduling with quiescence fast-forward; the default), "naive"
    #: (the reference tick-everything loop) or "vector" (event-driven
    #: batch scheduling over struct-of-arrays state mirrors; requires
    #: numpy and raises :class:`ConfigError` without it).  All three are
    #: cycle-exact with respect to each other; "naive" exists for
    #: equivalence testing and as a fallback while debugging new
    #: components, "vector" for full-Volta-scale throughput.
    engine_strategy: str = "active"

    #: Simulation-integrity validation (repro.validate): a conservation
    #: InvariantChecker audits packet delivery, queue flit accounting and
    #: switch reserve/commit state, raising a structured
    #: InvariantViolation naming the cycle and component on the first
    #: inconsistency.  Off by default; the disabled configuration costs
    #: one branch per hook site (same pattern as telemetry) and seeded
    #: runs are bit-identical either way (the checker only reads state).
    validate_enabled: bool = False
    #: Cycles between invariant audits (1 = every cycle).  Larger values
    #: keep quiescence fast-forward effective on long idle stretches.
    validate_interval: int = 1

    #: NoC telemetry (repro.telemetry): flit-event tracing, latency
    #: histograms and per-epoch utilization timelines.  Off by default;
    #: the disabled configuration costs one branch per instrumentation
    #: site and seeded runs are bit-identical either way.
    telemetry_enabled: bool = False
    #: Event ring-buffer capacity (oldest events evicted beyond this).
    telemetry_ring_capacity: int = 65536
    #: Cycles per utilization/occupancy timeline epoch.
    telemetry_epoch_cycles: int = 64

    #: Engine self-profiling (repro.metrics): sampled active-set sizes,
    #: fast-forward span histogram, mux-bank dispatch widths and
    #: sole-contender batch lengths, exported through the per-process
    #: metrics registry.  Off by default; the profiler only *reads*
    #: scheduler state, so seeded runs stay bit-identical with it on
    #: (the lockstep oracle verifies this) and the disabled configuration
    #: costs one branch per hook site.
    metrics_enabled: bool = False
    #: Cycles between active-set size samples.  Sampling (rather than
    #: recording every cycle) is what keeps enabled overhead under the
    #: 2% acceptance bar at full-Volta scale.
    metrics_interval: int = 64

    # ------------------------------------------------------------------ #
    # Derived quantities.
    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        if len(self.tpcs_per_gpc) != self.num_gpcs:
            raise ValueError(
                f"tpcs_per_gpc has {len(self.tpcs_per_gpc)} entries "
                f"but num_gpcs={self.num_gpcs}"
            )
        if self.arbitration not in ARBITRATION_POLICIES:
            raise ValueError(
                f"unknown arbitration {self.arbitration!r}; "
                f"expected one of {ARBITRATION_POLICIES}"
            )
        if self.engine_strategy not in ENGINE_STRATEGIES:
            raise ValueError(
                f"unknown engine_strategy {self.engine_strategy!r}; "
                f"expected one of {ENGINE_STRATEGIES}"
            )
        if self.validate_interval <= 0:
            raise ValueError("validate_interval must be positive")
        if self.metrics_interval <= 0:
            raise ValueError("metrics_interval must be positive")

    @property
    def num_tpcs(self) -> int:
        return sum(self.tpcs_per_gpc)

    @property
    def num_sms(self) -> int:
        return self.num_tpcs * self.sms_per_tpc

    @property
    def core_clock_hz(self) -> float:
        return self.core_clock_mhz * 1e6

    @property
    def l2_slices_per_mc(self) -> int:
        return self.num_l2_slices // self.num_memory_controllers

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at the core clock."""
        return cycles / self.core_clock_hz

    def replace(self, **changes) -> "GpuConfig":
        """Return a copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Topology mapping: logical TPC ids are interleaved across GPCs
    # (Section 3.3 / Figure 4): TPC0->GPC0, TPC1->GPC1, ..., TPC6->GPC0.
    # Physically every GPC has max(tpcs_per_gpc) TPC slots; GPCs with
    # fewer *enabled* TPCs (the V100's two disabled TPCs) have their
    # disabled slots just before the final rotation round, so the tail of
    # the mapping is imperfectly interleaved: GPC5 holds TPC 5, 11, 17,
    # 23, 29 and then 39 — not 35, which lands in GPC1 (the paper's
    # reverse-engineered Figure 4).
    # ------------------------------------------------------------------ #
    def tpc_to_gpc_map(self) -> List[int]:
        """Logical TPC id -> GPC id (enabled TPCs in physical slot order)."""
        max_rounds = max(self.tpcs_per_gpc)
        mapping: List[int] = []
        for round_index in range(max_rounds):
            for gpc, enabled in enumerate(self.tpcs_per_gpc):
                # A GPC with k enabled TPCs fills rounds 0..k-2 and the
                # final round; its disabled slots occupy rounds k-1 ..
                # max_rounds-2.
                if round_index < enabled - 1 or round_index == max_rounds - 1:
                    mapping.append(gpc)
        return mapping

    def gpc_members(self) -> Dict[int, List[int]]:
        """GPC id -> ordered list of logical TPC ids it contains."""
        members: Dict[int, List[int]] = {g: [] for g in range(self.num_gpcs)}
        for tpc, gpc in enumerate(self.tpc_to_gpc_map()):
            members[gpc].append(tpc)
        return members

    def sm_to_tpc(self, sm_id: int) -> int:
        """Logical SM id -> TPC id (SM 2i and 2i+1 share TPC i)."""
        self._check_sm(sm_id)
        return sm_id // self.sms_per_tpc

    def sm_to_gpc(self, sm_id: int) -> int:
        """Logical SM id -> GPC id."""
        return self.tpc_to_gpc_map()[self.sm_to_tpc(sm_id)]

    def tpc_sms(self, tpc_id: int) -> List[int]:
        """TPC id -> the SM ids it contains."""
        if not 0 <= tpc_id < self.num_tpcs:
            raise ValueError(f"tpc_id {tpc_id} out of range")
        base = tpc_id * self.sms_per_tpc
        return list(range(base, base + self.sms_per_tpc))

    def _check_sm(self, sm_id: int) -> None:
        if not 0 <= sm_id < self.num_sms:
            raise ValueError(f"sm_id {sm_id} out of range [0, {self.num_sms})")

    def address_to_slice(self, address: int) -> int:
        """Map a byte address to its L2 slice (line-interleaved)."""
        return (address // self.l2_line_bytes) % self.num_l2_slices


#: Table 1 configuration: the Volta V100-like GPU evaluated in the paper.
VOLTA_V100 = GpuConfig()

#: Pascal P100-like configuration (Section 5, "Other GPU Architectures":
#: the paper confirmed the same covert channels on Pascal).  GP100 pairs
#: SMs into 28 TPCs over 6 GPCs with a 4 MB L2 over 32 slices.
PASCAL_P100 = GpuConfig(
    core_clock_mhz=1328,
    num_gpcs=6,
    tpcs_per_gpc=(5, 5, 5, 5, 4, 4),
    num_l2_slices=32,
    l2_slice_bytes=128 * 1024,
    num_memory_controllers=16,
)

#: Turing TU104-like configuration (Section 5: Turing also confirmed
#: vulnerable).  TU104: 6 GPCs x 4 TPCs x 2 SMs, 4 MB L2.
TURING_TU104 = GpuConfig(
    core_clock_mhz=1545,
    num_gpcs=6,
    tpcs_per_gpc=(4, 4, 4, 4, 4, 4),
    num_l2_slices=32,
    l2_slice_bytes=128 * 1024,
    num_memory_controllers=16,
)

#: Every architecture preset the suite can exercise (Section 5: "All of
#: the GPU architectures had a hierarchical network organization that
#: shares interconnect bandwidth through concentration").
ARCHITECTURES = {
    "volta": VOLTA_V100,
    "pascal": PASCAL_P100,
    "turing": TURING_TU104,
}


def small_config(**changes) -> GpuConfig:
    """A scaled-down GPU (2 GPCs x 2 TPCs x 2 SMs, 8 L2 slices) for tests.

    Keeps every mechanism of the full configuration (hierarchical muxes,
    speedup, subnets) while running an order of magnitude faster.
    """
    base = GpuConfig(
        num_gpcs=2,
        tpcs_per_gpc=(2, 2),
        num_l2_slices=8,
        num_memory_controllers=4,
    )
    return base.replace(**changes) if changes else base


def large_config(**changes) -> GpuConfig:
    """The full Table-1 V100 driven by the vectorized batch engine.

    Same simulated hardware as :data:`VOLTA_V100` (80 SMs, 48 L2
    slices); the only difference is ``engine_strategy="vector"``, which
    makes full-Volta experiment sweeps and golden recordings practical.
    Requires numpy (raises :class:`ConfigError` at device build time
    otherwise — there is deliberately no silent fallback).
    """
    base = GpuConfig(engine_strategy="vector")
    return base.replace(**changes) if changes else base


def medium_config(**changes) -> GpuConfig:
    """A mid-size GPU (2 GPCs with 5+4 TPCs, 18 SMs) for GPC-level tests.

    Large enough that one GPC's sender TPCs oversubscribe the GPC reply
    channel (the GPC covert channel's mechanism needs >= 4 read-streaming
    SMs per GPC), yet ~4x cheaper to simulate than the full V100.
    """
    base = GpuConfig(
        num_gpcs=2,
        tpcs_per_gpc=(5, 4),
        num_l2_slices=16,
        num_memory_controllers=8,
    )
    return base.replace(**changes) if changes else base

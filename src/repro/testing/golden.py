"""Committed golden-metric snapshots and statistical drift checking.

A *golden* is the recorded seed-sweep of one artifact's metrics at one
scale, written as JSON under ``tests/golden/<scale>/<artifact>.json`` and
committed to the repository.  ``python -m repro golden check`` re-runs
the sweep and compares fresh samples against the snapshot:

* the comparison is keyed by a **config hash** (the full GpuConfig the
  sweep ran on, seed normalised out) so a changed default silently
  invalidates the golden instead of producing a misleading diff;
* drift is judged statistically: the fresh and golden means may differ
  by at most the Welch two-sample margin plus a small relative slack,
  so a cycle-exact refactor passes bit-identically while a contention
  regression fails with the offending metric named.

The snapshot stores raw per-seed samples (not just summaries) so future
sessions can re-derive any statistic without re-simulating.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..config import GpuConfig
from ..runner.cache import canonical_json
from .stats import mean, pointwise_means, sample_std, welch_margin

#: Default directory of committed goldens, relative to the repo root.
DEFAULT_GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"

#: Environment variable overriding the golden directory.
GOLDEN_DIR_ENV = "REPRO_GOLDEN_DIR"

#: Relative drift allowed on top of the statistical margin; absorbs
#: sub-percent calibration shifts a refactor may legitimately introduce.
DEFAULT_REL_SLACK = 0.02


def config_hash(config: GpuConfig) -> str:
    """Hash of the full config with the seed normalised out.

    Seeds vary across the sweep by design; everything else in the config
    must match the snapshot for a comparison to be meaningful.
    """
    payload = canonical_json(config.replace(seed=0))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class DriftResult:
    """Outcome of comparing one metric against its golden snapshot."""

    metric: str
    ok: bool
    observed: str
    recorded: str
    detail: str = ""

    def line(self) -> str:
        status = "PASS" if self.ok else "DRIFT"
        text = (
            f"{status} {self.metric}: now {self.observed}, "
            f"golden {self.recorded}"
        )
        if self.detail:
            text += f" ({self.detail})"
        return text


class StaleGoldenError(RuntimeError):
    """The snapshot was recorded under a different configuration."""


class MissingGoldenError(FileNotFoundError):
    """No snapshot exists for the requested artifact and scale."""


def _summarise(samples: Sequence[Any]) -> Dict[str, Any]:
    if samples and isinstance(samples[0], (list, tuple)):
        series = [list(map(float, s)) for s in samples]
        return {
            "series": True,
            "samples": series,
            "mean": pointwise_means(series),
            "n": len(series),
        }
    values = [float(v) for v in samples]
    return {
        "series": False,
        "samples": values,
        "mean": mean(values),
        "std": sample_std(values),
        "n": len(values),
    }


class GoldenStore:
    """Load, record, and drift-check per-artifact metric snapshots."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        if root is None:
            root = os.environ.get(GOLDEN_DIR_ENV) or DEFAULT_GOLDEN_DIR
        self.root = Path(root)

    def path(self, artifact_id: str, scale: str) -> Path:
        return self.root / scale / f"{artifact_id}.json"

    def exists(self, artifact_id: str, scale: str) -> bool:
        return self.path(artifact_id, scale).is_file()

    def load(self, artifact_id: str, scale: str) -> Dict[str, Any]:
        path = self.path(artifact_id, scale)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            raise MissingGoldenError(
                f"no golden for {artifact_id!r} at scale {scale!r} "
                f"(expected {path}); record one with "
                f"`python -m repro --scale {scale} golden record`"
            ) from None

    def record(
        self,
        artifact_id: str,
        scale: str,
        config: GpuConfig,
        seeds: Sequence[int],
        samples: Mapping[str, Sequence[Any]],
        meta: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Atomically write the snapshot for one artifact and scale."""
        entry = {
            "artifact": artifact_id,
            "scale": scale,
            "config_hash": config_hash(config),
            "seeds": list(seeds),
            "metrics": {
                name: _summarise(values) for name, values in samples.items()
            },
            "meta": dict(meta or {}),
        }
        path = self.path(artifact_id, scale)
        path.parent.mkdir(parents=True, exist_ok=True)
        encoded = json.dumps(entry, indent=2, sort_keys=True) + "\n"
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(encoded)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------ #
    # Drift checking.
    # ------------------------------------------------------------------ #
    def check(
        self,
        artifact_id: str,
        scale: str,
        config: GpuConfig,
        samples: Mapping[str, Sequence[Any]],
        confidence: float = 0.95,
        rel_slack: float = DEFAULT_REL_SLACK,
    ) -> List[DriftResult]:
        """Compare fresh ``samples`` against the committed snapshot.

        Raises :class:`MissingGoldenError` when no snapshot exists and
        :class:`StaleGoldenError` when the snapshot was recorded under a
        different configuration (so the numbers are incomparable).
        """
        entry = self.load(artifact_id, scale)
        recorded_hash = entry.get("config_hash")
        fresh_hash = config_hash(config)
        if recorded_hash != fresh_hash:
            raise StaleGoldenError(
                f"golden for {artifact_id!r}/{scale!r} was recorded under "
                f"config {recorded_hash} but the current config hashes to "
                f"{fresh_hash}; re-record with `python -m repro --scale "
                f"{scale} golden update`"
            )
        results: List[DriftResult] = []
        golden_metrics = entry.get("metrics", {})
        for name in sorted(set(golden_metrics) | set(samples)):
            if name not in golden_metrics:
                results.append(DriftResult(
                    metric=name, ok=False,
                    observed="present", recorded="absent",
                    detail="metric not in golden; re-record",
                ))
                continue
            if name not in samples:
                results.append(DriftResult(
                    metric=name, ok=False,
                    observed="absent", recorded="present",
                    detail="metric vanished from the workload",
                ))
                continue
            results.append(self._check_metric(
                name, golden_metrics[name], samples[name],
                confidence, rel_slack,
            ))
        return results

    def _check_metric(
        self,
        name: str,
        golden: Mapping[str, Any],
        fresh: Sequence[Any],
        confidence: float,
        rel_slack: float,
    ) -> DriftResult:
        if golden.get("series"):
            return self._check_series(
                name, golden, fresh, confidence, rel_slack
            )
        golden_samples = [float(v) for v in golden["samples"]]
        fresh_samples = [float(v) for v in fresh]
        return self._compare(
            name, golden_samples, fresh_samples, confidence, rel_slack
        )

    def _check_series(
        self, name, golden, fresh, confidence, rel_slack
    ) -> DriftResult:
        golden_series = [list(map(float, s)) for s in golden["samples"]]
        fresh_series = [list(map(float, s)) for s in fresh]
        golden_len = len(golden_series[0]) if golden_series else 0
        fresh_len = len(fresh_series[0]) if fresh_series else 0
        if golden_len != fresh_len:
            return DriftResult(
                metric=name, ok=False,
                observed=f"series of {fresh_len}",
                recorded=f"series of {golden_len}",
                detail="series length changed",
            )
        bad: List[str] = []
        for index in range(golden_len):
            point = self._compare(
                f"{name}[{index}]",
                [s[index] for s in golden_series],
                [s[index] for s in fresh_series],
                confidence, rel_slack,
            )
            if not point.ok:
                bad.append(point.line())
        return DriftResult(
            metric=name,
            ok=not bad,
            observed=f"means {[round(v, 4) for v in pointwise_means(fresh_series)]}",
            recorded=f"means {[round(v, 4) for v in pointwise_means(golden_series)]}",
            detail="; ".join(bad),
        )

    def _compare(
        self, name, golden_samples, fresh_samples, confidence, rel_slack
    ) -> DriftResult:
        golden_mean = mean(golden_samples)
        fresh_mean = mean(fresh_samples)
        margin = welch_margin(golden_samples, fresh_samples, confidence)
        allowance = margin + rel_slack * abs(golden_mean) + 1e-9
        drift = abs(fresh_mean - golden_mean)
        return DriftResult(
            metric=name,
            ok=drift <= allowance,
            observed=f"{fresh_mean:.6g}",
            recorded=f"{golden_mean:.6g}",
            detail=(
                f"drift {drift:.4g} > allowed {allowance:.4g}"
                if drift > allowance else ""
            ),
        )

"""Declarative shape expectations for paper artifacts.

EXPERIMENTS.md makes *shape* claims — "the TPC sibling doubles SM0's
time", "RR leaks linearly, SRR is flat", "bandwidth falls as iterations
rise".  An :class:`Expectation` turns one such claim into an executable
check over a seed sweep:

* band kinds (``ratio_near``, ``slope_between``, ``flat``, ``between``,
  ``below``, ``above``) compare the t-confidence interval of a scalar
  metric's mean against an acceptance band.  The check fails only when
  the whole interval lies outside the band, so the tolerance is a
  statistical statement, not a magic epsilon;
* ``ordering`` asserts that the means of several metrics are strictly
  decreasing, and fails only when even the optimistic gap (means plus
  both half-widths) misses the required margin;
* ``monotonic`` asserts that the pointwise mean of a *series* metric is
  non-decreasing (or non-increasing) within a slack.

Expectations are pure data (frozen dataclasses) so the golden store can
serialise them into reports and the reducer can re-evaluate them on
shrunken configurations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from .stats import (
    bands_overlap,
    mean_interval,
    pointwise_intervals,
    pointwise_means,
)

#: Expectation kinds understood by :meth:`Expectation.evaluate`.
KINDS = ("band", "ordering", "monotonic")


@dataclass(frozen=True)
class ExpectationResult:
    """Outcome of evaluating one expectation over a seed sweep."""

    expectation_id: str
    kind: str
    metric: str
    ok: bool
    observed: str
    expected: str
    detail: str = ""

    def line(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        text = (
            f"{status} {self.expectation_id}: "
            f"{self.metric} {self.observed}, expected {self.expected}"
        )
        if self.detail:
            text += f" ({self.detail})"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {
            "expectation": self.expectation_id,
            "kind": self.kind,
            "metric": self.metric,
            "ok": self.ok,
            "observed": self.observed,
            "expected": self.expected,
            "detail": self.detail,
        }


def _fmt_bound(value: float) -> str:
    if math.isinf(value):
        return "-inf" if value < 0 else "+inf"
    return f"{value:.4g}"


@dataclass(frozen=True)
class Expectation:
    """One executable shape claim over an artifact's metric samples."""

    id: str
    kind: str
    #: Metric name(s): one entry for band/monotonic, >= 2 for ordering.
    metrics: Tuple[str, ...]
    #: Acceptance band for band kinds ([lo, hi]; inf endpoints allowed).
    band: Tuple[float, float] = (-math.inf, math.inf)
    confidence: float = 0.95
    #: Minimum mean gap between consecutive metrics for ``ordering``.
    min_gap: float = 0.0
    #: "increasing" or "decreasing" for ``monotonic``.
    direction: str = "increasing"
    #: Allowed counter-direction step for ``monotonic``.
    slack: float = 0.0
    #: Human sentence of the paper claim (shown in reports and docs).
    claim: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown expectation kind {self.kind!r}")
        if not self.metrics:
            raise ValueError("expectation needs at least one metric")
        if self.kind == "ordering" and len(self.metrics) < 2:
            raise ValueError("ordering needs >= 2 metrics")
        if self.kind != "ordering" and len(self.metrics) != 1:
            raise ValueError(f"{self.kind} takes exactly one metric")
        if self.direction not in ("increasing", "decreasing"):
            raise ValueError(f"bad monotonic direction {self.direction!r}")

    # ------------------------------------------------------------------ #
    # Evaluation.
    # ------------------------------------------------------------------ #
    def evaluate(
        self, samples: Mapping[str, Sequence[Any]]
    ) -> ExpectationResult:
        """Check this expectation against ``{metric: per-seed samples}``."""
        missing = [m for m in self.metrics if m not in samples]
        if missing:
            return self._result(
                ok=False,
                observed="metric missing from samples",
                expected=self.describe(),
                detail=f"missing {missing}",
            )
        if self.kind == "band":
            return self._evaluate_band(samples)
        if self.kind == "ordering":
            return self._evaluate_ordering(samples)
        return self._evaluate_monotonic(samples)

    def _evaluate_band(self, samples) -> ExpectationResult:
        interval = mean_interval(
            [float(v) for v in samples[self.metrics[0]]], self.confidence
        )
        lo, hi = self.band
        ok = bands_overlap(interval.low, interval.high, lo, hi)
        return self._result(
            ok=ok,
            observed=str(interval),
            expected=self.describe(),
        )

    def _evaluate_ordering(self, samples) -> ExpectationResult:
        intervals = [
            mean_interval(
                [float(v) for v in samples[m]], self.confidence
            )
            for m in self.metrics
        ]
        failures: List[str] = []
        for (name_a, a), (name_b, b) in zip(
            zip(self.metrics, intervals), zip(self.metrics[1:], intervals[1:])
        ):
            optimistic_gap = (a.mean - b.mean) + a.half_width + b.half_width
            if optimistic_gap < self.min_gap:
                failures.append(
                    f"{name_a} ({a}) !> {name_b} ({b}) by {self.min_gap:g}"
                )
        observed = " > ".join(
            f"{m}={i.mean:.4g}" for m, i in zip(self.metrics, intervals)
        )
        return self._result(
            ok=not failures,
            observed=observed,
            expected=self.describe(),
            detail="; ".join(failures),
        )

    def _evaluate_monotonic(self, samples) -> ExpectationResult:
        series = [
            [float(v) for v in one_seed]
            for one_seed in samples[self.metrics[0]]
        ]
        means = pointwise_means(series)
        sign = 1.0 if self.direction == "increasing" else -1.0
        failures = [
            f"step {i}: {means[i]:.4g} -> {means[i + 1]:.4g}"
            for i in range(len(means) - 1)
            if sign * (means[i + 1] - means[i]) < -self.slack
        ]
        observed = " -> ".join(f"{m:.4g}" for m in means)
        return self._result(
            ok=not failures,
            observed=observed,
            expected=self.describe(),
            detail="; ".join(failures),
        )

    def _result(self, ok, observed, expected, detail="") -> ExpectationResult:
        return ExpectationResult(
            expectation_id=self.id,
            kind=self.kind,
            metric=",".join(self.metrics),
            ok=ok,
            observed=observed,
            expected=expected,
            detail=detail,
        )

    # ------------------------------------------------------------------ #
    # Description / serialisation.
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        if self.kind == "band":
            lo, hi = self.band
            return f"within [{_fmt_bound(lo)}, {_fmt_bound(hi)}]"
        if self.kind == "ordering":
            gap = f" by > {self.min_gap:g}" if self.min_gap else ""
            return " > ".join(self.metrics) + gap
        return f"{self.direction} (slack {self.slack:g})"

    def to_dict(self) -> Dict[str, Any]:
        lo, hi = self.band
        return {
            "id": self.id,
            "kind": self.kind,
            "metrics": list(self.metrics),
            "band": [
                None if math.isinf(lo) else lo,
                None if math.isinf(hi) else hi,
            ],
            "confidence": self.confidence,
            "min_gap": self.min_gap,
            "direction": self.direction,
            "slack": self.slack,
            "claim": self.claim,
        }


# ---------------------------------------------------------------------- #
# DSL constructors — the vocabulary ISSUE/EXPERIMENTS claims are written
# in.  Each returns a plain Expectation.
# ---------------------------------------------------------------------- #
def ratio_near(
    id: str,
    metric: str,
    target: float,
    rel_tol: float = 0.1,
    confidence: float = 0.95,
    claim: str = "",
) -> Expectation:
    """Mean of ``metric`` within ``target * (1 ± rel_tol)``."""
    lo = target * (1.0 - rel_tol)
    hi = target * (1.0 + rel_tol)
    return Expectation(
        id=id, kind="band", metrics=(metric,),
        band=(min(lo, hi), max(lo, hi)),
        confidence=confidence, claim=claim,
    )


def slope_between(
    id: str,
    metric: str,
    lo: float,
    hi: float,
    confidence: float = 0.95,
    claim: str = "",
) -> Expectation:
    """A per-seed slope metric whose mean lies within ``[lo, hi]``."""
    return Expectation(
        id=id, kind="band", metrics=(metric,), band=(lo, hi),
        confidence=confidence, claim=claim,
    )


def flat(
    id: str,
    metric: str,
    tol: float,
    center: float = 0.0,
    confidence: float = 0.95,
    claim: str = "",
) -> Expectation:
    """Mean of ``metric`` within ``center ± tol`` (a "no leakage" claim)."""
    return Expectation(
        id=id, kind="band", metrics=(metric,),
        band=(center - tol, center + tol),
        confidence=confidence, claim=claim,
    )


def between(
    id: str,
    metric: str,
    lo: float,
    hi: float,
    confidence: float = 0.95,
    claim: str = "",
) -> Expectation:
    """Mean of ``metric`` within the absolute band ``[lo, hi]``."""
    return Expectation(
        id=id, kind="band", metrics=(metric,), band=(lo, hi),
        confidence=confidence, claim=claim,
    )


def below(
    id: str,
    metric: str,
    limit: float,
    confidence: float = 0.95,
    claim: str = "",
) -> Expectation:
    """Mean of ``metric`` at most ``limit``."""
    return between(id, metric, -math.inf, limit, confidence, claim)


def above(
    id: str,
    metric: str,
    limit: float,
    confidence: float = 0.95,
    claim: str = "",
) -> Expectation:
    """Mean of ``metric`` at least ``limit``."""
    return between(id, metric, limit, math.inf, confidence, claim)


def ordering(
    id: str,
    metrics: Sequence[str],
    min_gap: float = 0.0,
    confidence: float = 0.95,
    claim: str = "",
) -> Expectation:
    """Means of ``metrics`` strictly decreasing left to right."""
    return Expectation(
        id=id, kind="ordering", metrics=tuple(metrics), min_gap=min_gap,
        confidence=confidence, claim=claim,
    )


def monotonic(
    id: str,
    metric: str,
    direction: str = "increasing",
    slack: float = 0.0,
    claim: str = "",
) -> Expectation:
    """Pointwise-mean series ``metric`` monotonic in ``direction``."""
    return Expectation(
        id=id, kind="monotonic", metrics=(metric,),
        direction=direction, slack=slack, claim=claim,
    )

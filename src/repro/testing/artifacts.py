"""Registry of paper artifacts and their golden-metric expectations.

Each :class:`Artifact` binds one EXPERIMENTS.md row to

* a metric workload (dotted path into :mod:`repro.testing.workloads`),
* the scales it runs at, with per-scale workload parameters sized so the
  small tier stays CI-fast,
* a seed sweep (per-seed configs differ only in ``GpuConfig.seed``), and
* the :class:`~repro.testing.expectations.Expectation` list encoding the
  paper's shape claims for that artifact.

The acceptance bands were calibrated against the seed state of the
simulator (see EXPERIMENTS.md's measured column); they are deliberately
wider than the observed seed-to-seed spread so they gate *shape*
regressions, not noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

from .expectations import (
    Expectation,
    below,
    between,
    flat,
    monotonic,
    ordering,
    ratio_near,
    slope_between,
)

#: Default seed sweep for every artifact (overridable per artifact).
DEFAULT_SEEDS: Tuple[int, ...] = (11, 12, 13)


@dataclass(frozen=True)
class Artifact:
    """One paper artifact wired into the regression harness."""

    id: str
    title: str
    #: Dotted path of the metric workload.
    fn: str
    #: scale name -> workload keyword parameters at that scale.
    scales: Mapping[str, Mapping[str, Any]]
    expectations: Tuple[Expectation, ...]
    seeds: Tuple[int, ...] = DEFAULT_SEEDS
    #: Config fields pinned for this artifact (applied before any
    #: caller overrides, e.g. a deliberate perturbation under test).
    config_overrides: Mapping[str, Any] = field(default_factory=dict)
    #: Candidate config shrinks the failure reducer may try, in order:
    #: (name, config override dict).  Every entry must still satisfy the
    #: workload's topology needs (e.g. two SMs in one TPC).
    shrink_configs: Tuple[Tuple[str, Mapping[str, Any]], ...] = ()

    def expectation(self, expectation_id: str) -> Expectation:
        for exp in self.expectations:
            if exp.id == expectation_id:
                return exp
        raise KeyError(
            f"artifact {self.id!r} has no expectation {expectation_id!r}"
        )


#: A one-GPC topology that still contains a complete TPC (2 SMs sharing
#: a mux) — the smallest machine on which the TPC-level artifacts can
#: reproduce a failure.
_ONE_GPC = (
    "one-gpc",
    {
        "num_gpcs": 1,
        "tpcs_per_gpc": (2,),
        "num_l2_slices": 4,
        "num_memory_controllers": 2,
    },
)


def _artifact_list() -> List[Artifact]:
    return [
        Artifact(
            id="fig2",
            title="TPC discovery (Figure 2)",
            fn="repro.testing.workloads.fig2_metrics",
            scales={"small": {"ops": 6}},
            shrink_configs=(_ONE_GPC,),
            expectations=(
                ratio_near(
                    "fig2.sibling_2x", "sibling_ratio", 2.0, rel_tol=0.08,
                    claim="the TPC sibling doubles SM0's time",
                ),
                below(
                    "fig2.others_flat", "max_other_ratio", 1.15,
                    claim="all non-sibling SMs stay near 1.0x",
                ),
                between(
                    "fig2.sibling_detected", "sibling_detected", 0.99, 1.01,
                    claim="Algorithm 1 recovers exactly the sibling set",
                ),
            ),
        ),
        Artifact(
            id="fig5a",
            title="TPC channel read/write contention (Figure 5a)",
            fn="repro.testing.workloads.fig5a_metrics",
            # ``large`` is the full Table-1 V100 under the vector engine:
            # the same contention ratios must hold at the paper's scale.
            scales={"small": {"ops": 6}, "large": {"ops": 6}},
            shrink_configs=(_ONE_GPC,),
            expectations=(
                ratio_near(
                    "fig5a.write_2x", "write_ratio", 2.0, rel_tol=0.08,
                    claim="co-located writes double execution time",
                ),
                between(
                    "fig5a.read_near_1x", "read_ratio", 0.95, 1.2,
                    claim="co-located reads barely contend",
                ),
            ),
        ),
        Artifact(
            id="fig5b",
            title="GPC channel degradation vs active TPCs (Figure 5b)",
            fn="repro.testing.workloads.fig5b_metrics",
            scales={"medium": {"ops": 5}},
            expectations=(
                monotonic(
                    "fig5b.read_monotonic", "read_series",
                    direction="increasing", slack=0.02,
                    claim="read degradation grows with active TPCs",
                ),
                between(
                    "fig5b.read_degrades", "read_endpoint", 1.25, 2.2,
                    claim="reads degrade visibly once the reply channel "
                          "oversubscribes",
                ),
                below(
                    "fig5b.write_within_speedup", "write_endpoint", 1.25,
                    claim="the GPC speedup absorbs full write streaming",
                ),
            ),
        ),
        Artifact(
            id="fig7_8",
            title="Mux-sharing leakage slope (Figures 7/8)",
            fn="repro.testing.workloads.fig7_8_metrics",
            scales={
                "small": {
                    "fractions": (0.0, 0.25, 0.5, 0.75, 1.0), "ops": 8,
                },
            },
            config_overrides={"timing_noise": 0},
            shrink_configs=(_ONE_GPC,),
            expectations=(
                slope_between(
                    "fig7_8.sharing_slope", "sharing_slope", 0.8, 1.2,
                    claim="probe time linear in the sibling's traffic",
                ),
                flat(
                    "fig7_8.non_sharing_flat", "non_sharing_slope", 0.1,
                    claim="a non-sharing SM's traffic does not leak",
                ),
                ratio_near(
                    "fig7_8.sharing_endpoint_2x", "sharing_endpoint", 2.0,
                    rel_tol=0.1,
                    claim="full-duty sibling traffic reaches ~2x",
                ),
            ),
        ),
        Artifact(
            id="fig10a",
            title="Single-TPC bandwidth/error vs iterations (Figure 10a)",
            fn="repro.testing.workloads.fig10a_metrics",
            scales={
                "small": {"iterations": (1, 2, 4), "bits_per_channel": 8},
            },
            shrink_configs=(_ONE_GPC,),
            expectations=(
                monotonic(
                    "fig10a.bandwidth_falls", "bandwidth_kbps",
                    direction="decreasing",
                    claim="bandwidth falls as iterations rise",
                ),
                below(
                    "fig10a.error_vanishes", "final_error", 0.05,
                    claim="error is gone by the highest iteration count",
                ),
            ),
        ),
        Artifact(
            id="fig14",
            title="Multi-level staircase (Figure 14)",
            fn="repro.testing.workloads.fig14_metrics",
            scales={"small": {"repeats": 4}},
            shrink_configs=(_ONE_GPC,),
            expectations=(
                monotonic(
                    "fig14.staircase", "level_means",
                    direction="increasing",
                    claim="the four density levels form a latency "
                          "staircase",
                ),
                Expectation(
                    id="fig14.span_positive", kind="band",
                    metrics=("staircase_span",), band=(50.0, float("inf")),
                    claim="levels are separated enough to decode",
                ),
            ),
        ),
        Artifact(
            id="fig15",
            title="Arbitration-policy leakage (Figure 15 / Section 6)",
            fn="repro.testing.workloads.fig15_metrics",
            scales={
                "small": {"fractions": (0.0, 0.5, 1.0), "ops": 8},
            },
            shrink_configs=(_ONE_GPC,),
            expectations=(
                slope_between(
                    "fig15.rr_leaks", "rr_slope", 0.5, 1.3,
                    claim="round-robin leaks linearly",
                ),
                slope_between(
                    "fig15.crr_leaks", "crr_slope", 0.3, 1.3,
                    claim="coarse RR still leaks",
                ),
                flat(
                    "fig15.srr_flat", "srr_slope", 0.05,
                    claim="strict RR removes the channel",
                ),
                ordering(
                    "fig15.srr_removes_channel",
                    ("rr_slope", "srr_slope"), min_gap=0.3,
                    claim="RR leaks decisively more than SRR",
                ),
            ),
        ),
        Artifact(
            id="linkchan",
            title="Inter-GPU link covert channel (NVLink-class fabric)",
            fn="repro.testing.workloads.linkchan_metrics",
            scales={"small": {"iterations": (1, 2), "bits": 8}},
            shrink_configs=(_ONE_GPC,),
            expectations=(
                monotonic(
                    "linkchan.bandwidth_falls", "bandwidth_kbps",
                    direction="decreasing",
                    claim="bandwidth falls as iterations rise",
                ),
                below(
                    "linkchan.error_vanishes", "final_error", 0.05,
                    claim="error is gone by the highest iteration count",
                ),
                Expectation(
                    id="linkchan.bandwidth_positive", kind="band",
                    metrics=("min_bandwidth_kbps",),
                    band=(1.0, float("inf")),
                    claim="the link channel moves bits at every "
                          "iteration count",
                ),
            ),
        ),
        Artifact(
            id="table2",
            title="Measured channel summary (Table 2)",
            fn="repro.testing.workloads.table2_metrics",
            # ``large`` (full V100, vector engine) is the scale Table 2
            # actually reports; only the vector engine makes a full-Volta
            # seed sweep affordable in the harness.
            scales={
                "small": {"bits_per_channel": 6},
                "large": {"bits_per_channel": 6},
            },
            expectations=(
                ordering(
                    "table2.bandwidth_ordering",
                    ("multi_tpc_mbps", "tpc_mbps", "gpc_mbps"),
                    claim="multi-TPC > TPC > GPC bandwidth ordering",
                ),
                below(
                    "table2.tpc_error", "tpc_error", 0.05,
                    claim="the TPC channel is essentially error-free",
                ),
                ordering(
                    "table2.multi_gain", ("multi_tpc_mbps", "tpc_mbps"),
                    min_gap=0.2,
                    claim="parallel TPC channels multiply bandwidth",
                ),
            ),
        ),
    ]


#: Artifact id -> Artifact.
ARTIFACTS: Dict[str, Artifact] = {a.id: a for a in _artifact_list()}


def get_artifact(artifact_id: str) -> Artifact:
    try:
        return ARTIFACTS[artifact_id]
    except KeyError:
        raise KeyError(
            f"unknown artifact {artifact_id!r}; have {sorted(ARTIFACTS)}"
        ) from None


def artifacts_for_scale(scale: str) -> List[Artifact]:
    """Artifacts that define parameters for ``scale``, in registry order."""
    return [a for a in ARTIFACTS.values() if scale in a.scales]


def all_expectation_ids() -> List[str]:
    return [
        exp.id for artifact in ARTIFACTS.values()
        for exp in artifact.expectations
    ]

"""Seed-sweep execution and evaluation of paper artifacts.

``run_artifact`` fans an artifact's seed sweep over
:mod:`repro.runner` (multiprocessing + content-hash result cache, the
same machinery the figure sweeps use), folds the per-seed metric dicts
into ``{metric: [per-seed samples]}``, and ``check_artifact`` evaluates
the artifact's expectations — and, when a committed golden exists, the
statistical drift check — into one :class:`ArtifactRun` verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..config import (
    GpuConfig,
    VOLTA_V100,
    large_config,
    medium_config,
    small_config,
)
from ..runner import ResultCache, SimJob, run_jobs
from .artifacts import Artifact, artifacts_for_scale, get_artifact
from .expectations import ExpectationResult
from .golden import (
    DriftResult,
    GoldenStore,
    MissingGoldenError,
    StaleGoldenError,
)

#: Scales the golden harness understands.  ``large`` is the full Volta
#: under the vectorized engine — bit-identical to ``volta`` by the
#: lockstep oracle, but fast enough to record goldens at Table-1 scale.
SCALE_FACTORIES = {
    "small": small_config,
    "medium": medium_config,
    "volta": lambda: VOLTA_V100,
    "large": large_config,
}


def scale_config(scale: str) -> GpuConfig:
    try:
        return SCALE_FACTORIES[scale]()
    except KeyError:
        raise ValueError(
            f"unknown golden scale {scale!r}; have {sorted(SCALE_FACTORIES)}"
        ) from None


def artifact_config(
    artifact: Artifact,
    scale: str,
    overrides: Optional[Mapping[str, Any]] = None,
) -> GpuConfig:
    """The (unseeded) config an artifact runs on at ``scale``.

    Artifact-pinned fields apply first, then caller ``overrides`` — so a
    deliberate perturbation always wins.
    """
    config = scale_config(scale)
    if artifact.config_overrides:
        config = config.replace(**dict(artifact.config_overrides))
    if overrides:
        config = config.replace(**dict(overrides))
    return config


def run_artifact(
    artifact: Artifact,
    scale: str,
    seeds: Optional[Sequence[int]] = None,
    params: Optional[Mapping[str, Any]] = None,
    overrides: Optional[Mapping[str, Any]] = None,
    cache: Optional[ResultCache] = None,
    workers: Optional[int] = 1,
) -> Dict[str, List[Any]]:
    """Run one artifact's seed sweep; returns ``{metric: samples}``.

    ``params`` replaces the artifact's per-scale workload parameters
    (the reducer uses this to shrink work), ``overrides`` patches config
    fields (perturbations, topology shrinks).
    """
    if scale not in artifact.scales and params is None:
        raise ValueError(
            f"artifact {artifact.id!r} does not define scale {scale!r}; "
            f"have {sorted(artifact.scales)}"
        )
    sweep_seeds = list(seeds if seeds is not None else artifact.seeds)
    if not sweep_seeds:
        raise ValueError("artifact sweep needs at least one seed")
    base = artifact_config(artifact, scale, overrides)
    job_params = dict(
        params if params is not None else artifact.scales[scale]
    )
    jobs = [
        SimJob(fn=artifact.fn, config=base, params=job_params, seed=seed)
        for seed in sweep_seeds
    ]
    rows = run_jobs(jobs, workers=workers, cache=cache)
    samples: Dict[str, List[Any]] = {}
    for row in rows:
        if not isinstance(row, dict):
            raise TypeError(
                f"artifact workload {artifact.fn} returned {type(row)!r}, "
                "expected a metric dict"
            )
        for name, value in row.items():
            if name in ("telemetry", "metrics"):
                continue
            samples.setdefault(name, []).append(value)
    return samples


@dataclass
class ArtifactRun:
    """Evaluated seed sweep of one artifact at one scale."""

    artifact: Artifact
    scale: str
    seeds: List[int]
    samples: Dict[str, List[Any]]
    expectation_results: List[ExpectationResult]
    #: None when no golden snapshot exists (expectations-only run).
    drift_results: Optional[List[DriftResult]] = None
    #: Set when the snapshot exists but is unusable (config mismatch).
    golden_error: Optional[str] = None
    overrides: Dict[str, Any] = field(default_factory=dict)

    @property
    def expectations_passed(self) -> bool:
        return all(r.ok for r in self.expectation_results)

    @property
    def drift_passed(self) -> bool:
        return self.drift_results is None or all(
            r.ok for r in self.drift_results
        )

    @property
    def passed(self) -> bool:
        return (
            self.expectations_passed
            and self.drift_passed
            and self.golden_error is None
        )

    def failed_expectations(self) -> List[ExpectationResult]:
        return [r for r in self.expectation_results if not r.ok]

    def report(self) -> str:
        lines = [
            f"artifact {self.artifact.id} [{self.scale}] "
            f"seeds={self.seeds}"
            + (f" overrides={self.overrides}" if self.overrides else "")
        ]
        lines += ["  " + r.line() for r in self.expectation_results]
        if self.golden_error:
            lines.append(f"  GOLDEN {self.golden_error}")
        elif self.drift_results is not None:
            lines += ["  " + r.line() for r in self.drift_results]
        else:
            lines.append("  GOLDEN none recorded (expectations only)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "artifact": self.artifact.id,
            "scale": self.scale,
            "seeds": self.seeds,
            "passed": self.passed,
            "overrides": self.overrides,
            "expectations": [
                r.to_dict() for r in self.expectation_results
            ],
            "drift": (
                None if self.drift_results is None else [
                    {
                        "metric": r.metric,
                        "ok": r.ok,
                        "observed": r.observed,
                        "recorded": r.recorded,
                        "detail": r.detail,
                    }
                    for r in self.drift_results
                ]
            ),
            "golden_error": self.golden_error,
        }


def check_artifact(
    artifact_id: str,
    scale: str,
    seeds: Optional[Sequence[int]] = None,
    params: Optional[Mapping[str, Any]] = None,
    overrides: Optional[Mapping[str, Any]] = None,
    cache: Optional[ResultCache] = None,
    workers: Optional[int] = 1,
    store: Optional[GoldenStore] = None,
    golden: bool = True,
) -> ArtifactRun:
    """Run, evaluate, and (optionally) drift-check one artifact."""
    artifact = get_artifact(artifact_id)
    sweep_seeds = list(seeds if seeds is not None else artifact.seeds)
    samples = run_artifact(
        artifact, scale, seeds=sweep_seeds, params=params,
        overrides=overrides, cache=cache, workers=workers,
    )
    run = ArtifactRun(
        artifact=artifact,
        scale=scale,
        seeds=sweep_seeds,
        samples=samples,
        expectation_results=[
            exp.evaluate(samples) for exp in artifact.expectations
        ],
        overrides=dict(overrides or {}),
    )
    if golden:
        store = store or GoldenStore()
        config = artifact_config(artifact, scale, overrides)
        try:
            run.drift_results = store.check(
                artifact_id, scale, config, samples
            )
        except MissingGoldenError:
            run.drift_results = None
        except StaleGoldenError as exc:
            run.golden_error = str(exc)
    return run


def record_artifact(
    artifact_id: str,
    scale: str,
    cache: Optional[ResultCache] = None,
    workers: Optional[int] = 1,
    store: Optional[GoldenStore] = None,
    meta: Optional[Mapping[str, Any]] = None,
) -> str:
    """Run one artifact's sweep and write its golden snapshot."""
    artifact = get_artifact(artifact_id)
    samples = run_artifact(artifact, scale, cache=cache, workers=workers)
    store = store or GoldenStore()
    path = store.record(
        artifact_id, scale,
        artifact_config(artifact, scale),
        artifact.seeds, samples, meta=meta,
    )
    return str(path)


def check_scale(
    scale: str,
    artifact_ids: Optional[Sequence[str]] = None,
    cache: Optional[ResultCache] = None,
    workers: Optional[int] = 1,
    store: Optional[GoldenStore] = None,
) -> List[ArtifactRun]:
    """Check every artifact registered at ``scale`` (or a subset)."""
    chosen = (
        [get_artifact(a) for a in artifact_ids]
        if artifact_ids else artifacts_for_scale(scale)
    )
    return [
        check_artifact(
            artifact.id, scale, cache=cache, workers=workers, store=store
        )
        for artifact in chosen
    ]

"""Failure reduction: shrink a regressed metric to its smallest repro.

When ``golden check`` flags an expectation, the interesting question is
*where does it still fail*: a miss that reproduces on a one-GPC, two-SM
machine with 4 ops is a mux/arbiter bug; one that only shows at medium
scale with full parameters is a capacity or reply-path interaction.

:func:`reduce_failure` performs a greedy delta-debugging pass over three
shrink axes, keeping each shrink only if the target expectation *still
fails* on the shrunken setup:

1. the seed sweep (fewer seeds → fewer runs),
2. the workload's numeric parameters (ops, bits, repeats — the cycle
   budget — halved toward 1; sequence parameters truncated toward their
   endpoints),
3. the GPU topology, via the artifact's declared ``shrink_configs``
   ladder (e.g. a one-GPC machine for TPC-level artifacts).

The result names the minimal failing configuration and prints the exact
``python -m repro golden check`` invocation that replays it.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..runner import ResultCache
from .artifacts import Artifact, get_artifact
from .harness import artifact_config, run_artifact

#: Hard cap on reduction attempts; each attempt is one seed sweep.
MAX_ATTEMPTS = 32


@dataclass
class ReductionStep:
    """One attempted shrink and whether the failure survived it."""

    description: str
    still_fails: bool


@dataclass
class Reduction:
    """Minimal failing reproduction of one expectation miss."""

    artifact_id: str
    expectation_id: str
    scale: str
    seeds: List[int]
    params: Dict[str, Any]
    overrides: Dict[str, Any]
    config_label: str
    steps: List[ReductionStep] = field(default_factory=list)
    attempts: int = 0

    def config_summary(self) -> str:
        config = artifact_config(
            get_artifact(self.artifact_id), self.scale, self.overrides
        )
        return (
            f"{config.num_gpcs} GPC(s) x {config.tpcs_per_gpc} TPCs "
            f"= {config.num_sms} SMs ({self.config_label})"
        )

    def command(self) -> str:
        """The CLI invocation replaying the minimal failing check."""
        parts = [
            f"python -m repro --scale {self.scale} golden check",
            f"--artifact {self.artifact_id}",
            "--seeds " + " ".join(str(s) for s in self.seeds),
        ]
        parts += [
            f"--param {_format_pair(key, value)}"
            for key, value in sorted(self.params.items())
        ]
        parts += [
            f"--override {_format_pair(key, value)}"
            for key, value in sorted(self.overrides.items())
        ]
        return " ".join(parts)

    def report(self) -> str:
        lines = [
            f"reduced {self.expectation_id} "
            f"({self.attempts} sweep(s) tried):",
            f"  minimal config : {self.config_summary()}",
            f"  minimal params : {self.params}",
            f"  seeds          : {self.seeds}",
            f"  replay         : {self.command()}",
        ]
        return "\n".join(lines)


def _format_value(value: Any) -> str:
    if isinstance(value, (list, tuple)):
        inner = ",".join(str(v) for v in value)
        if len(value) == 1:
            inner += ","  # single-element tuples must parse as tuples
        return f"({inner})"
    return str(value)


def _format_pair(key: str, value: Any) -> str:
    """A ``key=value`` CLI token, shell-quoted when needed."""
    return shlex.quote(f"{key}={_format_value(value)}")


def _shrunken_params(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Candidate one-step parameter shrinks, strongest first."""
    candidates: List[Dict[str, Any]] = []
    for key, value in params.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, int) and value > 1:
            shrunk = dict(params)
            shrunk[key] = max(1, value // 2)
            candidates.append(shrunk)
        elif isinstance(value, (list, tuple)) and len(value) > 2:
            shrunk = dict(params)
            shrunk[key] = (value[0], value[-1])
            candidates.append(shrunk)
    return candidates


def reduce_failure(
    artifact_id: str,
    expectation_id: str,
    scale: str,
    seeds: Optional[Sequence[int]] = None,
    params: Optional[Mapping[str, Any]] = None,
    overrides: Optional[Mapping[str, Any]] = None,
    cache: Optional[ResultCache] = None,
    max_attempts: int = MAX_ATTEMPTS,
) -> Reduction:
    """Greedily shrink a failing expectation to its minimal repro.

    ``overrides`` carries the perturbation (or config drift) that made
    the expectation fail; it is preserved verbatim in every candidate so
    the reducer shrinks the *machine*, not the bug.  Raises ValueError
    if the expectation does not fail on the starting setup (nothing to
    reduce).
    """
    artifact = get_artifact(artifact_id)
    expectation = artifact.expectation(expectation_id)
    state = {"attempts": 0}

    def fails(
        candidate_seeds: Sequence[int],
        candidate_params: Mapping[str, Any],
        candidate_overrides: Mapping[str, Any],
    ) -> bool:
        state["attempts"] += 1
        samples = run_artifact(
            artifact, scale, seeds=candidate_seeds,
            params=candidate_params, overrides=candidate_overrides,
            cache=cache, workers=1,
        )
        return not expectation.evaluate(samples).ok

    current_seeds = list(seeds if seeds is not None else artifact.seeds)
    current_params = dict(
        params if params is not None else artifact.scales[scale]
    )
    base_overrides = dict(overrides or {})
    current_overrides = dict(base_overrides)
    config_label = "scale default"

    if not fails(current_seeds, current_params, current_overrides):
        raise ValueError(
            f"{expectation_id} does not fail at scale {scale!r} with "
            f"{current_params} and overrides {base_overrides}; "
            "nothing to reduce"
        )

    steps: List[ReductionStep] = []

    def attempt(description, seeds_c, params_c, overrides_c) -> bool:
        if state["attempts"] >= max_attempts:
            return False
        still = fails(seeds_c, params_c, overrides_c)
        steps.append(ReductionStep(description, still))
        return still

    # Axis 1: topology ladder (most informative shrink first).
    for label, shrink in artifact.shrink_configs:
        candidate = dict(shrink)
        candidate.update(base_overrides)  # the perturbation survives
        if attempt(f"config -> {label}", current_seeds, current_params,
                   candidate):
            current_overrides = candidate
            config_label = label
            break

    # Axis 2: seed sweep.
    while len(current_seeds) > 1:
        candidate_seeds = current_seeds[:1]
        if attempt(
            f"seeds -> {candidate_seeds}", candidate_seeds,
            current_params, current_overrides,
        ):
            current_seeds = candidate_seeds
        else:
            break

    # Axis 3: numeric workload parameters, iterated to a fixpoint.
    progress = True
    while progress and state["attempts"] < max_attempts:
        progress = False
        for candidate_params in _shrunken_params(current_params):
            changed = {
                k: v for k, v in candidate_params.items()
                if current_params.get(k) != v
            }
            if attempt(
                f"params -> {changed}", current_seeds,
                candidate_params, current_overrides,
            ):
                current_params = candidate_params
                progress = True
                break

    return Reduction(
        artifact_id=artifact_id,
        expectation_id=expectation_id,
        scale=scale,
        seeds=current_seeds,
        params=current_params,
        overrides=current_overrides,
        config_label=config_label,
        steps=steps,
        attempts=state["attempts"],
    )

"""Golden-metric regression harness: statistical acceptance testing.

Turns EXPERIMENTS.md into executable acceptance tests:

* :mod:`repro.testing.expectations` — a declarative DSL
  (``ratio_near``, ``slope_between``, ``ordering``, ``flat``,
  ``monotonic``, …) for the paper's shape claims, each evaluated over a
  seed sweep with t-confidence bands;
* :mod:`repro.testing.artifacts` — the registry binding every paper
  artifact to a metric workload, scales, seeds, and expectations;
* :mod:`repro.testing.golden` — committed per-artifact metric
  snapshots under ``tests/golden/`` with statistical drift checking;
* :mod:`repro.testing.harness` — seed-sweep execution through
  :mod:`repro.runner` (parallel fan-out + result cache);
* :mod:`repro.testing.reducer` — shrinks a regressed metric to the
  smallest (SM count, cycle budget) setup that still reproduces it.

CLI: ``python -m repro [--scale small] golden {record,check,update,list}``.
Pytest: mark tests ``@paper_artifact("fig10a", scale="small")`` (see
``tests/plugin.py``) and assert on the injected ``artifact_run``.
"""

from .artifacts import (
    ARTIFACTS,
    Artifact,
    artifacts_for_scale,
    all_expectation_ids,
    get_artifact,
)
from .expectations import (
    Expectation,
    ExpectationResult,
    above,
    below,
    between,
    flat,
    monotonic,
    ordering,
    ratio_near,
    slope_between,
)
from .golden import (
    DriftResult,
    GoldenStore,
    MissingGoldenError,
    StaleGoldenError,
    config_hash,
)
from .harness import (
    ArtifactRun,
    check_artifact,
    check_scale,
    record_artifact,
    run_artifact,
    scale_config,
)
from .reducer import Reduction, reduce_failure
from .stats import ConfidenceInterval, mean_interval, t_critical

__all__ = [
    "ARTIFACTS",
    "Artifact",
    "ArtifactRun",
    "ConfidenceInterval",
    "DriftResult",
    "Expectation",
    "ExpectationResult",
    "GoldenStore",
    "MissingGoldenError",
    "Reduction",
    "StaleGoldenError",
    "above",
    "all_expectation_ids",
    "artifacts_for_scale",
    "below",
    "between",
    "check_artifact",
    "check_scale",
    "config_hash",
    "flat",
    "get_artifact",
    "mean_interval",
    "monotonic",
    "ordering",
    "ratio_near",
    "record_artifact",
    "reduce_failure",
    "run_artifact",
    "scale_config",
    "slope_between",
    "t_critical",
]

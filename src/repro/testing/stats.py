"""Small-sample statistics for the golden-metric regression harness.

Every acceptance check in :mod:`repro.testing` is evaluated over a *seed
sweep* — the same artifact measured under several master seeds — so a
tolerance is a statistical statement ("the confidence interval of the
mean overlaps the acceptance band") rather than a magic epsilon.  The
helpers here are deliberately dependency-free: a Student-t critical-value
table replaces ``scipy.stats`` because seed sweeps are tiny (n = 2..10)
and the table is exact for the degrees of freedom that matter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: Two-sided Student-t critical values, indexed [confidence][df - 1] for
#: df 1..30; the four trailing entries cover df 40, 60, 120 and infinity.
_T_TABLE = {
    0.90: (
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
        1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734,
        1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703,
        1.701, 1.699, 1.697, 1.684, 1.671, 1.658, 1.645,
    ),
    0.95: (
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
        2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
        2.048, 2.045, 2.042, 2.021, 2.000, 1.980, 1.960,
    ),
    0.99: (
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
        3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878,
        2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771,
        2.763, 2.756, 2.750, 2.704, 2.660, 2.617, 2.576,
    ),
}

#: df values of the trailing entries of every `_T_TABLE` row.
_T_TAIL_DF = (40, 60, 120)


def t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value for ``df`` degrees of freedom.

    Unsupported confidence levels fall back to the next *stricter*
    tabulated level (never a looser one), and df beyond the table uses
    the nearest smaller tabulated df — both conservative choices.
    """
    if df < 1:
        raise ValueError("t_critical needs df >= 1")
    level = min(
        (c for c in _T_TABLE if c >= confidence), default=max(_T_TABLE)
    )
    row = _T_TABLE[level]
    if df <= 30:
        return row[df - 1]
    for position, tail_df in enumerate(_T_TAIL_DF):
        if df <= tail_df:
            return row[30 + position]
    return row[-1]


def mean(samples: Sequence[float]) -> float:
    if not samples:
        raise ValueError("mean of no samples")
    return sum(samples) / len(samples)


def sample_std(samples: Sequence[float]) -> float:
    """Unbiased (n-1) standard deviation; 0.0 for fewer than 2 samples."""
    n = len(samples)
    if n < 2:
        return 0.0
    m = mean(samples)
    return math.sqrt(sum((x - m) ** 2 for x in samples) / (n - 1))


@dataclass(frozen=True)
class ConfidenceInterval:
    """Mean ± half-width of a t-interval over one metric's seed sweep."""

    mean: float
    half_width: float
    n: int
    confidence: float

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.3g} (n={self.n})"


def mean_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """t-interval of the mean; a single sample gets a zero half-width."""
    n = len(samples)
    m = mean(samples)
    if n < 2:
        return ConfidenceInterval(m, 0.0, n, confidence)
    half = t_critical(n - 1, confidence) * sample_std(samples) / math.sqrt(n)
    return ConfidenceInterval(m, half, n, confidence)


def welch_margin(
    a: Sequence[float], b: Sequence[float], confidence: float = 0.95
) -> float:
    """Two-sample margin: how far apart may the means of ``a`` and ``b``
    drift before the difference is statistically significant.

    Uses the Welch standard error with a conservative ``min(n) - 1``
    degrees of freedom.  Degenerate sweeps (single samples, identical
    values) get a zero margin — any drift is then real drift.
    """
    na, nb = len(a), len(b)
    if not na or not nb:
        raise ValueError("welch_margin needs samples on both sides")
    if na < 2 and nb < 2:
        return 0.0
    var_a = sample_std(a) ** 2
    var_b = sample_std(b) ** 2
    se = math.sqrt(var_a / na + var_b / nb)
    df = max(1, min(na, nb) - 1)
    return t_critical(df, confidence) * se


def least_squares_slope(
    xs: Sequence[float], ys: Sequence[float]
) -> float:
    """Ordinary least-squares slope of ``ys`` against ``xs``."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("slope needs >= 2 paired points")
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    num = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    den = sum((x - mx) ** 2 for x in xs)
    return num / den if den else 0.0


def pointwise_means(series_samples: Sequence[Sequence[float]]) -> List[float]:
    """Per-position means over a sweep of equal-length series samples."""
    if not series_samples:
        raise ValueError("pointwise_means of no samples")
    length = len(series_samples[0])
    for series in series_samples:
        if len(series) != length:
            raise ValueError(
                "series samples have mismatched lengths "
                f"({[len(s) for s in series_samples]})"
            )
    return [
        mean([series[i] for series in series_samples])
        for i in range(length)
    ]


def pointwise_intervals(
    series_samples: Sequence[Sequence[float]], confidence: float = 0.95
) -> List[ConfidenceInterval]:
    """Per-position t-intervals over a sweep of series samples."""
    length = len(pointwise_means(series_samples))
    return [
        mean_interval([series[i] for series in series_samples], confidence)
        for i in range(length)
    ]


def bands_overlap(
    lo_a: float, hi_a: float, lo_b: float, hi_b: float
) -> bool:
    """True when the closed intervals [lo_a, hi_a] and [lo_b, hi_b]
    intersect (``-inf``/``inf`` endpoints encode one-sided bands)."""
    return lo_a <= hi_b and lo_b <= hi_a

"""Metric workloads for the golden-metric regression harness.

One module-level function per paper artifact: each takes a fully-seeded
:class:`~repro.config.GpuConfig` plus scale parameters, runs the
underlying experiment, and returns a flat JSON-serialisable dict of
*metrics* — scalars (ratios, slopes, error rates) or equal-length series
(per-iteration bandwidths, staircase levels).  They are referenced by
dotted path from :mod:`repro.testing.artifacts` so seed sweeps fan out
through :mod:`repro.runner` with content-hash caching, exactly like the
figure sweeps themselves.

All per-seed variation flows from ``config.seed``; a workload must not
read any other source of randomness.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

from ..config import GpuConfig


def fig2_metrics(config: GpuConfig, ops: int = 6) -> Dict[str, Any]:
    """Figure 2: TPC-pair discovery contrast.

    ``sibling_ratio`` is SM0's normalized time co-running with its TPC
    sibling (SM1 by construction); ``max_other_ratio`` the worst
    non-sibling; ``sibling_detected`` whether Algorithm 1's threshold
    recovers exactly the sibling set.
    """
    from ..reveng import sweep_tpc_pairing

    sweep = sweep_tpc_pairing(config, ops=ops)
    normalized = sweep.normalized()
    siblings = set(config.tpc_sms(config.sm_to_tpc(0))) - {0}
    others = [
        ratio for sm, ratio in normalized.items() if sm not in siblings
    ]
    detected = set(sweep.partner_of_sm0()) == siblings
    return {
        "sibling_ratio": min(normalized[sm] for sm in siblings),
        "max_other_ratio": max(others),
        "sibling_detected": 1.0 if detected else 0.0,
    }


def fig5a_metrics(config: GpuConfig, ops: int = 6) -> Dict[str, Any]:
    """Figure 5a: TPC-channel read/write contention ratios (2 SMs)."""
    from ..reveng import rw_contention_profile

    profile = rw_contention_profile(config, ops=ops, max_tpcs=1)
    return {
        "write_ratio": profile.tpc["write"],
        "read_ratio": profile.tpc["read"],
    }


def fig5b_metrics(config: GpuConfig, ops: int = 5) -> Dict[str, Any]:
    """Figure 5b: GPC-channel degradation vs number of active TPCs."""
    from ..reveng import rw_contention_profile

    profile = rw_contention_profile(config, ops=ops)
    return {
        "read_series": profile.gpc["read"],
        "read_endpoint": profile.gpc["read"][-1],
        "write_endpoint": profile.gpc["write"][-1],
    }


def fig7_8_metrics(
    config: GpuConfig,
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    ops: int = 8,
) -> Dict[str, Any]:
    """Figures 7/8: mux-sharing leakage slope (and the flat control).

    The sweep labels its series by concrete SM ids, which vary with the
    scale; positionally the first series is always the TPC-sharing
    co-runner and the second the non-sharing control.
    """
    from ..reveng import mux_sharing_sweep

    sweep = mux_sharing_sweep(config, fractions=fractions, ops=ops)
    sharing_label, control_label = list(sweep.series)
    return {
        "sharing_slope": sweep.slope(sharing_label),
        "non_sharing_slope": sweep.slope(control_label),
        "sharing_endpoint": sweep.series[sharing_label][-1],
    }


def fig10a_metrics(
    config: GpuConfig,
    iterations: Sequence[int] = (1, 2, 4),
    bits_per_channel: int = 8,
) -> Dict[str, Any]:
    """Figure 10a: single-TPC channel bandwidth/error vs iterations."""
    from ..analysis.figures import fig10_panel

    series = fig10_panel(
        config,
        "tpc",
        iterations=tuple(iterations),
        bits_per_channel=bits_per_channel,
        seed=1000 + config.seed,
    )
    return {
        "bandwidth_kbps": [p.bandwidth_kbps for p in series.points],
        "error_rate": [p.error_rate for p in series.points],
        "final_error": series.points[-1].error_rate,
    }


def fig14_metrics(config: GpuConfig, repeats: int = 4) -> Dict[str, Any]:
    """Figure 14: per-symbol latency means of the 4-level staircase."""
    from ..analysis.figures import fig14_multilevel_trace

    pattern, trace = fig14_multilevel_trace(config, repeats=repeats)
    by_symbol: Dict[int, list] = {}
    for symbol, value in zip(pattern, trace):
        by_symbol.setdefault(symbol, []).append(value)
    means = [
        sum(by_symbol[s]) / len(by_symbol[s]) for s in sorted(by_symbol)
    ]
    return {
        "level_means": means,
        "staircase_span": means[-1] - means[0],
    }


def fig15_metrics(
    config: GpuConfig,
    fractions: Sequence[float] = (0.0, 0.5, 1.0),
    ops: int = 8,
) -> Dict[str, Any]:
    """Figure 15: leakage slope per arbitration policy.

    Note the sweep pins each policy itself (``config.replace(arbitration=
    policy)``), so this artifact is insensitive to the base config's
    arbitration field — the mux-leakage artifact (fig7_8) is the one a
    perturbed arbiter policy breaks.
    """
    from ..defense import arbitration_leakage_sweep

    sweep = arbitration_leakage_sweep(
        config.replace(timing_noise=0), fractions=fractions, ops=ops
    )
    return {
        "rr_slope": sweep.slope("rr"),
        "crr_slope": sweep.slope("crr"),
        "srr_slope": sweep.slope("srr"),
    }


def linkchan_metrics(
    config: GpuConfig,
    iterations: Sequence[int] = (1, 2),
    bits: int = 8,
) -> Dict[str, Any]:
    """NVLink-class link channel: bandwidth/error vs iteration count.

    Runs the 2-device ring :class:`~repro.channel.link_channel.
    LinkCovertChannel` sweep the ``linkchan`` CLI command exposes, at
    golden-harness size.  ``min_bandwidth_kbps`` pins the acceptance
    floor (the channel must actually move bits) and ``final_error`` the
    highest-iteration error rate.
    """
    from ..runner.workloads import link_channel_point

    bandwidth: list = []
    error: list = []
    for count in iterations:
        row = link_channel_point(
            config,
            iteration_count=count,
            bits=bits,
            seed=3000 + config.seed,
        )
        bandwidth.append(row["bandwidth_kbps"])
        error.append(row["error_rate"])
    return {
        "bandwidth_kbps": bandwidth,
        "error_rate": error,
        "final_error": error[-1],
        "min_bandwidth_kbps": min(bandwidth),
    }


def table2_metrics(
    config: GpuConfig, bits_per_channel: int = 6
) -> Dict[str, Any]:
    """Table 2: bandwidth/error summary of all four covert channels."""
    from ..runner.workloads import table2_point

    metrics: Dict[str, Any] = {}
    for kind, prefix in (
        ("tpc", "tpc"),
        ("multi-tpc", "multi_tpc"),
        ("gpc", "gpc"),
        ("multi-gpc", "multi_gpc"),
    ):
        row = table2_point(
            config,
            kind,
            bits_per_channel=bits_per_channel,
            seed=2000 + config.seed,
        )
        metrics[f"{prefix}_mbps"] = row["bandwidth_mbps"]
        metrics[f"{prefix}_error"] = row["error_rate"]
    return metrics

"""Hierarchical on-chip network: packets, buffers, arbiters, muxes, crossbar."""

from .packet import Packet, READ, WRITE
from .buffer import PacketQueue
from .arbiter import (
    AgeBased,
    ArbitrationPolicy,
    CoarseRoundRobin,
    FixedPriority,
    RandomArbiter,
    RoundRobin,
    StrictRoundRobin,
    make_policy,
)
from .mux import Mux
from .crossbar import Crossbar

__all__ = [
    "Packet",
    "READ",
    "WRITE",
    "PacketQueue",
    "ArbitrationPolicy",
    "RoundRobin",
    "CoarseRoundRobin",
    "StrictRoundRobin",
    "AgeBased",
    "FixedPriority",
    "RandomArbiter",
    "make_policy",
    "Mux",
    "Crossbar",
]

"""Struct-of-arrays state mirrors for the vector engine.

The scalar NoC components keep their state in Python attributes; at the
Table-1 scale (200+ queues) even *reading* that state — "which of this
bank's 40 muxes have a nonempty input?" — costs a Python attribute walk
per queue.  :class:`SoaMirror` keeps the queue occupancy/credit
accounting mirrored in preallocated numpy arrays, write-through from
:class:`~repro.noc.buffer.PacketQueue` mutations, with a
component↔array-index registry so batch kernels can gather the state of
an entire mux tree in one vectorised operation.

:class:`MuxBank` is the batch kernel over one tier of the mux tree (all
TPC muxes, all GPC muxes, the per-GPC reply muxes): a single occupancy
gather over the mirror partitions the bank's active members into
"has work" (scalar-ticked, preserving exact arbitration semantics) and
"drained" (parked without a tick — their tick is a no-op by the queue
emptiness invariant, so skipping it is cycle-exact).

The scalar components remain authoritative: the mirror is an index, not
a second implementation, which is what keeps the vector strategy
bit-identical to ``naive``/``active`` under the lockstep oracle.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..sim.engine import FOREVER
from .buffer import PacketQueue
from .mux import Mux

#: Active-member count below which a bank ticks its members scalar-style
#: (numpy gathers only pay off once several members are active at once).
BANK_BATCH_THRESHOLD = 4


class SoaMirror:
    """Preallocated numpy mirrors of every registered queue's accounting.

    Arrays are index-parallel: ``q_len[i]`` / ``q_used[i]`` /
    ``q_reserved[i]`` / ``q_capacity[i]`` mirror the queue registered at
    index ``i``.  Queues write through on every mutation (commit,
    reserve, pop, clear), so a gather over the arrays always observes
    the same occupancy the scalar attributes hold.
    """

    def __init__(self, queues: List[PacketQueue]) -> None:
        self.queues = list(queues)
        n = len(self.queues)
        self.q_len = np.zeros(n, dtype=np.int32)
        self.q_used = np.zeros(n, dtype=np.int32)
        self.q_reserved = np.zeros(n, dtype=np.int32)
        self.q_capacity = np.zeros(n, dtype=np.int32)
        for index, queue in enumerate(self.queues):
            if queue._soa is not None:
                raise ValueError(f"{queue.name}: already mirrored")
            queue._soa = self
            queue._soa_idx = index
            self.q_len[index] = len(queue)
            self.q_used[index] = queue.used_flits
            self.q_reserved[index] = queue._reserved_flits
            self.q_capacity[index] = queue.capacity_flits

    def index_of(self, queue: PacketQueue) -> int:
        """Array index of ``queue`` (raises if it is not mirrored)."""
        if queue._soa is not self:
            raise KeyError(f"{queue.name}: not registered with this mirror")
        return queue._soa_idx

    def free_flits(self, indices) -> np.ndarray:
        """Vectorised ``free_flits`` for the queues at ``indices``."""
        return (
            self.q_capacity[indices]
            - self.q_used[indices]
            - self.q_reserved[indices]
        )


class MuxBank:
    """One tier of the mux tree, ticked as a single batched operation.

    Members must be same-arity muxes registered contiguously with the
    engine (the device registers each tier as one block).  On a batch
    tick, one gather over the mirror's ``q_len`` array classifies every
    active member; members with work are ticked scalar (their
    arbitration, reserve/commit and policy state advance exactly as
    under the scalar strategies) and drained members are parked
    reactively without a tick.
    """

    def __init__(self, name: str, mirror: SoaMirror, members: List[Mux]) -> None:
        if not members:
            raise ValueError(f"{name}: empty bank")
        arity = len(members[0].inputs)
        if any(len(m.inputs) != arity for m in members):
            raise ValueError(f"{name}: mixed-arity members")
        self.name = name
        self.mirror = mirror
        self.members = list(members)
        self.arity = arity
        #: Set by ``VectorEngine.register_bank`` (first member's index).
        self.lo = 0
        #: (num_members, arity) gather map into the mirror arrays.
        self.input_idx = np.array(
            [[mirror.index_of(q) for q in m.inputs] for m in members],
            dtype=np.intp,
        )

    def tick_batch(self, engine, members: List[int], cycle: int) -> int:
        """Tick the active ``members`` (absolute engine indices).

        Returns the number of component ticks actually executed.  The
        engine has already marked the scan as past this bank; parking is
        applied here via :meth:`VectorEngine.park`.
        """
        lo = self.lo
        muxes = self.members
        ticked = 0
        if len(members) >= BANK_BATCH_THRESHOLD:
            # One occupancy gather decides the whole bank: members whose
            # every input queue is empty have no-op ticks by contract
            # and park reactively without being ticked.
            pos = np.asarray(members, dtype=np.intp) - lo
            has_work = (self.mirror.q_len[self.input_idx[pos]] > 0).any(axis=1)
            for k, index in enumerate(members):
                if not has_work[k]:
                    engine.park(index, FOREVER)
                    continue
                mux = muxes[index - lo]
                mux.tick(cycle)
                ticked += 1
                until = mux.idle_until(cycle)
                if until is not None and until > cycle + 1:
                    engine.park(index, until)
            return ticked
        for index in members:
            mux = muxes[index - lo]
            mux.tick(cycle)
            ticked += 1
            until = mux.idle_until(cycle)
            if until is not None and until > cycle + 1:
                engine.park(index, until)
        return ticked

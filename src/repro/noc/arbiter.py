"""Mux arbitration policies (Section 2.3 and Section 6 of the paper).

The covert channel exists *because* the TPC/GPC muxes use locally-fair
round-robin arbitration: an idle sender leaves its bandwidth to the
receiver, so the receiver's service rate reveals the sender's activity.
Section 6 evaluates alternatives:

* **RR** — baseline locally-fair round-robin (leaky).
* **CRR** — coarse-grain round-robin: the grant is held until the current
  warp's group of packets has drained.  Reduces arbitration activity but
  does not change bandwidth sharing, so the channel survives (Fig 15).
* **SRR** — strict round-robin: pure time-division multiplexing.  Every
  input owns fixed cycles whether or not it has traffic, so the receiver's
  service rate is constant and the channel is eliminated (Fig 15).
* **AGE** — globally-fair age-based arbitration; contending packets have
  similar ages, so this does *not* mitigate the channel (Section 6).
* **FIXED / RANDOM** — reference policies used in unit tests.

A policy sees the candidate input ports each cycle and picks one flit's
worth of grant at a time; the mux loops over its per-cycle flit budget.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .packet import Packet


class ArbitrationPolicy:
    """Interface: pick which input port sends the next flit."""

    name = "abstract"

    #: True when the policy's per-flit behaviour is *invariant* across
    #: the silent middle of a sole-contender packet: with exactly one
    #: nonempty input, every intermediate ``choose``/``note_flit`` is
    #: deterministic and idempotent, so the vector engine may transfer
    #: the packet's remaining flits as one batched operation and park
    #: until the completion cycle.  False for policies that consume
    #: per-flit state regardless of contention (RANDOM draws its rng per
    #: grant; SRR's slot ownership gates which cycles move flits at all).
    flit_invariant = False

    def __init__(self, num_inputs: int) -> None:
        self.num_inputs = num_inputs

    def allowed_inputs(self, cycle: int) -> Optional[Sequence[int]]:
        """Hard restriction for this cycle, or None for 'any input'.

        Strict round-robin uses this to enforce slot ownership.
        """
        return None

    def choose(
        self, candidates: List[int], heads: List[Optional[Packet]], cycle: int
    ) -> int:
        """Pick one of ``candidates`` (non-empty) to send a flit."""
        raise NotImplementedError

    def note_flit(self, port: int, packet: Packet, last: bool) -> None:
        """Called after each granted flit (``last`` on packet completion)."""

    def reset(self) -> None:
        """Return to initial state."""

    def state_digest(self):
        """Comparable summary of mutable policy state (lockstep oracle).

        Stateless policies return an empty tuple; stateful ones override
        this with their pointer/grant/rng state.
        """
        return ()


class RoundRobin(ArbitrationPolicy):
    """Locally-fair round-robin at packet granularity.

    The pointer advances past a port only when that port's packet finishes,
    so multi-flit packets are not interleaved (wormhole-style), but an idle
    port is skipped immediately — which is exactly the property the covert
    channel exploits.
    """

    name = "rr"
    flit_invariant = True  # mid-packet: locked port, idempotent note_flit

    def __init__(self, num_inputs: int) -> None:
        super().__init__(num_inputs)
        self._pointer = 0
        self._locked: Optional[int] = None

    def choose(self, candidates, heads, cycle):
        if self._locked is not None and self._locked in candidates:
            return self._locked
        best = min(
            candidates,
            key=lambda port: (port - self._pointer) % self.num_inputs,
        )
        return best

    def note_flit(self, port, packet, last):
        if last:
            self._locked = None
            self._pointer = (port + 1) % self.num_inputs
        else:
            self._locked = port

    def reset(self):
        self._pointer = 0
        self._locked = None

    def state_digest(self):
        return (self._pointer, self._locked)


class CoarseRoundRobin(ArbitrationPolicy):
    """Round-robin at warp-group granularity (network coalescing).

    The grant is held while the port keeps presenting packets with the
    same ``group_id``; arbitration only rotates between warp groups.  As
    the paper shows, this reduces arbitration events but leaves bandwidth
    sharing demand-driven, so the covert channel is *not* mitigated.
    """

    name = "crr"
    flit_invariant = True  # mid-packet: held port/group, idempotent

    def __init__(self, num_inputs: int) -> None:
        super().__init__(num_inputs)
        self._pointer = 0
        self._hold_port: Optional[int] = None
        self._group: Optional[int] = None

    def choose(self, candidates, heads, cycle):
        if self._hold_port is not None and self._hold_port in candidates:
            head = heads[self._hold_port]
            if head is not None and head.group_id == self._group:
                return self._hold_port
        # The held warp group is exhausted (or its port went idle):
        # rotate like plain round-robin.
        return min(
            candidates,
            key=lambda port: (port - self._pointer) % self.num_inputs,
        )

    def note_flit(self, port, packet, last):
        self._hold_port = port
        self._group = packet.group_id
        if last:
            self._pointer = (port + 1) % self.num_inputs

    def reset(self):
        self._pointer = 0
        self._hold_port = None
        self._group = None

    def state_digest(self):
        return (self._pointer, self._hold_port, self._group)


class StrictRoundRobin(ArbitrationPolicy):
    """Time-division multiplexing: input ``cycle % N`` owns each cycle.

    Bandwidth is granted even to idle inputs (their slots go unused), so
    one input's service rate is independent of every other input's demand
    — the secure arbitration countermeasure of Section 6.
    """

    name = "srr"

    def allowed_inputs(self, cycle):
        return (cycle % self.num_inputs,)

    def choose(self, candidates, heads, cycle):
        # allowed_inputs leaves at most one candidate.
        return candidates[0]


class AgeBased(ArbitrationPolicy):
    """Globally-fair arbitration: the oldest head packet wins.

    Provides global fairness but not isolation: contending packets are
    generated at similar times and thus have similar ages, so the covert
    channel persists (Section 6).
    """

    name = "age"
    flit_invariant = True  # stateless; sole candidate always wins

    def choose(self, candidates, heads, cycle):
        return min(candidates, key=lambda port: heads[port].birth_cycle)


class FixedPriority(ArbitrationPolicy):
    """Lowest port index always wins (can starve; test reference only)."""

    name = "fixed"
    flit_invariant = True  # stateless; sole candidate always wins

    def choose(self, candidates, heads, cycle):
        return min(candidates)


class RandomArbiter(ArbitrationPolicy):
    """Uniform random grant (seeded; test reference only)."""

    name = "random"

    def __init__(self, num_inputs: int, seed: int = 0) -> None:
        super().__init__(num_inputs)
        self._seed = seed
        self._rng = random.Random(seed)

    def choose(self, candidates, heads, cycle):
        return self._rng.choice(candidates)

    def reset(self):
        self._rng = random.Random(self._seed)

    def state_digest(self):
        # The Mersenne state tuple is large; a hash of it is enough to
        # detect two rngs that have consumed different draw counts.
        return (hash(self._rng.getstate()[1]),)


_POLICIES = {
    "rr": RoundRobin,
    "crr": CoarseRoundRobin,
    "srr": StrictRoundRobin,
    "age": AgeBased,
    "fixed": FixedPriority,
    "random": RandomArbiter,
}


def make_policy(name: str, num_inputs: int, seed: int = 0) -> ArbitrationPolicy:
    """Instantiate an arbitration policy by config name."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown arbitration policy {name!r}") from None
    if cls is RandomArbiter:
        return RandomArbiter(num_inputs, seed=seed)
    return cls(num_inputs)

"""Memory request/reply packets that traverse the on-chip network.

A warp-level memory instruction is split by the coalescer into one or more
*transactions*; each transaction becomes one request :class:`Packet` on the
request subnet and (for reads, and for write acknowledgements) one reply
packet on the reply subnet.  Packets carry their size in flits — bandwidth
accounting throughout the NoC is done in flits, matching the Table 1
``flit_size = 40`` configuration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

READ = "read"
WRITE = "write"

_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """One network packet (a memory transaction or its reply).

    Attributes
    ----------
    kind:
        ``"read"`` or ``"write"``.
    is_reply:
        False on the request subnet, True on the reply subnet.
    address:
        Byte address of the access (used for L2 slice routing).
    flits:
        Packet length in flits; determines channel occupancy.
    src_sm:
        Logical id of the SM that issued the transaction (reply routing).
    slice_id:
        Destination L2 slice (request routing).
    warp_ref:
        Opaque handle the SM uses to credit the originating warp when the
        transaction completes.
    group_id:
        Warp-level group tag used by coarse-grain round-robin arbitration
        (all transactions of one warp memory op share a group id).
    src_device:
        Device id of the GPU whose SM issued the transaction.  0 on a
        single-GPU system; the inter-GPU fabric routes replies back
        toward it.
    dst_device:
        Device id of the GPU whose L2 serves the transaction.  Equal to
        ``src_device`` for local accesses; the fabric routes requests
        toward it.
    req_uid:
        On a reply packet, the ``uid`` of the request it answers (-1 on
        requests).  The conservation checker uses it to match a delivery
        back to the injected request.
    """

    kind: str
    address: int
    flits: int
    src_sm: int
    slice_id: int
    is_reply: bool = False
    warp_ref: Optional[object] = None
    group_id: int = -1
    #: Cycle the packet was created (age-based arbitration, latency stats).
    birth_cycle: int = 0
    src_device: int = 0
    dst_device: int = 0
    req_uid: int = -1
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def make_reply(self, flits: int, cycle: int) -> "Packet":
        """Build the reply packet for this request."""
        return Packet(
            kind=self.kind,
            address=self.address,
            flits=flits,
            src_sm=self.src_sm,
            slice_id=self.slice_id,
            is_reply=True,
            warp_ref=self.warp_ref,
            group_id=self.group_id,
            birth_cycle=cycle,
            src_device=self.src_device,
            dst_device=self.dst_device,
            req_uid=self.uid,
        )

    def signature(self):
        """Identity-free state tuple, comparable across devices.

        Excludes ``uid``/``req_uid`` (drawn from a process-global counter,
        so two separately-built devices disagree on them) and ``warp_ref``
        (an object reference); every field that the simulation's timing
        depends on is included.
        """
        return (
            self.kind,
            self.is_reply,
            self.address,
            self.flits,
            self.src_sm,
            self.slice_id,
            self.group_id,
            self.birth_cycle,
            self.src_device,
            self.dst_device,
        )

"""Crossbar between the GPC channels and the L2 slices.

Public NVIDIA block diagrams show a crossbar in the middle of the GPU; the
paper's reverse engineering concludes it interconnects the GPC channels
with the partitioned L2 (Section 3.1).  The model is an input-queued
crossbar with head-of-line semantics: each input port forwards its head
packet toward the output that the routing function selects, subject to a
per-input and per-output flit budget per cycle, with per-output arbitration
among competing inputs.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..sim.engine import Component, FOREVER
from ..sim.stats import StatsRegistry
from ..telemetry.events import XBAR_GRANT, XBAR_XFER
from .arbiter import ArbitrationPolicy, make_policy
from .buffer import PacketQueue
from .packet import Packet

#: Bound by :meth:`Crossbar.enable_vector` (vector mode implies numpy);
#: module-level so the scalar paths never import it.
np = None


class Crossbar(Component):
    """Input-queued crossbar with per-port flit budgets.

    Parameters
    ----------
    route:
        Maps a packet to its output port index.
    width:
        Flits per cycle each output port can accept.
    input_width:
        Flits per cycle each input port can send (defaults to ``width``;
        the reply crossbar uses a wider input so the narrow per-GPC
        output channel does not throttle the L2 slices themselves).
    policy_name / seed:
        Arbitration policy instantiated per output port.
    """

    def __init__(
        self,
        name: str,
        inputs: List[PacketQueue],
        outputs: List[PacketQueue],
        route: Callable[[Packet], int],
        width: int,
        input_width: Optional[int] = None,
        policy_name: str = "rr",
        seed: int = 0,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        self.name = name
        self.inputs = inputs
        self.outputs = outputs
        self.route = route
        self.width = width
        self.input_width = width if input_width is None else input_width
        self.stats = stats
        self._packets_key = f"{name}.packets"
        self._policies: List[ArbitrationPolicy] = [
            make_policy(policy_name, len(inputs), seed=seed + i)
            for i in range(len(outputs))
        ]
        self._progress: List[int] = [0] * len(inputs)
        self._reserved: List[bool] = [False] * len(inputs)
        # -- vector mode (None/False outside strategy="vector") ---------- #
        self._vec = False
        self._soa_mirror = None
        self._out_idx: Optional[List[int]] = None
        # -- telemetry (None unless the device enables it) -------------- #
        self._tracer = None
        self._tl_id = 0
        self._tl_out: Optional[List] = None

    def enable_vector(self, mirror=None) -> None:
        """Switch to the slot-assignment tick used by the vector engine.

        The vector tick only walks *nonempty* input ports (the scalar
        tick rebuilds a per-output candidate list over every port each
        round — 48 list allocations per round at Table-1 scale) and,
        when a struct-of-arrays mirror is provided and many inputs are
        live, performs the admission check (route + output free-space)
        as one gather over the occupancy arrays.  Grant-for-grant
        identical to the scalar tick.
        """
        global np
        import numpy as np
        self._vec = True
        if mirror is not None:
            self._soa_mirror = mirror
            self._out_idx = [mirror.index_of(q) for q in self.outputs]

    def attach_telemetry(self, hub) -> None:
        """Opt this crossbar into tracing and per-output link series."""
        self._tracer = hub.tracer
        self._tl_id = hub.register(self.name)
        self._tl_out = [
            hub.timeline.register_link(f"{self.name}.out{out}", self.width)
            for out in range(len(self.outputs))
        ]

    def tick(self, cycle: int) -> None:
        if self._vec:
            self._tick_vector(cycle)
            return
        num_inputs = len(self.inputs)
        input_budget = [self.input_width] * num_inputs
        output_budget = [self.width] * len(self.outputs)
        # Heads and their routed outputs, refreshed as packets complete.
        while True:
            moved = False
            heads: List[Optional[Packet]] = [q.head() for q in self.inputs]
            # Group candidate inputs by output port.
            per_output: List[List[int]] = [[] for _ in self.outputs]
            for port, head in enumerate(heads):
                if head is None or input_budget[port] <= 0:
                    continue
                out = self.route(head)
                if output_budget[out] <= 0:
                    continue
                if self._reserved[port] or self.outputs[out].can_reserve(
                    head.flits
                ):
                    per_output[out].append(port)
            for out, candidates in enumerate(per_output):
                if not candidates:
                    continue
                policy = self._policies[out]
                allowed = policy.allowed_inputs(cycle)
                if allowed is not None:
                    candidates = [p for p in candidates if p in allowed]
                    if not candidates:
                        continue
                port = policy.choose(candidates, heads, cycle)
                packet = heads[port]
                assert packet is not None
                if not self._reserved[port]:
                    self.outputs[out].reserve(packet.flits)
                    self._reserved[port] = True
                if self._tracer is not None:
                    if self._progress[port] == 0:
                        self._tracer.emit(cycle, XBAR_GRANT, self._tl_id,
                                          port, packet.uid, out)
                    self._tl_out[out].add(cycle, 1)
                self._progress[port] += 1
                input_budget[port] -= 1
                output_budget[out] -= 1
                last = self._progress[port] >= packet.flits
                policy.note_flit(port, packet, last)
                if last:
                    self.inputs[port].pop()
                    self.outputs[out].commit(packet)
                    self._progress[port] = 0
                    self._reserved[port] = False
                    if self.stats is not None:
                        self.stats.incr(self._packets_key)
                    if self._tracer is not None:
                        self._tracer.emit(cycle, XBAR_XFER, self._tl_id,
                                          port, packet.uid, out)
                moved = True
            if not moved:
                break

    def _tick_vector(self, cycle: int) -> None:
        """Slot-assignment tick walking only the live input ports.

        Semantics are identical to the scalar :meth:`tick` — same round
        structure, same ascending output order, same per-round candidacy
        — but the candidate grouping is sparse and the admission check
        can gather output free-space from the SoA mirror in one batch.
        """
        inputs = self.inputs
        live = [port for port, queue in enumerate(inputs) if queue]
        if not live:
            return
        outputs = self.outputs
        route = self.route
        reserved = self._reserved
        progress = self._progress
        num_inputs = len(inputs)
        input_budget = [self.input_width] * num_inputs
        output_budget = [self.width] * len(outputs)
        mirror = self._soa_mirror
        heads: List[Optional[Packet]] = [None] * num_inputs
        while True:
            moved = False
            for port in live:
                heads[port] = inputs[port].head()
            per_output: dict = {}
            if mirror is not None and len(live) >= 8:
                cand = [p for p in live
                        if heads[p] is not None and input_budget[p] > 0]
                if cand:
                    outs = [route(heads[p]) for p in cand]
                    free = mirror.free_flits(np.asarray(
                        [self._out_idx[out] for out in outs], dtype=np.intp
                    ))
                    for k, p in enumerate(cand):
                        out = outs[k]
                        if output_budget[out] <= 0:
                            continue
                        if reserved[p] or free[k] >= heads[p].flits:
                            per_output.setdefault(out, []).append(p)
            else:
                for p in live:
                    head = heads[p]
                    if head is None or input_budget[p] <= 0:
                        continue
                    out = route(head)
                    if output_budget[out] <= 0:
                        continue
                    if reserved[p] or outputs[out].can_reserve(head.flits):
                        per_output.setdefault(out, []).append(p)
            for out in sorted(per_output):
                candidates = per_output[out]
                policy = self._policies[out]
                allowed = policy.allowed_inputs(cycle)
                if allowed is not None:
                    candidates = [p for p in candidates if p in allowed]
                    if not candidates:
                        continue
                port = policy.choose(candidates, heads, cycle)
                packet = heads[port]
                assert packet is not None
                if not reserved[port]:
                    outputs[out].reserve(packet.flits)
                    reserved[port] = True
                if self._tracer is not None:
                    if progress[port] == 0:
                        self._tracer.emit(cycle, XBAR_GRANT, self._tl_id,
                                          port, packet.uid, out)
                    self._tl_out[out].add(cycle, 1)
                progress[port] += 1
                input_budget[port] -= 1
                output_budget[out] -= 1
                last = progress[port] >= packet.flits
                policy.note_flit(port, packet, last)
                if last:
                    inputs[port].pop()
                    outputs[out].commit(packet)
                    progress[port] = 0
                    reserved[port] = False
                    if self.stats is not None:
                        self.stats.incr(self._packets_key)
                    if self._tracer is not None:
                        self._tracer.emit(cycle, XBAR_XFER, self._tl_id,
                                          port, packet.uid, out)
                moved = True
            if not moved:
                break

    def idle_until(self, cycle: int) -> Optional[int]:
        """Purely reactive: idle exactly when every input queue is empty."""
        for queue in self.inputs:
            if queue:
                return None
        return FOREVER

    def reserved_demand(self):
        """Yield ``(output_queue, flits)`` per held output reservation.

        Mirrors :meth:`repro.noc.mux.Mux.reserved_demand`; the output a
        reservation was made against is recomputed from the head packet's
        route, which is stable while the packet sits at the head.
        """
        for port, held in enumerate(self._reserved):
            if held:
                head = self.inputs[port].head()
                if head is None:
                    yield self.outputs[0], 0
                else:
                    yield self.outputs[self.route(head)], head.flits

    def state_digest(self):
        """Progress/reservation state plus every attached queue."""
        return (
            tuple(self._progress),
            tuple(self._reserved),
            tuple(policy.state_digest() for policy in self._policies),
            tuple(queue.state_digest() for queue in self.inputs),
            tuple(queue.state_digest() for queue in self.outputs),
        )

    def reset(self) -> None:
        self._progress = [0] * len(self.inputs)
        self._reserved = [False] * len(self.inputs)
        for policy in self._policies:
            policy.reset()
        for queue in self.inputs:
            queue.clear()
        if self._tl_out is not None:
            for series in self._tl_out:
                series.reset()

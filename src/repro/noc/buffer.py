"""Bounded packet queues with flit-level capacity accounting.

Every channel endpoint in the NoC is a :class:`PacketQueue`.  Capacity is
counted in flits (not packets) so that big write/reply packets consume more
buffering than single-flit read requests, and upstream muxes use
reserve/commit semantics: space for a whole packet is reserved when its
first flit is transmitted (virtual cut-through), the packet object is
enqueued when its last flit arrives, and the space is released on pop.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from .packet import Packet


class PacketQueue:
    """FIFO of packets with a flit-capacity bound."""

    __slots__ = ("name", "capacity_flits", "_queue", "_used_flits",
                 "_reserved_flits", "on_push", "on_space", "meter",
                 "_soa", "_soa_idx")

    def __init__(self, name: str, capacity_flits: int) -> None:
        if capacity_flits <= 0:
            raise ValueError("capacity_flits must be positive")
        self.name = name
        self.capacity_flits = capacity_flits
        self._queue: Deque[Packet] = deque()
        self._used_flits = 0
        self._reserved_flits = 0
        #: Optional hook fired when a packet lands in the queue.  The
        #: device wires it to the consuming component's ``wake`` so the
        #: engine's active-set scheduler learns about new work.
        self.on_push: Optional[Callable[[], None]] = None
        #: Optional hook fired when a pop frees space.  The vector-mode
        #: device wires an SM's injection queue to the SM's ``wake`` so
        #: a backpressure-blocked SM can park instead of retrying every
        #: cycle.
        self.on_space: Optional[Callable[[], None]] = None
        #: Optional telemetry occupancy meter (``QueueMeter``); stays
        #: ``None`` unless the device enables telemetry.
        self.meter = None
        #: Struct-of-arrays mirror (``repro.noc.soa.SoaMirror``) and this
        #: queue's index in its arrays; ``None``/-1 outside vector mode.
        self._soa = None
        self._soa_idx = -1

    # -- capacity ------------------------------------------------------ #
    @property
    def used_flits(self) -> int:
        """Flits of fully-arrived packets currently buffered."""
        return self._used_flits

    @property
    def free_flits(self) -> int:
        """Flits available for new reservations."""
        return self.capacity_flits - self._used_flits - self._reserved_flits

    def can_reserve(self, flits: int) -> bool:
        return flits <= self.free_flits

    def reserve(self, flits: int) -> None:
        """Reserve space for an in-flight packet (call once per packet)."""
        if flits > self.free_flits:
            raise OverflowError(
                f"{self.name}: reserve({flits}) exceeds free space "
                f"({self.free_flits})"
            )
        self._reserved_flits += flits
        if self._soa is not None:
            self._soa.q_reserved[self._soa_idx] = self._reserved_flits

    def commit(self, packet: Packet) -> None:
        """Enqueue a packet whose space was previously reserved."""
        if packet.flits > self._reserved_flits:
            raise RuntimeError(
                f"{self.name}: commit without matching reservation"
            )
        self._reserved_flits -= packet.flits
        self._used_flits += packet.flits
        self._queue.append(packet)
        if self._soa is not None:
            idx = self._soa_idx
            self._soa.q_reserved[idx] = self._reserved_flits
            self._soa.q_used[idx] = self._used_flits
            self._soa.q_len[idx] = len(self._queue)
        if self.meter is not None:
            self.meter.note(self._used_flits)
        if self.on_push is not None:
            self.on_push()

    def push(self, packet: Packet) -> bool:
        """Reserve-and-commit in one step; False if there is no room."""
        if not self.can_reserve(packet.flits):
            return False
        self._reserved_flits += packet.flits
        self.commit(packet)
        return True

    # -- consumption --------------------------------------------------- #
    def head(self) -> Optional[Packet]:
        return self._queue[0] if self._queue else None

    def pop(self) -> Packet:
        packet = self._queue.popleft()
        self._used_flits -= packet.flits
        if self._soa is not None:
            idx = self._soa_idx
            self._soa.q_used[idx] = self._used_flits
            self._soa.q_len[idx] = len(self._queue)
        if self.on_space is not None:
            self.on_space()
        return packet

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def clear(self) -> None:
        """Discard all queued packets and outstanding reservations.

        A clear is a queue-level reset, so any attached telemetry meter is
        told the occupancy collapsed to zero — otherwise its standing
        epoch peak would keep reporting pre-clear occupancy after an
        engine reset.
        """
        self._queue.clear()
        self._used_flits = 0
        self._reserved_flits = 0
        if self._soa is not None:
            idx = self._soa_idx
            self._soa.q_used[idx] = 0
            self._soa.q_reserved[idx] = 0
            self._soa.q_len[idx] = 0
        if self.meter is not None:
            self.meter.note_cleared()

    def state_digest(self):
        """Identity-free state tuple for the lockstep oracle."""
        return (
            self._used_flits,
            self._reserved_flits,
            tuple(packet.signature() for packet in self._queue),
        )

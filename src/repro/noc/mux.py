"""N:1 concentrator mux — the shared resource behind the covert channel.

A :class:`Mux` merges several input :class:`PacketQueue` objects onto one
output queue with a per-cycle flit budget (``width``).  The TPC mux is a
2:1 mux of width 1 (no speedup: two SMs oversubscribe it 2x, giving the
Figure 2 contention).  The GPC mux is a 7:1 mux *with* speedup (width > 1),
which is why seven write-streaming TPCs only lose ~15% (Figure 5b).

Transmission uses virtual cut-through: output space for the whole packet is
reserved when its first flit crosses, and the packet is committed to the
output queue when its last flit crosses, i.e. a packet of F flits takes
ceil(F / width_share) cycles of channel occupancy.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.engine import Component, FOREVER
from ..sim.stats import StatsRegistry
from ..telemetry.events import MUX_GRANT, MUX_XFER
from .arbiter import ArbitrationPolicy
from .buffer import PacketQueue
from .packet import Packet


class Mux(Component):
    """Arbitrated N:1 concentrator with a flit-per-cycle budget."""

    def __init__(
        self,
        name: str,
        inputs: List[PacketQueue],
        output: PacketQueue,
        width: int,
        policy: ArbitrationPolicy,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        if policy.num_inputs != len(inputs):
            raise ValueError(
                f"{name}: policy built for {policy.num_inputs} inputs, "
                f"mux has {len(inputs)}"
            )
        self.name = name
        self.inputs = inputs
        self.output = output
        self.width = width
        self.policy = policy
        self.stats = stats
        #: Flits already transmitted of each input's head packet.
        self._progress: List[int] = [0] * len(inputs)
        #: Whether output space is reserved for each input's head packet.
        self._reserved: List[bool] = [False] * len(inputs)
        # -- telemetry (None unless the device enables it) -------------- #
        self._tracer = None
        self._tl_id = 0
        self._tl_link = None

    def attach_telemetry(self, hub) -> None:
        """Opt this mux into event tracing and link-utilization series."""
        self._tracer = hub.tracer
        self._tl_id = hub.register(self.name)
        self._tl_link = hub.timeline.register_link(self.name, self.width)

    def tick(self, cycle: int) -> None:
        budget = self.width
        inputs = self.inputs
        allowed = self.policy.allowed_inputs(cycle)
        moved = 0
        while budget > 0:
            heads: List[Optional[Packet]] = [q.head() for q in inputs]
            candidates = [
                port
                for port, head in enumerate(heads)
                if head is not None and self._can_start(port, head)
            ]
            if allowed is not None:
                candidates = [p for p in candidates if p in allowed]
            if not candidates:
                break
            port = self.policy.choose(candidates, heads, cycle)
            packet = heads[port]
            assert packet is not None
            if not self._reserved[port]:
                self.output.reserve(packet.flits)
                self._reserved[port] = True
            if self._tracer is not None and self._progress[port] == 0:
                self._tracer.emit(cycle, MUX_GRANT, self._tl_id,
                                  port, packet.uid)
            self._progress[port] += 1
            budget -= 1
            moved += 1
            last = self._progress[port] >= packet.flits
            self.policy.note_flit(port, packet, last)
            if last:
                inputs[port].pop()
                self.output.commit(packet)
                self._progress[port] = 0
                self._reserved[port] = False
                if self.stats is not None:
                    self.stats.incr(f"{self.name}.packets")
                if self._tracer is not None:
                    self._tracer.emit(cycle, MUX_XFER, self._tl_id,
                                      port, packet.uid)
            if self.stats is not None:
                self.stats.incr(f"{self.name}.flits")
        if moved and self._tl_link is not None:
            self._tl_link.add(cycle, moved)

    def _can_start(self, port: int, head: Packet) -> bool:
        """A packet may (continue to) transmit if output space is secured."""
        if self._reserved[port]:
            return True
        return self.output.can_reserve(head.flits)

    def idle_until(self, cycle: int) -> Optional[int]:
        """Purely reactive: idle exactly when every input queue is empty.

        An in-progress packet keeps its head in the input queue until the
        last flit, so nonempty inputs cover the blocked/backpressured
        cases too.  New work arrives via the input queues' push hooks.
        """
        for queue in self.inputs:
            if queue:
                return None
        return FOREVER

    def reserved_demand(self):
        """Yield ``(output_queue, flits)`` for each held output reservation.

        The invariant checker sums these across every switch to verify
        that each queue's ``reserved`` flits are exactly accounted for by
        in-flight packets — i.e. that every ``reserve`` is matched by
        exactly one eventual ``commit``.
        """
        for port, held in enumerate(self._reserved):
            if held:
                head = self.inputs[port].head()
                yield self.output, (0 if head is None else head.flits)

    def state_digest(self):
        """Progress/reservation state plus the queues this mux touches."""
        return (
            tuple(self._progress),
            tuple(self._reserved),
            self.policy.state_digest(),
            tuple(queue.state_digest() for queue in self.inputs),
            self.output.state_digest(),
        )

    def reset(self) -> None:
        self._progress = [0] * len(self.inputs)
        self._reserved = [False] * len(self.inputs)
        self.policy.reset()
        for queue in self.inputs:
            queue.clear()
        # Attached telemetry resets with the component, so a reset device
        # reports exactly what a freshly-built one would.
        if self._tl_link is not None:
            self._tl_link.reset()

"""N:1 concentrator mux — the shared resource behind the covert channel.

A :class:`Mux` merges several input :class:`PacketQueue` objects onto one
output queue with a per-cycle flit budget (``width``).  The TPC mux is a
2:1 mux of width 1 (no speedup: two SMs oversubscribe it 2x, giving the
Figure 2 contention).  The GPC mux is a 7:1 mux *with* speedup (width > 1),
which is why seven write-streaming TPCs only lose ~15% (Figure 5b).

Transmission uses virtual cut-through: output space for the whole packet is
reserved when its first flit crosses, and the packet is committed to the
output queue when its last flit crosses, i.e. a packet of F flits takes
ceil(F / width_share) cycles of channel occupancy.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.engine import Component, FOREVER
from ..sim.stats import StatsRegistry
from ..telemetry.events import MUX_GRANT, MUX_XFER
from .arbiter import ArbitrationPolicy
from .buffer import PacketQueue
from .packet import Packet


class Mux(Component):
    """Arbitrated N:1 concentrator with a flit-per-cycle budget."""

    def __init__(
        self,
        name: str,
        inputs: List[PacketQueue],
        output: PacketQueue,
        width: int,
        policy: ArbitrationPolicy,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        if policy.num_inputs != len(inputs):
            raise ValueError(
                f"{name}: policy built for {policy.num_inputs} inputs, "
                f"mux has {len(inputs)}"
            )
        self.name = name
        self.inputs = inputs
        self.output = output
        self.width = width
        self.policy = policy
        self.stats = stats
        # Counter keys are interned once: the flits counter is bumped on
        # every granted flit, and per-flit f-string formatting was
        # measurable at Table-1 scale.
        self._flits_key = f"{name}.flits"
        self._packets_key = f"{name}.packets"
        #: Flits already transmitted of each input's head packet.
        self._progress: List[int] = [0] * len(inputs)
        #: Whether output space is reserved for each input's head packet.
        self._reserved: List[bool] = [False] * len(inputs)
        # -- vector-mode sparse tick -------------------------------------- #
        #: Device sets this under ``strategy="vector"``: tick via
        #: :meth:`_tick_sparse` (live-input iteration) instead of the
        #: full-width scalar loop.
        self._vec = False
        #: ``idle_until`` verdict computed by the sparse tick (None =
        #: busy); only consulted when ``_vec`` is set.
        self._idle_hint = None
        # -- vector-mode lazy packet batching ---------------------------- #
        #: Enabled by the device under ``strategy="vector"`` when the
        #: policy is flit-invariant and no tracer/validator needs per-flit
        #: visibility; see :meth:`enable_vector_batching`.
        self._vec_batch = False
        #: In-flight batched transfer ``(port, c0, p0, flits, t_star)``:
        #: the sole-contender head packet on ``port`` had ``p0`` flits
        #: transmitted before cycle ``c0`` and silently moves ``width``
        #: flits per cycle until the completion tick at ``t_star``.
        self._batch = None
        # -- telemetry (None unless the device enables it) -------------- #
        self._tracer = None
        self._tl_id = 0
        self._tl_link = None
        #: Engine profiler (repro.metrics); observes folded batch spans
        #: at materialisation time only, so unlike the tracer it is
        #: compatible with lazy batching.
        self._profiler = None

    def enable_vector_batching(self) -> None:
        """Opt into multi-cycle sole-contender packet batching.

        Only valid with a flit-invariant policy and without per-flit
        observers (telemetry tracer, invariant checker): the batched
        middle of a packet emits no per-flit events and leaves
        ``_progress`` stale until materialised, which those observers
        would see.  The device gates this accordingly.
        """
        if self.policy.flit_invariant:
            self._vec_batch = True

    def attach_telemetry(self, hub) -> None:
        """Opt this mux into event tracing and link-utilization series."""
        self._tracer = hub.tracer
        self._tl_id = hub.register(self.name)
        self._tl_link = hub.timeline.register_link(self.name, self.width)

    def tick(self, cycle: int) -> None:
        if self._vec:
            self._tick_sparse(cycle)
            return
        if self._batch is not None:
            self._materialize(cycle)
        budget = self.width
        inputs = self.inputs
        allowed = self.policy.allowed_inputs(cycle)
        moved = 0
        while budget > 0:
            heads: List[Optional[Packet]] = [q.head() for q in inputs]
            candidates = [
                port
                for port, head in enumerate(heads)
                if head is not None and self._can_start(port, head)
            ]
            if allowed is not None:
                candidates = [p for p in candidates if p in allowed]
            if not candidates:
                break
            port = self.policy.choose(candidates, heads, cycle)
            packet = heads[port]
            assert packet is not None
            if not self._reserved[port]:
                self.output.reserve(packet.flits)
                self._reserved[port] = True
            if self._tracer is not None and self._progress[port] == 0:
                self._tracer.emit(cycle, MUX_GRANT, self._tl_id,
                                  port, packet.uid)
            self._progress[port] += 1
            budget -= 1
            moved += 1
            last = self._progress[port] >= packet.flits
            self.policy.note_flit(port, packet, last)
            if last:
                inputs[port].pop()
                self.output.commit(packet)
                self._progress[port] = 0
                self._reserved[port] = False
                if self.stats is not None:
                    self.stats.incr(self._packets_key)
                if self._tracer is not None:
                    self._tracer.emit(cycle, MUX_XFER, self._tl_id,
                                      port, packet.uid)
            if self.stats is not None:
                self.stats.incr(self._flits_key)
        if moved and self._tl_link is not None:
            self._tl_link.add(cycle, moved)
        if self._vec_batch and moved:
            self._maybe_start_batch(cycle)

    def _tick_sparse(self, cycle: int) -> None:
        """Vector-mode tick: identical grants, live-input iteration.

        The scalar loop rebuilds a full-width ``heads`` list on every
        flit of budget — 48 ``head()`` calls per round on a reply mux
        that usually has one busy input.  This walk touches only the
        nonempty ports and skips the policy call entirely when a single
        candidate and a flit-invariant policy make the grant forced.
        Grant-for-grant and counter-for-counter identical to the scalar
        tick.
        """
        if self._batch is not None:
            self._materialize(cycle)
        inputs = self.inputs
        live = [p for p, q in enumerate(inputs) if q]
        if not live:
            self._idle_hint = FOREVER
            return
        policy = self.policy
        allowed = policy.allowed_inputs(cycle)
        forced = policy.flit_invariant
        budget = self.width
        moved = 0
        completed = 0
        reserved = self._reserved
        progress = self._progress
        output = self.output
        heads: List[Optional[Packet]] = [None] * len(inputs)
        while budget > 0:
            candidates = []
            for p in live:
                head = inputs[p].head()
                heads[p] = head
                if head is not None and (
                    reserved[p] or output.can_reserve(head.flits)
                ):
                    candidates.append(p)
            if allowed is not None:
                candidates = [p for p in candidates if p in allowed]
            if not candidates:
                break
            if forced and len(candidates) == 1:
                port = candidates[0]
            else:
                port = policy.choose(candidates, heads, cycle)
            packet = heads[port]
            if not reserved[port]:
                output.reserve(packet.flits)
                reserved[port] = True
            if self._tracer is not None and progress[port] == 0:
                self._tracer.emit(cycle, MUX_GRANT, self._tl_id,
                                  port, packet.uid)
            progress[port] += 1
            budget -= 1
            moved += 1
            last = progress[port] >= packet.flits
            policy.note_flit(port, packet, last)
            if last:
                inputs[port].pop()
                output.commit(packet)
                progress[port] = 0
                reserved[port] = False
                completed += 1
                if self._tracer is not None:
                    self._tracer.emit(cycle, MUX_XFER, self._tl_id,
                                      port, packet.uid)
        if moved:
            stats = self.stats
            if stats is not None:
                stats.incr(self._flits_key, moved)
                if completed:
                    stats.incr(self._packets_key, completed)
            if self._tl_link is not None:
                self._tl_link.add(cycle, moved)
            if self._vec_batch:
                self._maybe_start_batch(cycle)
        for p in live:
            if inputs[p]:
                self._idle_hint = None
                return
        self._idle_hint = FOREVER

    # -- vector-mode lazy batching -------------------------------------- #
    def _materialize(self, cycle: int) -> None:
        """Fold a batched transfer's silent cycles into scalar state.

        Called at the first tick after the batch was parked (either its
        own completion timer at ``t_star`` or an early wake from a push
        on another input): cycles ``c0 .. cycle-1`` each moved ``width``
        flits of the sole-contender packet, so progress and the flit
        counter advance by ``width * (cycle - c0)`` in one step, and the
        normal per-flit loop resumes for this cycle.
        """
        port, c0, p0, flits, _ = self._batch
        self._batch = None
        skipped = self.width * (cycle - c0)
        if skipped <= 0:
            return
        self._progress[port] = p0 + skipped
        if self.stats is not None:
            self.stats.incr(self._flits_key, skipped)
        if self._profiler is not None:
            self._profiler.note_sole_batch(cycle - c0)

    def _maybe_start_batch(self, cycle: int) -> None:
        """Park a sole-contender mid-packet transfer until completion.

        Engages only when exactly one input is nonempty and its head
        packet is mid-transmission with at least two full silent cycles
        ahead: the flit-invariant policy guarantees the intermediate
        grants are deterministic no-ops on policy state, so the engine
        can skip straight to the completion tick.
        """
        busy_port = -1
        for port, queue in enumerate(self.inputs):
            if queue:
                if busy_port >= 0:
                    return  # contended: per-flit arbitration required
                busy_port = port
        if busy_port < 0 or not self._reserved[busy_port]:
            return
        progress = self._progress[busy_port]
        if progress <= 0:
            return
        head = self.inputs[busy_port].head()
        remaining = head.flits - progress
        ticks = -(-remaining // self.width)  # ceil
        if ticks < 2:
            return  # completes next tick anyway; nothing to skip
        c0 = cycle + 1
        self._batch = (busy_port, c0, progress, head.flits, c0 + ticks - 1)

    def _can_start(self, port: int, head: Packet) -> bool:
        """A packet may (continue to) transmit if output space is secured."""
        if self._reserved[port]:
            return True
        return self.output.can_reserve(head.flits)

    def idle_until(self, cycle: int) -> Optional[int]:
        """Purely reactive: idle exactly when every input queue is empty.

        An in-progress packet keeps its head in the input queue until the
        last flit, so nonempty inputs cover the blocked/backpressured
        cases too.  New work arrives via the input queues' push hooks.
        A batched sole-contender transfer parks until its completion
        tick (an early push on another input wakes the mux sooner and
        the batch is materialised mid-flight).
        """
        if self._batch is not None:
            return self._batch[4]
        if self._vec:
            return self._idle_hint
        for queue in self.inputs:
            if queue:
                return None
        return FOREVER

    def reserved_demand(self):
        """Yield ``(output_queue, flits)`` for each held output reservation.

        The invariant checker sums these across every switch to verify
        that each queue's ``reserved`` flits are exactly accounted for by
        in-flight packets — i.e. that every ``reserve`` is matched by
        exactly one eventual ``commit``.
        """
        for port, held in enumerate(self._reserved):
            if held:
                head = self.inputs[port].head()
                yield self.output, (0 if head is None else head.flits)

    def state_digest(self):
        """Progress/reservation state plus the queues this mux touches.

        A pending batched transfer is materialised *virtually*: the
        digest reports the progress the scalar strategies hold at this
        engine cycle, so lockstep comparison is exact mid-batch.
        """
        if self._batch is None:
            progress = tuple(self._progress)
        else:
            port, c0, p0, _flits, _ = self._batch
            virtual = list(self._progress)
            virtual[port] = p0 + self.width * (self._engine.cycle - c0)
            progress = tuple(virtual)
        return (
            progress,
            tuple(self._reserved),
            self.policy.state_digest(),
            tuple(queue.state_digest() for queue in self.inputs),
            self.output.state_digest(),
        )

    def reset(self) -> None:
        self._progress = [0] * len(self.inputs)
        self._reserved = [False] * len(self.inputs)
        self._batch = None
        self._idle_hint = None
        self.policy.reset()
        for queue in self.inputs:
            queue.clear()
        # Attached telemetry resets with the component, so a reset device
        # reports exactly what a freshly-built one would.
        if self._tl_link is not None:
            self._tl_link.reset()

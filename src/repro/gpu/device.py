"""The assembled GPU device.

:class:`GpuDevice` wires every component into one simulatable system:

* per-SM injection queues feeding 2:1 **TPC muxes**,
* per-GPC **GPC muxes** with bandwidth speedup,
* a request **crossbar** routing GPC channels to the 48 L2 slices,
* banked **L2 slices** backed by HBM2-timing memory controllers,
* a reply **crossbar** plus per-GPC reply distributors back to the SMs,
* a **thread-block scheduler** with the reverse-engineered placement
  policy, and per-SM **clock registers** with the calibrated skew model.

It is the public entry point for every experiment::

    device = GpuDevice(VOLTA_V100)
    stream = device.create_stream()
    device.launch(kernel, stream)
    device.run()
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ..config import GpuConfig, VOLTA_V100
from ..noc.arbiter import make_policy
from ..noc.buffer import PacketQueue
from ..noc.crossbar import Crossbar
from ..noc.mux import Mux
from ..noc.packet import Packet
from ..sim.clock import ClockSystem
from ..sim.engine import Component, create_engine
from ..sim.stats import StatsRegistry
from ..telemetry import Telemetry, TimelineProbe, note_device
from .dram import MemoryController
from .kernel import Kernel, Stream
from .l2slice import L2Slice
from .reply_path import GpcReplyDistributor
from .scheduler import ThreadBlockScheduler
from .sm import StreamingMultiprocessor


class GpuDevice:
    """A complete simulated GPU built from a :class:`GpuConfig`."""

    def __init__(
        self,
        config: GpuConfig = VOLTA_V100,
        l1_enabled: bool = False,
        seed_salt: int = 0,
        engine=None,
        device_id: int = 0,
        fabric: bool = False,
    ) -> None:
        self.config = config
        self.stats = StatsRegistry()
        #: Device id within a multi-GPU system (0 standalone).
        self.device_id = device_id
        #: Whether this device created its engine.  A device embedded in
        #: a :class:`repro.interconnect.MultiGpuSystem` shares the
        #: system's engine and must not claim its single-slot hooks
        #: (``on_reset``, ``on_fast_forward``, ``profiler``) — the system
        #: installs fan-outs over all devices instead.
        self._owns_engine = engine is None
        self.engine = (
            create_engine(config.engine_strategy) if engine is None
            else engine
        )
        self._seed_salt = seed_salt
        #: Cross-device delivery hook (multi-GPU systems): called with
        #: packets whose ``src_device`` is another device, instead of the
        #: local SM delivery path.
        self._cross_deliver = None
        self.clocks = ClockSystem(config, self.engine, seed_salt=seed_salt)
        #: Telemetry hub; None unless ``config.telemetry_enabled``.
        self.telemetry: Optional[Telemetry] = (
            Telemetry.from_config(config) if config.telemetry_enabled
            else None
        )
        #: Struct-of-arrays occupancy mirror; None unless vector strategy.
        self.soa_mirror = None
        #: Engine self-profiler (repro.metrics); None unless
        #: ``config.metrics_enabled``.
        self.profiler = None
        self._build(l1_enabled, fabric)
        if self.telemetry is not None:
            self._attach_telemetry()
        if config.metrics_enabled:
            self._attach_profiler()
        #: Conservation checker; None unless ``config.validate_enabled``.
        #: Imported lazily so the validate package (which builds devices
        #: for its lockstep oracle) never forms an import cycle.
        self._validator = None
        if config.validate_enabled:
            from ..validate.invariants import InvariantChecker

            InvariantChecker.attach(self)
        if self._owns_engine:
            self.engine.on_reset = self._reset_observability
        note_device(self)

    # ------------------------------------------------------------------ #
    # Construction.
    # ------------------------------------------------------------------ #
    def _build(self, l1_enabled: bool, fabric: bool = False) -> None:
        config = self.config
        engine = self.engine
        depth = config.buffer_depth
        # Queue capacities in flits: deep enough for a handful of the
        # largest packets at every hop.
        cap = depth * max(
            config.write_request_flits, config.read_reply_flits
        )

        # -- inter-GPU fabric attachment points -------------------------- #
        # Built only when this device joins a MultiGpuSystem: one shared
        # egress queue toward the fabric for remote MemOps, and (below) a
        # per-slice remote reply VOQ merged onto a reply egress queue.
        self.fabric_inject: Optional[PacketQueue] = None
        self.fabric_reply: Optional[PacketQueue] = None
        self.remote_reply_mux: Optional[Mux] = None
        self._remote_voq_index: Optional[int] = None
        if fabric:
            self.fabric_inject = PacketQueue(
                f"d{self.device_id}.fab.inject", cap
            )

        # -- per-SM injection queues + SMs ------------------------------ #
        self.inject_queues: List[PacketQueue] = [
            PacketQueue(f"sm{sm}.inject", cap) for sm in range(config.num_sms)
        ]
        self.sms: List[StreamingMultiprocessor] = [
            StreamingMultiprocessor(
                sm,
                config,
                self.inject_queues[sm],
                self.clocks.read,
                stats=self.stats,
                l1_enabled=l1_enabled,
                seed_salt=self._seed_salt,
                device_id=self.device_id,
                remote_queue=self.fabric_inject,
            )
            for sm in range(config.num_sms)
        ]

        # -- TPC muxes (the covert channel's shared resource) ----------- #
        self.tpc_queues: List[PacketQueue] = [
            PacketQueue(f"tpc{t}.chan", cap) for t in range(config.num_tpcs)
        ]
        self.tpc_muxes: List[Mux] = []
        for tpc in range(config.num_tpcs):
            sm_ids = config.tpc_sms(tpc)
            self.tpc_muxes.append(
                Mux(
                    f"tpc{tpc}.mux",
                    [self.inject_queues[sm] for sm in sm_ids],
                    self.tpc_queues[tpc],
                    width=config.tpc_channel_width,
                    policy=make_policy(
                        config.arbitration, len(sm_ids), seed=config.seed + tpc
                    ),
                    stats=self.stats,
                )
            )

        # -- GPC muxes --------------------------------------------------- #
        members = config.gpc_members()
        self.gpc_queues: List[PacketQueue] = [
            PacketQueue(f"gpc{g}.chan", cap * 2) for g in range(config.num_gpcs)
        ]
        self.gpc_muxes: List[Mux] = []
        for gpc in range(config.num_gpcs):
            tpcs = members[gpc]
            self.gpc_muxes.append(
                Mux(
                    f"gpc{gpc}.mux",
                    [self.tpc_queues[tpc] for tpc in tpcs],
                    self.gpc_queues[gpc],
                    width=config.gpc_channel_width,
                    policy=make_policy(
                        config.arbitration, len(tpcs), seed=config.seed + 100 + gpc
                    ),
                    stats=self.stats,
                )
            )

        # -- request crossbar → L2 slices -------------------------------- #
        self.l2_request_queues: List[PacketQueue] = [
            PacketQueue(f"l2s{s}.req", cap) for s in range(config.num_l2_slices)
        ]
        self.request_xbar = Crossbar(
            "xbar.req",
            self.gpc_queues,
            self.l2_request_queues,
            route=lambda packet: packet.slice_id,
            width=config.xbar_width,
            policy_name="rr",
            seed=config.seed,
            stats=self.stats,
        )

        # -- memory controllers ------------------------------------------ #
        self.controllers: List[MemoryController] = [
            MemoryController(
                f"mc{mc}",
                config.dram,
                on_complete=self._dram_complete,
                stats=self.stats,
            )
            for mc in range(config.num_memory_controllers)
        ]

        # -- L2 slices with per-GPC reply VOQs ---------------------------- #
        # Each slice keeps one reply queue per destination GPC (virtual
        # output queueing) so a congested GPC reply port never blocks
        # replies bound for other GPCs.
        tpc_to_gpc = config.tpc_to_gpc_map()

        def reply_route(packet: Packet) -> int:
            return tpc_to_gpc[packet.src_sm // config.sms_per_tpc]

        if config.reply_voq:
            self.l2_reply_voqs: List[List[PacketQueue]] = [
                [
                    PacketQueue(f"l2s{s}.reply.g{g}", cap * 2)
                    for g in range(config.num_gpcs)
                ]
                for s in range(config.num_l2_slices)
            ]
            slice_reply_route = reply_route
        else:
            # Single-FIFO ablation: one shared reply queue per slice —
            # replies to all GPCs interleave and head-of-line block.
            self.l2_reply_voqs = [
                [PacketQueue(f"l2s{s}.reply", cap * 2)]
                for s in range(config.num_l2_slices)
            ]

            def slice_reply_route(packet: Packet) -> int:
                return 0
        if fabric:
            # One extra "remote" VOQ per slice: replies to a foreign
            # device leave through the fabric instead of a GPC reply
            # port, so local reply traffic never head-of-line blocks
            # behind a congested inter-GPU link (and vice versa).
            self._remote_voq_index = len(self.l2_reply_voqs[0])
            for s in range(config.num_l2_slices):
                self.l2_reply_voqs[s].append(
                    PacketQueue(
                        f"d{self.device_id}.l2s{s}.reply.rmt", cap * 2
                    )
                )
            local_reply_route = slice_reply_route
            device_id = self.device_id
            remote_index = self._remote_voq_index

            def slice_reply_route(packet: Packet) -> int:
                if packet.src_device != device_id:
                    return remote_index
                return local_reply_route(packet)
        slices_per_mc = max(1, config.num_l2_slices // len(self.controllers))
        self.l2_slices: List[L2Slice] = [
            L2Slice(
                s,
                config,
                self.l2_request_queues[s],
                self.l2_reply_voqs[s],
                reply_route=slice_reply_route,
                controller=self.controllers[
                    min(s // slices_per_mc, len(self.controllers) - 1)
                ],
                stats=self.stats,
                write_done=self._deliver_reply,
            )
            for s in range(config.num_l2_slices)
        ]

        # -- per-GPC reply channels (crossbar output side) → SMs ---------- #
        self.gpc_reply_queues: List[PacketQueue] = [
            PacketQueue(f"gpc{g}.reply", cap * 2)
            for g in range(config.num_gpcs)
        ]
        if config.reply_voq:
            self.reply_muxes: List[Component] = [
                Mux(
                    f"gpc{g}.replymux",
                    [
                        self.l2_reply_voqs[s][g]
                        for s in range(config.num_l2_slices)
                    ],
                    self.gpc_reply_queues[g],
                    width=config.gpc_reply_width,
                    policy=make_policy(
                        "rr", config.num_l2_slices, seed=config.seed + 300 + g
                    ),
                    stats=self.stats,
                )
                for g in range(config.num_gpcs)
            ]
        else:
            # HOL ablation: a crossbar whose input is each slice's single
            # reply FIFO; a head bound for a congested GPC blocks the
            # replies queued behind it.
            self.reply_muxes = [
                Crossbar(
                    "xbar.reply",
                    [voqs[0] for voqs in self.l2_reply_voqs],
                    self.gpc_reply_queues,
                    route=reply_route,
                    width=config.gpc_reply_width,
                    input_width=config.xbar_width,
                    seed=config.seed + 300,
                    stats=self.stats,
                )
            ]
        if fabric:
            # Reply egress toward the fabric: merge every slice's remote
            # VOQ onto one queue the fabric router consumes.
            self.fabric_reply = PacketQueue(
                f"d{self.device_id}.fab.reply", cap * 2
            )
            self.remote_reply_mux = Mux(
                f"d{self.device_id}.fab.replymux",
                [
                    voqs[self._remote_voq_index]
                    for voqs in self.l2_reply_voqs
                ],
                self.fabric_reply,
                width=config.gpc_reply_width,
                policy=make_policy(
                    "rr",
                    config.num_l2_slices,
                    seed=config.seed + 400 + self.device_id,
                ),
                stats=self.stats,
            )
        self.reply_distributors: List[GpcReplyDistributor] = [
            GpcReplyDistributor(
                gpc,
                config,
                self.gpc_reply_queues[gpc],
                members[gpc],
                deliver=self._deliver_reply,
                stats=self.stats,
            )
            for gpc in range(config.num_gpcs)
        ]

        # -- block scheduler ---------------------------------------------- #
        self.scheduler = ThreadBlockScheduler(config, self.sms)

        # Registration order == pipeline order (request downstream first,
        # then memory, then the reply path, then the scheduler).
        engine.register(self.scheduler)
        engine.register_all(self.sms)
        engine.register_all(self.tpc_muxes)
        engine.register_all(self.gpc_muxes)
        engine.register(self.request_xbar)
        engine.register_all(self.l2_slices)
        engine.register_all(self.controllers)
        engine.register_all(self.reply_muxes)
        if self.remote_reply_mux is not None:
            engine.register(self.remote_reply_mux)
        engine.register_all(self.reply_distributors)
        self._wire_wakes()
        if config.engine_strategy == "vector":
            self._wire_vector()

    def _wire_wakes(self) -> None:
        """Connect every queue to its consumer's wake-up hook.

        This is what lets the engine's active-set scheduler park idle
        components: a component with empty inputs sleeps until the queue
        an upstream component pushes into wakes it.  Warp completions
        additionally wake the thread-block scheduler (retirement /
        promotion / dispatch are all downstream of a warp finishing).
        """
        config = self.config
        members = config.gpc_members()
        for tpc in range(config.num_tpcs):
            mux_wake = self.tpc_muxes[tpc].wake
            for sm in config.tpc_sms(tpc):
                self.inject_queues[sm].on_push = mux_wake
        for gpc in range(config.num_gpcs):
            mux_wake = self.gpc_muxes[gpc].wake
            for tpc in members[gpc]:
                self.tpc_queues[tpc].on_push = mux_wake
        for queue in self.gpc_queues:
            queue.on_push = self.request_xbar.wake
        for s in range(config.num_l2_slices):
            self.l2_request_queues[s].on_push = self.l2_slices[s].wake
        if config.reply_voq:
            for voqs in self.l2_reply_voqs:
                for gpc, queue in enumerate(voqs[: config.num_gpcs]):
                    queue.on_push = self.reply_muxes[gpc].wake
        else:
            for voqs in self.l2_reply_voqs:
                voqs[0].on_push = self.reply_muxes[0].wake
        if self.remote_reply_mux is not None:
            mux_wake = self.remote_reply_mux.wake
            for voqs in self.l2_reply_voqs:
                voqs[self._remote_voq_index].on_push = mux_wake
        for gpc in range(config.num_gpcs):
            self.gpc_reply_queues[gpc].on_push = (
                self.reply_distributors[gpc].wake
            )
        for sm in self.sms:
            sm.on_warp_done = self.scheduler.wake

    def _wire_vector(self) -> None:
        """Vector-strategy wiring: SoA mirrors, banks, and backpressure.

        Builds the struct-of-arrays occupancy mirror over every NoC
        queue, registers each mux tier as a batched bank with the
        engine, switches the crossbars to the sparse vector tick, and
        opts the SMs into reactive backpressure parking (a blocked LSU
        parks until queue space or credits arrive instead of being
        re-ticked every cycle).  Purely a scheduling-layer rewiring —
        the scalar components remain authoritative for all state, which
        the three-way lockstep oracle verifies digest-for-digest.
        """
        from ..noc.soa import MuxBank, SoaMirror

        config = self.config
        engine = self.engine
        queues: List[PacketQueue] = []
        queues.extend(self.inject_queues)
        queues.extend(self.tpc_queues)
        queues.extend(self.gpc_queues)
        queues.extend(self.l2_request_queues)
        for voqs in self.l2_reply_voqs:
            queues.extend(voqs)
        queues.extend(self.gpc_reply_queues)
        mirror = SoaMirror(queues)
        self.soa_mirror = mirror

        # SM backpressure parking: a blocked LSU sleeps until its inject
        # queue frees space or a reply returns credits (deliver_reply
        # already wakes the SM); without this the blocked SM burns a
        # retry tick every cycle of a long stall.
        for sm in self.sms:
            sm._vec = True
            self.inject_queues[sm.sm_id].on_space = sm.wake
        if self.fabric_inject is not None:
            # The fabric egress queue is shared by every SM of the
            # device; waking all of them on freed space is a superset of
            # the precise wake and each extra tick is a state-preserving
            # no-op, so equivalence with the scalar strategies holds.
            sms = self.sms

            def _wake_sms() -> None:
                for sm in sms:
                    sm.wake()

            self.fabric_inject.on_space = _wake_sms

        # Sole-contender packet batching on the TPC muxes: only
        # profitable where a packet spans >2 cycles of channel occupancy
        # (write bursts on the width-1 TPC channel), and only legal
        # without per-flit observers (tracer, invariant checker).
        for mux in self.tpc_muxes:
            mux._vec = True
        for mux in self.gpc_muxes:
            mux._vec = True
        if config.reply_voq:
            for mux in self.reply_muxes:
                mux._vec = True
        batching = (
            not config.telemetry_enabled and not config.validate_enabled
        )
        span = max(config.write_request_flits, config.read_request_flits)
        if batching and span > 2 * config.tpc_channel_width:
            for mux in self.tpc_muxes:
                mux.enable_vector_batching()

        self.request_xbar.enable_vector(mirror)
        for reply_mux in self.reply_muxes:
            if isinstance(reply_mux, Crossbar):
                reply_mux.enable_vector(mirror)

        def register_banks(tier: str, muxes: List[Mux]) -> None:
            # Banks need contiguous registration and equal arity; a tier
            # whose arity varies (80 SMs over 6 GPCs gives 7/7/7/7/6/6
            # GPC muxes) splits into maximal same-arity runs.
            run: List[Mux] = []
            for mux in muxes:
                if run and len(mux.inputs) != len(run[0].inputs):
                    if len(run) > 1:
                        engine.register_bank(
                            MuxBank(f"{tier}.bank{len(run[0].inputs)}",
                                    mirror, run)
                        )
                    run = []
                run.append(mux)
            if len(run) > 1:
                engine.register_bank(
                    MuxBank(f"{tier}.bank{len(run[0].inputs)}", mirror, run)
                )

        register_banks("tpc", self.tpc_muxes)
        register_banks("gpc", self.gpc_muxes)
        if config.reply_voq:
            register_banks("reply", self.reply_muxes)

    def _attach_telemetry(self) -> None:
        """Opt every instrumented component into the telemetry hub.

        Runs only when ``config.telemetry_enabled``: components built
        with their ``_tracer`` attributes as ``None`` get a tracer and a
        component id, every packet queue gets an occupancy meter, a
        :class:`TimelineProbe` joins the engine to flush meters on epoch
        boundaries, and the engine reports fast-forward jumps to the hub.
        The probe is purely observational, so seeded runs stay
        bit-identical with telemetry on or off.
        """
        hub = self.telemetry
        assert hub is not None
        for sm in self.sms:
            sm.attach_telemetry(hub)
        for mux in self.tpc_muxes:
            mux.attach_telemetry(hub)
        for mux in self.gpc_muxes:
            mux.attach_telemetry(hub)
        self.request_xbar.attach_telemetry(hub)
        for l2_slice in self.l2_slices:
            l2_slice.attach_telemetry(hub)
        for controller in self.controllers:
            controller.attach_telemetry(hub)
        for reply_mux in self.reply_muxes:
            reply_mux.attach_telemetry(hub)
        for distributor in self.reply_distributors:
            distributor.attach_telemetry(hub)
        for queue in self.inject_queues:
            hub.timeline.register_queue(queue)
        for queue in self.tpc_queues:
            hub.timeline.register_queue(queue)
        for queue in self.gpc_queues:
            hub.timeline.register_queue(queue)
        for queue in self.l2_request_queues:
            hub.timeline.register_queue(queue)
        for voqs in self.l2_reply_voqs:
            for queue in voqs:
                hub.timeline.register_queue(queue)
        for queue in self.gpc_reply_queues:
            hub.timeline.register_queue(queue)
        # Registered last: meters flush after every producer has ticked.
        self.engine.register(TimelineProbe(hub.timeline))
        if self._owns_engine:
            self.engine.on_fast_forward = hub.note_fast_forward

    def _attach_profiler(self) -> None:
        """Wire a sampled engine self-profiler (``config.metrics_enabled``).

        Unlike the telemetry tracer the profiler never needs per-flit
        visibility — it observes folded batch spans at materialisation
        time — so it composes with vector batching.  It only *reads*
        scheduler state: seeded runs stay bit-identical with it on.
        """
        from ..metrics.profile import EngineProfiler

        config = self.config
        self.profiler = EngineProfiler(
            interval=config.metrics_interval,
            strategy=config.engine_strategy,
            # Standalone devices keep their label set unchanged; devices
            # embedded in a multi-GPU system add a ``device`` dimension.
            device=(None if self._owns_engine else self.device_id),
        )
        if self._owns_engine:
            self.engine.profiler = self.profiler
        for mux in self.tpc_muxes:
            mux._profiler = self.profiler
        for mux in self.gpc_muxes:
            mux._profiler = self.profiler
        if config.reply_voq:
            for mux in self.reply_muxes:
                mux._profiler = self.profiler

    def metrics_manifest(self) -> Optional[Dict]:
        """JSON-safe engine-profile metrics, or None when disabled."""
        if self.profiler is None:
            return None
        return self.profiler.manifest()

    def telemetry_manifest(self) -> Optional[Dict]:
        """JSON-safe telemetry summary, or None when telemetry is off."""
        if self.telemetry is None:
            return None
        self.telemetry.finalize(self.engine.cycle)
        return self.telemetry.manifest(self.stats)

    # ------------------------------------------------------------------ #
    # Internal plumbing callbacks.
    # ------------------------------------------------------------------ #
    def _dram_complete(self, token, cycle: int) -> None:
        l2_slice, packet = token
        l2_slice.dram_complete(packet, cycle)

    def _deliver_reply(self, packet: Packet, cycle: int) -> None:
        if packet.src_device != self.device_id:
            # A completion owed to a foreign device (in practice the
            # posted-write credit of a remote store, returned at L2
            # acceptance — the same convention as local posted writes,
            # whose acks are free).  Read replies never take this path:
            # they leave through the remote reply VOQs.
            self._cross_deliver(packet, cycle)
            return
        if self._validator is not None:
            self._validator.note_deliver(packet, cycle)
        self.sms[packet.src_sm].deliver_reply(packet, cycle)

    def _reset_observability(self) -> None:
        """Engine ``reset`` hook: clear everything the engine cannot see.

        Component state is reset by the engine itself; this clears the
        layers riding on top — stats, telemetry, and the clock system's
        jitter stream (not a Component) — so a run after
        :meth:`Engine.reset` behaves exactly like a fresh device.
        """
        self.stats.reset()
        self.clocks.reset()
        if self.telemetry is not None:
            self.telemetry.reset()
        if self.profiler is not None:
            self.profiler.reset()

    # ------------------------------------------------------------------ #
    # Public API.
    # ------------------------------------------------------------------ #
    def create_stream(self, name: str = "stream") -> Stream:
        return self.scheduler.add_stream(Stream(name))

    def launch(self, kernel: Kernel, stream: Optional[Stream] = None) -> Kernel:
        """Enqueue ``kernel`` on ``stream`` (a fresh stream if None)."""
        if stream is None:
            stream = self.create_stream(f"stream.{kernel.name}")
        stream.enqueue(kernel)
        self.scheduler.wake()
        return kernel

    def run(self, max_cycles: int = 20_000_000, check_every: int = 32) -> int:
        """Step until every stream has drained; returns the final cycle."""
        return self.engine.run_until(
            lambda: self.scheduler.all_idle,
            max_cycles=max_cycles,
            check_every=check_every,
        )

    def run_kernels(
        self, kernels: Iterable[Kernel], max_cycles: int = 20_000_000
    ) -> Dict[str, int]:
        """Launch each kernel on its own stream, run, return wall cycles.

        Returns a map kernel name -> completion cycle observed at the
        polling granularity (the coarse per-kernel 'execution time' the
        reverse-engineering experiments compare).
        """
        kernels = list(kernels)
        start = self.engine.cycle
        for kernel in kernels:
            self.launch(kernel)
        finish: Dict[str, int] = {}
        remaining = set(kernel.name for kernel in kernels)

        def poll() -> bool:
            for kernel in kernels:
                if kernel.name in remaining and kernel.done:
                    finish[kernel.name] = self.engine.cycle - start
                    remaining.discard(kernel.name)
            return not remaining

        self.engine.run_until(poll, max_cycles=max_cycles, check_every=16)
        return finish

    # -- memory preparation -------------------------------------------- #
    def preload_l2(self, addresses: Iterable[int]) -> None:
        """Install lines in their L2 slices so accesses always hit.

        The covert channel preloads its probe arrays (Section 4.2: "all
        memory requests access data that is loaded into the L2 cache").
        """
        config = self.config
        for address in addresses:
            line = (address // config.l2_line_bytes) * config.l2_line_bytes
            self.l2_slices[config.address_to_slice(address)].preload(line)

    def preload_region(self, base: int, size_bytes: int) -> None:
        """Preload every line in ``[base, base+size_bytes)``."""
        line = self.config.l2_line_bytes
        start = (base // line) * line
        self.preload_l2(range(start, base + size_bytes, line))

    # -- introspection --------------------------------------------------- #
    @property
    def validator(self):
        """The attached invariant checker, or None when validation is off."""
        return self._validator

    def assert_drained(self, max_cycles: int = 100_000) -> None:
        """Step until every injected packet is delivered, then audit.

        Posted writes can still be crossing the NoC when the last warp
        retires (the warp does not wait for the write acknowledgement), so
        a conservation check at ``run()``-exit must first drain the
        network.  Raises ``InvariantViolation`` if packets remain after
        ``max_cycles`` or a final audit fails.  No-op without a validator.
        """
        checker = self._validator
        if checker is None:
            return
        try:
            self.engine.run_until(
                lambda: checker.in_flight_count == 0,
                max_cycles=max_cycles,
                check_every=16,
            )
        except TimeoutError:
            pass  # check_drained below reports the stuck packets
        checker.check_drained(self.engine.cycle)
        checker.audit(self.engine.cycle)

    def smid_of_block(self, kernel: Kernel, block_id: int) -> Optional[int]:
        """What ``%smid`` returned for a dispatched block."""
        return kernel.blocks[block_id].sm_id

    @property
    def cycle(self) -> int:
        return self.engine.cycle

    @property
    def all_idle(self) -> bool:
        """Every stream on this device has drained."""
        return self.scheduler.all_idle

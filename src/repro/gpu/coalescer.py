"""Warp-level memory coalescing unit.

When the 32 threads of a warp execute a memory instruction, accesses that
fall into the same cache line are merged into one memory transaction
(Section 2.1).  The covert channel deliberately defeats coalescing — 32
uncoalesced requests per warp make contention robust to sender/receiver
misalignment (Figure 12) and drop the error rate from >50% to ~0.1%
(Figure 13) — so the coalescer is a first-class, controllable mechanism
here rather than an implementation detail.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def coalesce(addresses: Sequence[int], line_bytes: int) -> List[int]:
    """Merge lane addresses into unique line-aligned transactions.

    Returns one representative (line-aligned) address per touched cache
    line, in first-touch order — the transactions a real coalescer would
    emit for this warp instruction.
    """
    seen = set()
    transactions: List[int] = []
    for address in addresses:
        line = (address // line_bytes) * line_bytes
        if line not in seen:
            seen.add(line)
            transactions.append(line)
    return transactions


def lane_addresses_coalesced(
    base: int, line_bytes: int, lanes: int = 32, element_bytes: int = 4
) -> List[int]:
    """Lane addresses for a fully-coalescable access.

    All ``lanes`` threads read consecutive elements of one cache line
    (classic ``arr[base + tid]`` pattern), producing a single transaction
    after coalescing (assuming ``lanes * element_bytes <= line_bytes``).
    """
    return [base + lane * element_bytes for lane in range(lanes)]


def lane_addresses_uncoalesced(
    base: int, line_bytes: int, lanes: int = 32, stride_lines: int = 1
) -> List[int]:
    """Lane addresses that defeat coalescing entirely.

    Each thread touches a different cache line (``arr[base + tid*stride]``
    with a stride of at least one line), producing ``lanes`` transactions —
    the pattern the attack uses to guarantee interconnect contention.
    """
    stride = line_bytes * stride_lines
    return [base + lane * stride for lane in range(lanes)]


def lane_addresses_partial(
    base: int, line_bytes: int, unique_lines: int, lanes: int = 32
) -> List[int]:
    """Lane addresses touching exactly ``unique_lines`` cache lines.

    Used by the multi-level channel (Figure 14): modulating the number of
    unique lines per warp (e.g. 0/8/16/32) modulates the *degree* of
    contention, communicating more than one bit per slot.
    """
    if not 1 <= unique_lines <= lanes:
        raise ValueError("unique_lines must be in [1, lanes]")
    return [
        base + (lane % unique_lines) * line_bytes for lane in range(lanes)
    ]

"""Set-associative cache models for the per-SM L1 and the banked L2.

Both caches are tag-only (no data payloads are simulated — the covert
channel is a *timing* channel) with true-LRU replacement.  The L1 supports
the ``-dlcm=cg`` bypass mode the paper compiles with: when bypassed, every
access goes straight to the interconnect, which raises covert-channel
bandwidth ~20% (Section 4.2, footnote 6).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional


class SetAssociativeCache:
    """Tag store with LRU or seeded-random replacement.

    GPU L2 caches use pseudo-random (not true-LRU) replacement; the
    distinction matters under capacity pressure — true LRU protects a hot
    working set against a streaming interferer indefinitely, random
    replacement displaces it probabilistically (the mechanism behind the
    paper's third-kernel noise discussion, Section 5).

    Parameters
    ----------
    size_bytes / line_bytes / ways:
        Geometry; ``size_bytes`` must be a multiple of ``line_bytes*ways``.
    replacement:
        ``"lru"`` or ``"random"`` (seeded, deterministic).
    """

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int,
        ways: int,
        replacement: str = "lru",
        seed: int = 0,
    ) -> None:
        num_lines = size_bytes // line_bytes
        if num_lines == 0 or num_lines % ways:
            raise ValueError(
                f"invalid cache geometry: {size_bytes}B / {line_bytes}B "
                f"lines / {ways} ways"
            )
        if replacement not in ("lru", "random"):
            raise ValueError(f"unknown replacement {replacement!r}")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = num_lines // ways
        self.replacement = replacement
        # Each set is an OrderedDict tag -> True, most recent last.
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self._seed = seed
        import random as _random

        self._rng = _random.Random((seed << 8) ^ 0xCACE)

    def _evict(self, entries: OrderedDict) -> None:
        if self.replacement == "lru":
            entries.popitem(last=False)
        else:
            victim = self._rng.randrange(len(entries))
            key = next(
                k for i, k in enumerate(entries) if i == victim
            )
            del entries[key]

    def _locate(self, address: int):
        line = address // self.line_bytes
        return self._sets[line % self.num_sets], line

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU state or counters."""
        entries, tag = self._locate(address)
        return tag in entries

    def access(self, address: int, allocate: bool = True) -> bool:
        """Look up ``address``; return True on hit.

        On a miss with ``allocate``, victimize the LRU line and install the
        new one.  LRU order is updated on hits.
        """
        entries, tag = self._locate(address)
        if tag in entries:
            entries.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        if allocate:
            if len(entries) >= self.ways:
                self._evict(entries)
            entries[tag] = True
        return False

    def install(self, address: int) -> None:
        """Install a line without counting an access (e.g. preloading)."""
        entries, tag = self._locate(address)
        if tag in entries:
            entries.move_to_end(tag)
            return
        if len(entries) >= self.ways:
            self._evict(entries)
        entries[tag] = True

    def invalidate_all(self) -> None:
        for entries in self._sets:
            entries.clear()
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        """Restore construction state: empty tag store AND a fresh rng.

        ``invalidate_all`` deliberately keeps the replacement rng stream
        running (a mid-run flush must not replay eviction decisions);
        a *reset* by contrast promises a device indistinguishable from a
        freshly built one, which requires reseeding.
        """
        self.invalidate_all()
        import random as _random

        self._rng = _random.Random((self._seed << 8) ^ 0xCACE)

    def state_digest(self):
        """Compact comparable summary of tag-store + rng state.

        Tag contents are folded into one hash (a full 768-line dump per
        compare would dominate oracle runtime); hit/miss counters and the
        replacement rng are included so two caches that merely happen to
        hold the same lines after different histories still differ.
        """
        return (
            self.hits,
            self.misses,
            hash(tuple(tuple(entries) for entries in self._sets)),
            hash(self._rng.getstate()[1]),
        )

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0


class L1Cache:
    """Per-SM L1 with a global bypass switch (``-dlcm=cg``).

    Reads hit in ``hit_latency`` cycles when enabled; writes are
    write-through / no-allocate (GPU-style) and always reach the NoC.
    """

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int,
        ways: int,
        hit_latency: int,
        enabled: bool = True,
    ) -> None:
        self.cache = SetAssociativeCache(size_bytes, line_bytes, ways)
        self.hit_latency = hit_latency
        self.enabled = enabled

    def lookup_read(self, address: int) -> bool:
        """True if the read hits (and therefore skips the interconnect)."""
        if not self.enabled:
            return False
        return self.cache.access(address, allocate=False)

    def fill(self, address: int) -> None:
        """Install the line when a read reply returns (if enabled)."""
        if self.enabled:
            self.cache.install(address)

    def note_write(self, address: int) -> None:
        """Write-through/no-allocate: invalidate a stale copy if present."""
        if self.enabled and self.cache.probe(address):
            # Update-in-place modelled as a refresh of the line.
            self.cache.install(address)

"""Banked L2 cache slices.

Each slice owns an equal share of the physical address space (line
interleaved, Table 1: 48 slices of 96 KB) and is fed by the request-side
crossbar.  A slice accepts one request per cycle, looks it up in its tag
store, and after the pipeline latency injects the reply (read data or
write acknowledgement) into its reply queue.  Misses detour through the
slice's memory controller, which is how a hostile third kernel can turn
the quiet ~220-cycle L2 round trip into noisy DRAM-latency accesses
(Section 5, Impact of Noise).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..config import GpuConfig
from ..noc.buffer import PacketQueue
from ..noc.packet import Packet, READ
from ..sim.engine import Component, FOREVER
from ..sim.stats import StatsRegistry
from ..telemetry.events import L2_HIT, L2_MISS
from .caches import SetAssociativeCache
from .dram import MemoryController


class L2Slice(Component):
    """One L2 slice: tag store + fixed-latency pipeline + MC interface."""

    def __init__(
        self,
        slice_id: int,
        config: GpuConfig,
        request_queue: PacketQueue,
        reply_queues,
        reply_route=None,
        controller: Optional[MemoryController] = None,
        stats: Optional[StatsRegistry] = None,
        write_done: Optional[callable] = None,
    ) -> None:
        self.slice_id = slice_id
        self.name = f"l2s{slice_id}"
        self.config = config
        self.request_queue = request_queue
        # Virtual output queues: one reply queue per destination GPC, so a
        # reply bound for a congested GPC never head-of-line-blocks
        # replies bound elsewhere (single-FIFO replies would couple every
        # GPC's latency to the most congested reply port).
        if isinstance(reply_queues, PacketQueue):
            reply_queues = [reply_queues]
        self.reply_queues = list(reply_queues)
        self.reply_route = reply_route or (lambda packet: 0)
        self.controller = controller
        self.stats = stats
        #: Callback for posted-write completion when write_reply_flits == 0
        #: (credits return to the SM without a reply packet).
        self.write_done = write_done
        self.cache = SetAssociativeCache(
            config.l2_slice_bytes,
            config.l2_line_bytes,
            config.l2_ways,
            replacement=config.l2_replacement,
            seed=config.seed + slice_id,
        )
        self._num_slices = config.num_l2_slices
        self._requests_key = f"{self.name}.requests"
        self._misses_key = f"{self.name}.misses"
        #: Slice-interleaving stride for :meth:`_local`.
        self._interleave = config.l2_line_bytes * config.num_l2_slices
        #: FIFO of (ready_cycle, request packet) — hits in pipeline order.
        self._pipeline: Deque[Tuple[int, Packet]] = deque()
        #: Requests waiting on DRAM, completed by the MC callback.
        self._mshr_ready: Deque[Packet] = deque()
        # -- telemetry (None unless the device enables it) -------------- #
        self._tracer = None
        self._tl_id = 0

    def attach_telemetry(self, hub) -> None:
        """Opt this slice into hit/miss event tracing."""
        self._tracer = hub.tracer
        self._tl_id = hub.register(self.name)

    def tick(self, cycle: int) -> None:
        self._drain_pipeline(cycle)
        self._drain_mshr_ready(cycle)
        # Accept new requests (l2_ports per cycle).
        for _ in range(self.config.l2_ports):
            packet = self.request_queue.head()
            if packet is None:
                break
            self.request_queue.pop()
            if self.stats is not None:
                self.stats.incr(self._requests_key)
            hit = self.cache.access(self._local(packet.address), allocate=True)
            if self._tracer is not None:
                self._tracer.emit(cycle, L2_HIT if hit else L2_MISS,
                                  self._tl_id, packet.uid, packet.src_sm)
            posted_write = (
                packet.kind != READ and self.config.write_reply_flits == 0
            )
            if posted_write:
                # Posted stores retire at L2 acceptance: the write buffer
                # credit returns now (the store is in the memory system's
                # domain), regardless of hit or DRAM detour.
                if self.write_done is not None:
                    self.write_done(packet, cycle)
                if not hit and self.controller is not None:
                    # Miss traffic still reaches DRAM (write-no-allocate),
                    # it just no longer gates the SM.
                    self.controller.enqueue(
                        packet.address, True, (self, packet)
                    )
                continue
            if hit or self.controller is None:
                self._pipeline.append((cycle + self.config.l2_latency, packet))
            else:
                if self.stats is not None:
                    self.stats.incr(self._misses_key)
                self.controller.enqueue(
                    packet.address, packet.kind != READ, (self, packet)
                )

    def _drain_pipeline(self, cycle: int) -> None:
        pipeline = self._pipeline
        while pipeline and pipeline[0][0] <= cycle:
            ready, packet = pipeline[0]
            if not self._complete(packet, cycle):
                break  # reply queue backpressure: retry next cycle
            pipeline.popleft()

    def _drain_mshr_ready(self, cycle: int) -> None:
        """Complete requests whose lines arrived from DRAM."""
        ready = self._mshr_ready
        while ready:
            if not self._complete(ready[0], cycle):
                break
            ready.popleft()

    def _complete(self, packet: Packet, cycle: int) -> bool:
        """Finish a request by sending its reply packet.

        Posted writes (``write_reply_flits == 0``) never reach this point
        through the pipeline — they were credited at acceptance — so a
        posted write arriving here is a DRAM write-back completing in the
        background: nothing more to do.
        """
        config = self.config
        if packet.kind == READ:
            flits = config.read_reply_flits
        else:
            flits = config.write_reply_flits
            if flits == 0:
                return True
        queue = self.reply_queues[self.reply_route(packet)]
        return queue.push(packet.make_reply(flits, cycle))

    def dram_complete(self, packet: Packet, cycle: int) -> None:
        """MC callback: the line arrived from DRAM; fill and reply."""
        self.cache.install(self._local(packet.address))
        self._mshr_ready.append(packet)
        self.wake()

    def idle_until(self, cycle: int):
        """Idle when no request is queued and the pipeline has nothing due.

        A nonempty pipeline whose head is already due means the reply
        queue is backpressuring — stay active and retry every cycle.
        New requests wake the slice via the request queue's push hook;
        DRAM fills via :meth:`dram_complete`.
        """
        if self.request_queue or self._mshr_ready:
            return None
        if self._pipeline:
            ready = self._pipeline[0][0]
            return None if ready <= cycle else ready
        return FOREVER

    def _local(self, address: int) -> int:
        """Slice-local address: drop the slice-interleaving bits.

        Without this, every line a slice owns (global lines ``s``,
        ``s + num_slices``, …) would alias to the same cache set.
        """
        line_bytes = self.config.l2_line_bytes
        return (address // self._interleave) * line_bytes

    # -- preloading ------------------------------------------------------ #
    def preload(self, address: int) -> None:
        """Install a line without timing (experiment setup)."""
        self.cache.install(self._local(address))

    def resident(self, address: int) -> bool:
        """Whether the line holding ``address`` is currently cached."""
        return self.cache.probe(self._local(address))

    def state_digest(self):
        """Pipeline/MSHR/tag-store state plus the slice's queues."""
        return (
            tuple(
                (ready, packet.signature()) for ready, packet in self._pipeline
            ),
            tuple(packet.signature() for packet in self._mshr_ready),
            self.cache.state_digest(),
            self.request_queue.state_digest(),
            tuple(queue.state_digest() for queue in self.reply_queues),
        )

    def reset(self) -> None:
        self.cache.reset()  # invalidate AND reseed the replacement rng
        self._pipeline.clear()
        self._mshr_ready.clear()
        # The request queue belongs to this slice (the crossbar clears
        # its own *input* queues); without this, packets queued at reset
        # time would survive into the next run.
        self.request_queue.clear()

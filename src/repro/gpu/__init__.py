"""GPU model: SMs, caches, DRAM, scheduler, streams, assembled device."""

from .caches import L1Cache, SetAssociativeCache
from .coalescer import (
    coalesce,
    lane_addresses_coalesced,
    lane_addresses_partial,
    lane_addresses_uncoalesced,
)
from .benign import BENIGN_WORKLOADS, benign_footprint, make_benign_kernel
from .device import GpuDevice
from .dram import MemoryController
from .kernel import Kernel, Stream, ThreadBlock
from .l2slice import L2Slice
from .scheduler import ThreadBlockScheduler, dispatch_order
from .sm import StreamingMultiprocessor
from .warp import (
    MemOp,
    ReadClock,
    WaitClockMask,
    WaitCycles,
    WaitUntilClock,
    WarpContext,
    READ,
    WRITE,
)

__all__ = [
    "BENIGN_WORKLOADS",
    "benign_footprint",
    "make_benign_kernel",
    "L1Cache",
    "SetAssociativeCache",
    "coalesce",
    "lane_addresses_coalesced",
    "lane_addresses_partial",
    "lane_addresses_uncoalesced",
    "GpuDevice",
    "MemoryController",
    "Kernel",
    "Stream",
    "ThreadBlock",
    "L2Slice",
    "ThreadBlockScheduler",
    "dispatch_order",
    "StreamingMultiprocessor",
    "MemOp",
    "ReadClock",
    "WaitClockMask",
    "WaitCycles",
    "WaitUntilClock",
    "WarpContext",
    "READ",
    "WRITE",
]

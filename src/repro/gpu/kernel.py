"""Kernels, thread blocks, and streams (GPU multiprogramming).

A :class:`Kernel` is a grid of thread blocks; each block contributes
``warps_per_block`` warps, and each warp runs the program produced by the
kernel's ``program_factory`` (see :mod:`repro.gpu.warp`).  Kernels are
submitted to :class:`Stream` objects, mirroring the ``cudaStream`` based
multiprogramming the paper uses to co-locate the trojan and the spy
(Section 2.2, 4.3): blocks are dispatched in launch order, so launching the
sender's grid first and the receiver's grid second places them on opposite
SMs of every TPC.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .warp import WarpContext, WarpProgram

#: A program factory receives the warp's context and returns its program.
ProgramFactory = Callable[[WarpContext], WarpProgram]

_kernel_ids = itertools.count()


@dataclass
class ThreadBlock:
    """One thread block: dispatch unit of the block scheduler."""

    kernel: "Kernel"
    block_id: int
    #: SM the scheduler placed this block on (set at dispatch).
    sm_id: Optional[int] = None
    #: Live warp slots (populated at dispatch).
    warp_slots: List = field(default_factory=list)

    @property
    def done(self) -> bool:
        return bool(self.warp_slots) and all(
            slot.done for slot in self.warp_slots
        )


class Kernel:
    """A grid launch.

    Parameters
    ----------
    program_factory:
        Called once per warp with its :class:`WarpContext`.
    num_blocks / warps_per_block:
        Grid geometry.
    args:
        Kernel arguments, exposed to programs via ``context.args``.
    name:
        Label used in traces.
    """

    def __init__(
        self,
        program_factory: ProgramFactory,
        num_blocks: int,
        warps_per_block: int = 1,
        args: Optional[Dict] = None,
        name: Optional[str] = None,
    ) -> None:
        if num_blocks <= 0 or warps_per_block <= 0:
            raise ValueError("grid dimensions must be positive")
        self.kernel_id = next(_kernel_ids)
        self.name = name or f"kernel{self.kernel_id}"
        self.program_factory = program_factory
        self.num_blocks = num_blocks
        self.warps_per_block = warps_per_block
        self.args = dict(args or {})
        self.blocks: List[ThreadBlock] = [
            ThreadBlock(self, block_id) for block_id in range(num_blocks)
        ]

    @property
    def dispatched(self) -> bool:
        return all(block.sm_id is not None for block in self.blocks)

    @property
    def done(self) -> bool:
        return all(block.done for block in self.blocks)

    def placement(self) -> List[Optional[int]]:
        """block id -> SM id (None while undisatched)."""
        return [block.sm_id for block in self.blocks]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Kernel({self.name!r}, blocks={self.num_blocks}, "
            f"warps_per_block={self.warps_per_block})"
        )


class Stream:
    """An in-order launch queue, like ``cudaStream_t``.

    Kernels in one stream run back-to-back; kernels in different streams
    run concurrently (the multiprogramming that makes the covert channel
    possible).
    """

    def __init__(self, name: str = "stream") -> None:
        self.name = name
        self.pending: List[Kernel] = []
        self.running: Optional[Kernel] = None

    def enqueue(self, kernel: Kernel) -> Kernel:
        self.pending.append(kernel)
        return kernel

    @property
    def busy(self) -> bool:
        return self.running is not None or bool(self.pending)

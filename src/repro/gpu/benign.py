"""A small suite of benign GPU workload behaviours.

Used by the detection defense (false-positive evaluation) and the
SRR-cost study: countermeasures must be judged against what normal
kernels do, not only against the attack.  Each workload is a warp-program
factory with a distinctive memory-access signature:

* ``streaming``      — dense sequential reads (BLAS-like sweep),
* ``strided``        — large-stride reads (column-major access),
* ``pointer_chase``  — serial dependent reads (graph/linked-list),
* ``compute``        — long ALU phases with rare memory ops,
* ``bursty``         — alternating burst/idle phases (reduction trees),
* ``mixed_rw``       — interleaved read-modify-write traffic.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from ..config import GpuConfig
from .coalescer import lane_addresses_coalesced, lane_addresses_uncoalesced
from .kernel import Kernel
from .warp import MemOp, WaitCycles, WarpContext, WarpProgram, READ, WRITE


def _empty_program() -> WarpProgram:
    """A warp program that exits immediately (inactive-SM gate)."""
    return
    yield  # pragma: no cover - makes this function a generator


def _base_for(context: WarpContext) -> int:
    args = context.args
    return args.get("base", 0) + context.sm_id * args.get("region", 1 << 16)


def streaming_workload(context: WarpContext) -> WarpProgram:
    """Dense sequential reads: high bandwidth, regular pattern."""
    args = context.args
    base = _base_for(context)
    line = args["line_bytes"]
    for op in range(args["ops"]):
        addresses = lane_addresses_uncoalesced(
            base + (op % 8) * 32 * line, line
        )
        yield MemOp(READ, addresses)


def strided_workload(context: WarpContext) -> WarpProgram:
    """Column-major style access: every lane strides multiple lines."""
    args = context.args
    base = _base_for(context)
    line = args["line_bytes"]
    for op in range(args["ops"]):
        addresses = lane_addresses_uncoalesced(
            base + (op % 4) * 32 * 2 * line, line, stride_lines=2
        )
        yield MemOp(READ, addresses)


def pointer_chase_workload(context: WarpContext) -> WarpProgram:
    """Serial dependent loads: one line at a time, latency bound."""
    args = context.args
    base = _base_for(context)
    line = args["line_bytes"]
    rng = random.Random(args.get("seed", 11) ^ context.sm_id)
    footprint = args.get("footprint_lines", 64)
    for op in range(args["ops"]):
        offset = rng.randrange(footprint) * line
        yield MemOp(READ, [base + offset])


def compute_workload(context: WarpContext) -> WarpProgram:
    """ALU-heavy: long busy phases, occasional coalesced reads."""
    args = context.args
    base = _base_for(context)
    line = args["line_bytes"]
    for op in range(args["ops"]):
        yield WaitCycles(args.get("alu_cycles", 400))
        yield MemOp(READ, lane_addresses_coalesced(base, line))


def bursty_workload(context: WarpContext) -> WarpProgram:
    """Alternating burst/idle phases (reduction-tree shape)."""
    args = context.args
    base = _base_for(context)
    line = args["line_bytes"]
    for phase in range(args["ops"] // 4 + 1):
        for op in range(4):
            addresses = lane_addresses_uncoalesced(
                base + (op % 4) * 32 * line, line
            )
            yield MemOp(READ, addresses)
        yield WaitCycles(args.get("idle_cycles", 600))


def write_stream_workload(context: WarpContext) -> WarpProgram:
    """Posted-write streaming (memcpy/initialization): bandwidth bound.

    The injection-channel-saturating case — the workload class that pays
    the full ~2x SRR tax (Section 6's memory-intensive bound).
    """
    args = context.args
    base = _base_for(context)
    line = args["line_bytes"]
    for op in range(args["ops"]):
        addresses = lane_addresses_uncoalesced(
            base + (op % 8) * 32 * line, line
        )
        yield MemOp(WRITE, addresses, wait_for_completion=False)


def mixed_rw_workload(context: WarpContext) -> WarpProgram:
    """Read-modify-write traffic: reads and posted writes interleave."""
    args = context.args
    base = _base_for(context)
    line = args["line_bytes"]
    for op in range(args["ops"]):
        addresses = lane_addresses_uncoalesced(
            base + (op % 4) * 32 * line, line
        )
        if op % 2:
            yield MemOp(WRITE, addresses, wait_for_completion=False)
        else:
            yield MemOp(READ, addresses)


#: Registry of benign workloads by name.
BENIGN_WORKLOADS: Dict[str, Callable[[WarpContext], WarpProgram]] = {
    "streaming": streaming_workload,
    "strided": strided_workload,
    "pointer_chase": pointer_chase_workload,
    "compute": compute_workload,
    "bursty": bursty_workload,
    "write_stream": write_stream_workload,
    "mixed_rw": mixed_rw_workload,
}


def make_benign_kernel(
    config: GpuConfig,
    name: str,
    ops: int = 24,
    active_sms: Optional[set] = None,
    base: int = 0,
    num_blocks: Optional[int] = None,
) -> Kernel:
    """Instantiate a benign workload kernel by registry name."""
    try:
        factory = BENIGN_WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; have {sorted(BENIGN_WORKLOADS)}"
        ) from None

    def gated(context: WarpContext) -> WarpProgram:
        if active_sms is not None and context.sm_id not in active_sms:
            return _empty_program()
        return factory(context)

    return Kernel(
        gated,
        num_blocks=num_blocks or config.num_sms,
        args={
            "ops": ops,
            "base": base,
            "line_bytes": config.l2_line_bytes,
            "region": 1 << 16,
        },
        name=f"benign-{name}",
    )


def benign_footprint(config: GpuConfig) -> int:
    """Bytes to preload per SM region for any benign workload."""
    return 16 * 32 * config.l2_line_bytes

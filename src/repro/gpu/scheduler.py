"""Thread-block scheduler with the reverse-engineered placement policy.

Section 4.3 of the paper determines that the hardware scheduler interleaves
thread blocks **across GPCs first**, and **across the TPCs within a GPC**
before placing a second block on any TPC.  Consequently, launching a
40-block sender grid followed by a 40-block receiver grid puts exactly one
sender block and one receiver block on the two SMs of every TPC — the
co-location the TPC covert channel needs.

The scheduler here implements that policy exactly and deterministically:
SM dispatch slots are ordered by (SM-slot within TPC, TPC round within
GPC, GPC id), and pending blocks from all streams are placed in launch
order whenever slots are free.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..config import GpuConfig
from ..sim.engine import Component, FOREVER
from .kernel import Kernel, Stream, ThreadBlock
from .sm import StreamingMultiprocessor
from .warp import WarpContext


def dispatch_order(config: GpuConfig) -> List[int]:
    """The SM ids in hardware dispatch-slot order.

    First one SM of every TPC, interleaving GPCs each round; then the
    second SM of every TPC in the same order; and so on for further waves.
    """
    members = config.gpc_members()
    max_tpcs = max(config.tpcs_per_gpc)
    order: List[int] = []
    for sm_slot in range(config.sms_per_tpc):
        for tpc_round in range(max_tpcs):
            for gpc in range(config.num_gpcs):
                tpcs = members[gpc]
                if tpc_round < len(tpcs):
                    order.append(config.tpc_sms(tpcs[tpc_round])[sm_slot])
    return order


class ThreadBlockScheduler(Component):
    """Dispatches pending blocks onto SMs each cycle."""

    name = "block_scheduler"

    def __init__(
        self,
        config: GpuConfig,
        sms: List[StreamingMultiprocessor],
    ) -> None:
        self.config = config
        self.sms = sms
        self.streams: List[Stream] = []
        self._order = dispatch_order(config)
        #: Blocks resident on each SM (block -> freed when done).
        self._resident: List[List[ThreadBlock]] = [[] for _ in sms]

    def add_stream(self, stream: Stream) -> Stream:
        self.streams.append(stream)
        self.wake()
        return stream

    # ------------------------------------------------------------------ #
    def tick(self, cycle: int) -> None:
        self._retire_blocks()
        self._promote_streams()
        self._dispatch(cycle)

    def _retire_blocks(self) -> None:
        for sm_index, resident in enumerate(self._resident):
            if not resident:
                continue
            still = [block for block in resident if not block.done]
            if len(still) != len(resident):
                self._resident[sm_index] = still
                self.sms[sm_index].retire_finished_warps()

    def _promote_streams(self) -> None:
        for stream in self.streams:
            if stream.running is not None and stream.running.done:
                stream.running = None
            if stream.running is None and stream.pending:
                stream.running = stream.pending.pop(0)

    def _dispatch(self, cycle: int) -> None:
        pending = self._pending_blocks()
        if not pending:
            return
        for sm_id in self._order:
            if not pending:
                break
            sm = self.sms[sm_id]
            if len(self._resident[sm_id]) >= self.config.max_blocks_per_sm:
                continue
            free_warps = self.config.max_warps_per_sm - len(sm.warps)
            block = pending[0]
            if block.kernel.warps_per_block > free_warps:
                continue
            pending.pop(0)
            self._place(block, sm)

    def _pending_blocks(self) -> List[ThreadBlock]:
        """Undispatched blocks of running kernels, in launch order."""
        blocks: List[ThreadBlock] = []
        running = [
            stream.running for stream in self.streams
            if stream.running is not None
        ]
        running.sort(key=lambda kernel: kernel.kernel_id)
        for kernel in running:
            blocks.extend(
                block for block in kernel.blocks if block.sm_id is None
            )
        return blocks

    def _place(self, block: ThreadBlock, sm: StreamingMultiprocessor) -> None:
        kernel = block.kernel
        block.sm_id = sm.sm_id
        for warp_id in range(kernel.warps_per_block):
            context = WarpContext(
                block_id=block.block_id,
                warp_id=warp_id,
                sm_id=sm.sm_id,
                lanes=self.config.simt_width,
                args=kernel.args,
            )
            program = kernel.program_factory(context)
            block.warp_slots.append(sm.add_warp(context, program))
        self._resident[sm.sm_id].append(block)

    @property
    def all_idle(self) -> bool:
        return all(not stream.busy for stream in self.streams)

    def idle_until(self, cycle: int) -> Optional[int]:
        """Event-driven: the scheduler only has work after a launch or a
        warp completion.

        It stays active while a stream can promote a kernel, a running
        kernel has undispatched blocks, or a resident block has finished
        (retirement pending).  All those conditions can only *become* true
        through ``add_stream``/``Stream.enqueue`` (the device wakes the
        scheduler on launch) or a warp finishing (each SM's
        ``on_warp_done`` hook wakes the scheduler), so parking in every
        other state is exact.
        """
        for stream in self.streams:
            running = stream.running
            if running is None:
                if stream.pending:
                    return None
            elif running.done:
                return None
            else:
                for block in running.blocks:
                    if block.sm_id is None:
                        return None  # undispatched work remains
        for resident in self._resident:
            for block in resident:
                if block.done:
                    return None
        return FOREVER

    def state_digest(self):
        """Dispatch state by counts (kernel ids are process-global)."""
        return (
            tuple(len(resident) for resident in self._resident),
            tuple(
                (stream.running is not None, len(stream.pending))
                for stream in self.streams
            ),
        )

    def reset(self) -> None:
        self.streams.clear()
        self._resident = [[] for _ in self.sms]

"""Reply-subnet distribution from the crossbar back to the SMs.

Table 1 configures two subnets (request + reply).  The request subnet is
built from :class:`~repro.noc.mux.Mux` concentrators (SM -> TPC -> GPC ->
crossbar); this module implements the mirror-image *distribution* side:
each GPC has one reply channel out of the crossbar whose bandwidth
(``gpc_reply_width`` flits/cycle) is shared by all the GPC's TPCs, and each
TPC has a reply channel of ``tpc_reply_width`` flits/cycle feeding its two
SMs.

The GPC reply channel is the bottleneck behind the *GPC covert channel*:
read replies carry whole sectors (4 flits), so ~14 SMs issuing reads
oversubscribe it (Figure 5b) while the same SMs' single-flit read requests
never stress the request path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..config import GpuConfig
from ..noc.buffer import PacketQueue
from ..noc.packet import Packet
from ..sim.engine import Component, FOREVER
from ..sim.stats import StatsRegistry
from ..telemetry.events import REPLY_DELIVER


class GpcReplyDistributor(Component):
    """Demultiplexes one GPC reply channel onto its per-TPC channels.

    ``deliver`` hands completed packets to the destination SM (ejection is
    modelled as instantaneous once a packet has crossed its TPC reply
    channel).
    """

    def __init__(
        self,
        gpc_id: int,
        config: GpuConfig,
        input_queue: PacketQueue,
        member_tpcs: List[int],
        deliver: Callable[[Packet, int], None],
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        self.gpc_id = gpc_id
        self.name = f"gpc{gpc_id}.reply"
        self.config = config
        self.input_queue = input_queue
        self.deliver = deliver
        self.stats = stats
        self._member_tpcs = set(member_tpcs)
        self._packets_key = f"{self.name}.packets"
        self._sms_per_tpc = config.sms_per_tpc
        #: Flits of the head packet already moved this + previous cycles.
        self._progress = 0
        #: Per-TPC residual budget for the current cycle.
        self._tpc_budget: Dict[int, int] = {}
        # -- telemetry (None unless the device enables it) -------------- #
        self._tracer = None
        self._tl_id = 0
        self._tl_link = None

    def attach_telemetry(self, hub) -> None:
        """Opt this distributor into tracing and a reply-link series."""
        self._tracer = hub.tracer
        self._tl_id = hub.register(self.name)
        self._tl_link = hub.timeline.register_link(
            self.name, self.config.gpc_reply_width
        )

    def tick(self, cycle: int) -> None:
        queue = self.input_queue
        if not queue:
            self._tpc_budget.clear()
            return
        budget = self.config.gpc_reply_width
        tpc_width = self.config.tpc_reply_width
        tpc_budget: Dict[int, int] = {}
        while budget > 0:
            packet = queue.head()
            if packet is None:
                break
            tpc = packet.src_sm // self._sms_per_tpc
            if tpc not in self._member_tpcs:
                raise RuntimeError(
                    f"{self.name}: reply for SM {packet.src_sm} (TPC {tpc}) "
                    f"routed to wrong GPC"
                )
            remaining_tpc = tpc_budget.get(tpc, tpc_width)
            if remaining_tpc <= 0:
                # Head-of-line: this TPC's channel is saturated this cycle.
                break
            step = min(budget, remaining_tpc, packet.flits - self._progress)
            self._progress += step
            budget -= step
            tpc_budget[tpc] = remaining_tpc - step
            if self._progress >= packet.flits:
                queue.pop()
                self._progress = 0
                if self._tracer is not None:
                    self._tracer.emit(cycle, REPLY_DELIVER, self._tl_id,
                                      packet.uid, packet.src_sm)
                self.deliver(packet, cycle)
                if self.stats is not None:
                    self.stats.incr(self._packets_key)
        self._tpc_budget = tpc_budget
        moved = self.config.gpc_reply_width - budget
        if moved and self._tl_link is not None:
            self._tl_link.add(cycle, moved)

    def idle_until(self, cycle: int) -> Optional[int]:
        """Purely reactive: idle exactly when the reply queue is empty."""
        return None if self.input_queue else FOREVER

    def state_digest(self):
        """Head progress plus the reply queue feeding this GPC."""
        return (self._progress, self.input_queue.state_digest())

    def reset(self) -> None:
        self._progress = 0
        self._tpc_budget.clear()
        self.input_queue.clear()
        if self._tl_link is not None:
            self._tl_link.reset()

"""Synthetic memory workloads used throughout the paper's experiments.

These are the warp programs behind Algorithm 1 (the reverse-engineering
memory write test) and the contention-characterization sweeps: streaming
reads/writes that bypass the L1 and sweep across all memory partitions so
every L2 slice (and hence the full interconnect path) is exercised.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..config import GpuConfig
from .coalescer import lane_addresses_uncoalesced
from .kernel import Kernel
from .warp import MemOp, WaitCycles, WarpContext, WarpProgram, READ, WRITE


def streaming_program(
    context: WarpContext,
) -> WarpProgram:
    """Algorithm 1's body: ``amount`` sequential strided memory ops.

    Kernel args (``context.args``):

    ``kind``           ``"read"`` or ``"write"``.
    ``ops``            Warp-level memory instructions to execute.
    ``base``           Base byte address for this kernel's array.
    ``line_bytes``     Cache line size (lane stride granularity).
    ``uncoalesced``    If True (default) every lane touches its own line —
                       32 transactions per op; if False the op coalesces to
                       a single transaction.
    ``duty``           Fraction of ops actually issued (the 'fraction of
                       memory access' x-axis of Figures 8 and 11); skipped
                       ops become equivalent idle cycles.
    ``footprint_lines``Lines in the array before wrapping (keeps the
                       working set inside the preloaded L2 region).
    ``active_sms``     Algorithm 1's smid gate: if set, blocks landing on
                       other SMs exit immediately, so only the selected
                       SMs produce traffic.
    ``region_stride``  Per-SM address-space separation: each SM works on
                       ``base + sm_id * region_stride`` (Algorithm 1 uses
                       disjoint arrays ``arr_A``/``arr_B`` per SM).
    ``durations``      Optional dict; each active warp stores its measured
                       execution time (clock() delta on its own SM) under
                       key ``(sm_id, block_id, warp_id)``.
    """
    from .warp import ReadClock

    args = context.args
    active_sms = args.get("active_sms")
    if active_sms is not None and context.sm_id not in active_sms:
        return
    kind = args["kind"]
    ops = args["ops"]
    base = args.get("base", 0) + context.sm_id * args.get("region_stride", 0)
    line_bytes = args["line_bytes"]
    uncoalesced = args.get("uncoalesced", True)
    duty = args.get("duty", 1.0)
    overrides = args.get("duty_overrides")
    if overrides is not None:
        duty = overrides.get(context.sm_id, duty)
    footprint_lines = args.get("footprint_lines", 4096)
    durations = args.get("durations")
    start_clock = 0
    if durations is not None:
        start_clock = yield ReadClock()
    lanes = context.lanes if uncoalesced else 1
    #: Idle time standing in for a skipped op (roughly one op's issue time).
    skip_cycles = args.get("skip_cycles", lanes)

    # Each warp strides through a disjoint region so requests always miss
    # the coalescer and spread over all L2 slices.
    warp_lines = footprint_lines // max(1, lanes)
    issued = 0.0
    for op_index in range(ops):
        issued += duty
        if issued < 1.0:
            yield WaitCycles(skip_cycles)
            continue
        issued -= 1.0
        # Stagger warps within a block so concurrent warps stream through
        # different lines of the array (no same-cycle same-slice pileup).
        phase = context.warp_id * 13
        line_offset = ((op_index + phase) * lanes) % max(1, warp_lines * lanes)
        op_base = base + line_offset * line_bytes
        addresses = lane_addresses_uncoalesced(
            op_base, line_bytes, lanes=lanes
        )
        yield MemOp(kind, addresses)
    if durations is not None:
        end_clock = yield ReadClock()
        key = (context.sm_id, context.block_id, context.warp_id)
        durations[key] = end_clock - start_clock


def make_streaming_kernel(
    config: GpuConfig,
    kind: str,
    ops: int,
    base: int = 0,
    num_blocks: int = 1,
    warps_per_block: int = 1,
    duty: float = 1.0,
    duty_overrides: Optional[dict] = None,
    uncoalesced: bool = True,
    footprint_lines: Optional[int] = None,
    active_sms: Optional[set] = None,
    durations: Optional[dict] = None,
    region_stride: int = 0,
    name: Optional[str] = None,
) -> Kernel:
    """Build a streaming read/write kernel (Algorithm 1 style).

    The default footprint covers a multiple of the L2 slice count so all
    memory partitions are touched, as the paper's benchmark requires.
    ``active_sms``/``durations`` implement Algorithm 1's smid gate and the
    per-SM clock()-delta execution-time measurement.
    """
    if footprint_lines is None:
        footprint_lines = config.num_l2_slices * 64
    return Kernel(
        streaming_program,
        num_blocks=num_blocks,
        warps_per_block=warps_per_block,
        args={
            "kind": kind,
            "ops": ops,
            "base": base,
            "line_bytes": config.l2_line_bytes,
            "duty": duty,
            "duty_overrides": duty_overrides,
            "uncoalesced": uncoalesced,
            "footprint_lines": footprint_lines,
            "active_sms": active_sms,
            "durations": durations,
            "region_stride": region_stride,
        },
        name=name or f"stream-{kind}",
    )


def kernel_footprint_bytes(config: GpuConfig, kernel: Kernel) -> int:
    """Bytes the kernel's array spans (for L2 preloading)."""
    lines = kernel.args.get("footprint_lines", config.num_l2_slices * 64)
    return lines * config.l2_line_bytes


def clock_survey_program(context: WarpContext) -> WarpProgram:
    """Kernel that just returns clock() from its SM (Figure 6).

    The observed value is stored in ``context.args['results'][sm_id]``.
    """
    from .warp import ReadClock

    value = yield ReadClock()
    context.args["results"][context.sm_id] = value

"""HBM2-style memory controllers behind the L2 slices.

Each controller owns a fixed group of L2 slices (Table 1: 48 slices over
24 MCs) and serves their miss traffic with a banked open-row timing model
built from the :class:`~repro.config.DramTiming` parameters.  The model is
deliberately coarse — the covert channel operates out of the L2, and DRAM
matters only as the *noise source* the paper discusses in Section 5 (a
third kernel thrashing the L2 pushes channel traffic to main memory and
destroys the channel).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..config import DramTiming
from ..sim.engine import Component, FOREVER
from ..sim.stats import StatsRegistry
from ..telemetry.events import DRAM_COMPLETE, DRAM_ISSUE
from .caches import SetAssociativeCache  # noqa: F401  (re-export convenience)


class MemoryController(Component):
    """FIFO-scheduled controller with per-bank open rows.

    Requests arrive via :meth:`enqueue` as ``(address, is_write, token)``;
    when the access completes, ``on_complete(token, cycle)`` fires (the L2
    slice uses it to fill the line and release the waiting transaction).
    """

    #: Bytes per DRAM row (page) for row-hit accounting.
    ROW_BYTES = 2048
    #: Banks per controller.
    NUM_BANKS = 8
    #: Data-burst cycles per access on top of the row timing.
    BURST_CYCLES = 4

    def __init__(
        self,
        name: str,
        timing: DramTiming,
        on_complete: Callable[[object, int], None],
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        self.name = name
        self.timing = timing
        self.on_complete = on_complete
        self.stats = stats
        self._queue: Deque[Tuple[int, bool, object]] = deque()
        self._open_row: Dict[int, int] = {}
        self._bank_ready: Dict[int, int] = {}
        self._in_flight: List[Tuple[int, object, int]] = []
        # -- telemetry (None unless the device enables it) -------------- #
        self._tracer = None
        self._tl_id = 0

    def attach_telemetry(self, hub) -> None:
        """Opt this controller into issue/complete event tracing."""
        self._tracer = hub.tracer
        self._tl_id = hub.register(self.name)

    def enqueue(self, address: int, is_write: bool, token: object) -> None:
        self._queue.append((address, is_write, token))
        self.wake()
        if self.stats is not None:
            self.stats.incr(f"{self.name}.requests")

    def pending(self) -> int:
        return len(self._queue) + len(self._in_flight)

    def tick(self, cycle: int) -> None:
        # Complete finished accesses.
        if self._in_flight:
            still = [
                entry for entry in self._in_flight if entry[0] > cycle
            ]
            for ready, token, address in self._in_flight:
                if ready <= cycle:
                    if self._tracer is not None:
                        self._tracer.emit(cycle, DRAM_COMPLETE, self._tl_id,
                                          address)
                    self.on_complete(token, cycle)
            self._in_flight = still
        # Start new accesses on ready banks (FIFO, one start per cycle).
        if not self._queue:
            return
        address, is_write, token = self._queue[0]
        row = address // self.ROW_BYTES
        bank = row % self.NUM_BANKS
        if self._bank_ready.get(bank, 0) > cycle:
            return
        timing = self.timing
        open_row = self._open_row.get(bank)
        if open_row == row:
            access = timing.row_hit_latency
            if self.stats is not None:
                self.stats.incr(f"{self.name}.row_hits")
        elif open_row is None:
            access = timing.t_rcd + timing.t_cl
        else:
            access = timing.row_miss_latency
            if self.stats is not None:
                self.stats.incr(f"{self.name}.row_misses")
        latency = access + self.BURST_CYCLES + timing.t_overhead
        self._queue.popleft()
        self._open_row[bank] = row
        self._bank_ready[bank] = cycle + latency
        self._in_flight.append((cycle + latency, token, address))
        if self._tracer is not None:
            self._tracer.emit(cycle, DRAM_ISSUE, self._tl_id, address)

    def idle_until(self, cycle: int):
        """Idle until the next in-flight completion or bank-ready time.

        With an empty queue and no in-flight accesses the controller is
        purely reactive (:meth:`enqueue` wakes it).  A queued head whose
        bank is still busy parks the controller until the bank frees.
        """
        wake = FOREVER
        for ready, _, _ in self._in_flight:
            if ready < wake:
                wake = ready
        if self._queue:
            address = self._queue[0][0]
            bank = (address // self.ROW_BYTES) % self.NUM_BANKS
            bank_ready = self._bank_ready.get(bank, 0)
            if bank_ready <= cycle:
                return None  # head can start next tick
            if bank_ready < wake:
                wake = bank_ready
        return wake

    def state_digest(self):
        """Queue/bank/in-flight state (lockstep oracle).

        Tokens are ``(l2_slice, packet)`` pairs from the L2; only the
        packet half is comparable across devices, which is enough — the
        slice is implied by the address.
        """

        def token_sig(token):
            packet = token[1] if isinstance(token, tuple) else None
            return None if packet is None else packet.signature()

        return (
            tuple(
                (address, is_write, token_sig(token))
                for address, is_write, token in self._queue
            ),
            tuple(sorted(self._open_row.items())),
            tuple(sorted(self._bank_ready.items())),
            tuple(
                sorted(
                    (ready, address, token_sig(token))
                    for ready, token, address in self._in_flight
                )
            ),
        )

    def reset(self) -> None:
        self._queue.clear()
        self._open_row.clear()
        self._bank_ready.clear()
        self._in_flight.clear()

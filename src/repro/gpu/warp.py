"""Warp programs: the behavioural ISA of the simulated SM.

Instead of modelling a full instruction set, each warp runs a *warp
program*: a Python generator that yields :class:`Action` objects to the SM
and is resumed with the action's result.  This maps one-to-one onto the
CUDA kernels of the paper — a kernel is a warp-program factory, and the
actions cover exactly what the attack needs:

* ``MemOp``   — a warp memory instruction (lane addresses -> coalesced
  transactions -> NoC).  Resumed with the measured latency in cycles,
  which is the receiver's probe measurement.
* ``ReadClock`` — read the per-SM ``clock()`` register.
* ``WaitClockMask`` — busy-wait until ``clock() & mask == target``
  (Algorithm 2's Synchronization()).
* ``WaitUntilClock`` — busy-wait until ``clock() >= value`` (slot timing).
* ``WaitCycles`` — sleep a fixed number of cycles.

Example
-------
A minimal streaming-write kernel (Algorithm 1's body)::

    def program(ctx):
        for i in range(amount):
            yield MemOp(WRITE, [base + i * 4])
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence

from ..noc.packet import READ, WRITE  # noqa: F401  (re-export for kernels)


@dataclass
class Action:
    """Base class of everything a warp program may yield."""


@dataclass
class MemOp(Action):
    """A warp-level memory instruction.

    Parameters
    ----------
    kind:
        ``"read"`` or ``"write"``.
    addresses:
        Per-lane byte addresses (any length up to the SIMT width); the
        SM's coalescer merges them into transactions.
    wait_for_completion:
        If True (default for reads) the warp blocks until every
        transaction's reply has returned and is resumed with the latency.
        If False (default for writes) the warp is resumed as soon as the
        last transaction has been accepted by the memory system (posted
        stores) and the latency reflects only the issue time.
    device:
        Target device id for multi-GPU systems.  ``None`` (the default)
        targets the issuing SM's own device through the on-chip NoC; an
        integer routes the access over the inter-GPU fabric to that
        device's L2 (NVLink-style peer access), bypassing the local L1.
    """

    kind: str
    addresses: Sequence[int]
    wait_for_completion: Optional[bool] = None
    device: Optional[int] = None

    def blocking(self) -> bool:
        if self.wait_for_completion is None:
            return self.kind == READ
        return self.wait_for_completion


@dataclass
class ReadClock(Action):
    """Resume next cycle with the SM's ``clock()`` value."""


@dataclass
class WaitClockMask(Action):
    """Busy-wait until ``clock() & mask == target`` (coarse resync)."""

    mask: int
    target: int


@dataclass
class WaitUntilClock(Action):
    """Busy-wait until ``clock() >= value`` (slot-boundary wait)."""

    value: int


@dataclass
class WaitCycles(Action):
    """Sleep for a fixed number of SM cycles."""

    cycles: int


#: Type alias for warp program generators.
WarpProgram = Generator[Action, object, None]


# Warp run states ------------------------------------------------------- #
NEW = "new"
READY = "ready"
ISSUING = "issuing"
WAIT_MEM = "wait_mem"
SLEEP = "sleep"
DONE = "done"


@dataclass
class WarpContext:
    """Execution context handed to warp-program factories.

    Mirrors what a CUDA kernel can observe: grid/block/warp coordinates
    plus the special registers (``%smid`` via :attr:`sm_id`).
    """

    block_id: int
    warp_id: int
    sm_id: int
    lanes: int
    #: Arbitrary per-launch payload (kernel arguments).
    args: dict = field(default_factory=dict)


class WarpSlot:
    """Bookkeeping for one resident warp inside an SM."""

    __slots__ = (
        "context",
        "program",
        "state",
        "resume_value",
        "wake_cycle",
        "pending_issue",
        "outstanding",
        "op_start_cycle",
        "op_blocking",
        "op_group",
    )

    def __init__(self, context: WarpContext, program: WarpProgram) -> None:
        self.context = context
        self.program = program
        self.state = NEW
        #: Value to send into the generator on next resume.
        self.resume_value: object = None
        #: Engine cycle at which a SLEEP state ends.
        self.wake_cycle = 0
        #: Transactions of the current MemOp not yet injected.
        self.pending_issue: List = []
        #: Injected transactions whose replies are still outstanding.
        self.outstanding = 0
        self.op_start_cycle = 0
        self.op_blocking = False
        self.op_group = -1

    @property
    def done(self) -> bool:
        return self.state == DONE

"""Streaming Multiprocessor model.

An SM hosts resident warps (each running a warp program), schedules their
memory instructions through the coalescer and LSU, and injects the
resulting transactions into its NoC injection queue — the entry point of
the shared TPC channel the covert channel exploits.

Timing behaviour that the paper's contention shapes depend on:

* **Reads are windowed.**  At most ``sm_mshrs`` read transactions may be
  outstanding; with a ~220-cycle round trip this caps a single SM's read
  rate well below the TPC channel width, so two SMs' reads do not contend
  at the TPC mux (Figure 5a, Read).
* **Writes are posted.**  Stores retire once injected (bounded by
  ``sm_write_buffer`` credits returned by the write acks), so a streaming
  writer saturates its injection channel — one co-located writer halves
  the other SM's bandwidth (Figures 2, 5a, 8).
* **One transaction injected per cycle** through the LSU, backpressured by
  the injection queue; this is the per-SM demand the muxes arbitrate.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from ..config import GpuConfig
from ..noc.buffer import PacketQueue
from ..noc.packet import Packet, READ, WRITE
from ..sim.engine import Component, FOREVER
from ..sim.stats import StatsRegistry
from ..telemetry.events import READ_RTT, SM_INJECT
from .caches import L1Cache
from .coalescer import coalesce
from .warp import (
    DONE,
    ISSUING,
    NEW,
    READY,
    SLEEP,
    WAIT_MEM,
    MemOp,
    ReadClock,
    WaitClockMask,
    WaitCycles,
    WaitUntilClock,
    WarpContext,
    WarpProgram,
    WarpSlot,
)


class _Transaction:
    """One coalesced memory transaction in flight from a warp."""

    __slots__ = ("warp", "kind", "address", "sm_id", "device")

    def __init__(
        self,
        warp: WarpSlot,
        kind: str,
        address: int,
        sm_id: int,
        device: Optional[int] = None,
    ):
        self.warp = warp
        self.kind = kind
        self.address = address
        self.sm_id = sm_id
        #: Remote target device id; None for a local (on-chip) access.
        self.device = device


class StreamingMultiprocessor(Component):
    """One SM: warp scheduler + coalescer + LSU + L1 + clock register."""

    def __init__(
        self,
        sm_id: int,
        config: GpuConfig,
        inject_queue: PacketQueue,
        read_clock: Callable[[int], int],
        stats: Optional[StatsRegistry] = None,
        l1_enabled: bool = False,
        seed_salt: int = 0,
        device_id: int = 0,
        remote_queue: Optional[PacketQueue] = None,
    ) -> None:
        self.sm_id = sm_id
        self.name = f"sm{sm_id}"
        self.config = config
        self.inject_queue = inject_queue
        #: Device this SM belongs to (multi-GPU systems; 0 standalone).
        self.device_id = device_id
        #: Egress queue toward the inter-GPU fabric.  Remote ``MemOp``s
        #: inject here instead of the on-chip NoC; None on a standalone
        #: device, where remote ops are a configuration error.
        self.remote_queue = remote_queue
        self._read_clock = read_clock
        self.stats = stats
        self.l1 = L1Cache(
            config.l1_size_bytes,
            config.l1_line_bytes,
            config.l1_ways,
            config.l1_hit_latency,
            enabled=l1_enabled,
        )
        self.warps: List[WarpSlot] = []
        self._sched_pointer = 0
        self._read_credits = config.sm_mshrs
        self._write_credits = config.sm_write_buffer
        self._group_counter = 0
        #: (ready_cycle, warp) pairs for L1 read hits completing later.
        self._l1_returns: List = []
        #: Per-op timing noise (scheduler wake-up jitter etc.), seeded.
        self._noise = config.timing_noise
        self._noise_seed = (config.seed << 8) ^ 0x5A17 ^ sm_id ^ (seed_salt << 20)
        self._rng = random.Random(self._noise_seed)
        #: Hook fired when a warp finishes (wired by the device to wake
        #: the thread-block scheduler so it can retire/promote/dispatch).
        self.on_warp_done: Optional[Callable[[], None]] = None
        #: Round-trip latency histogram (fixed buckets, percentile
        #: queries) alongside the sampler's running aggregates.
        self._lat_hist = (
            None if stats is None
            else stats.histogram(f"{self.name}.read_latency")
        )
        # -- telemetry (None unless the device enables it) -------------- #
        self._tracer = None
        self._tl_id = 0
        #: Conservation checker (None unless the device enables
        #: validation); same one-branch-when-disabled pattern as _tracer.
        self._validator = None
        # -- vector mode -------------------------------------------------- #
        #: Set by the device under ``strategy="vector"``: a backpressure-
        #: blocked LSU parks reactively (the injection queue's pop hook
        #: and reply deliveries wake the SM) instead of retrying every
        #: cycle.  The retry ticks it skips are state-preserving no-ops,
        #: so skipping them is cycle-exact.
        self._vec = False
        #: True when this tick's last issue attempt was refused (queue
        #: full or out of credits); cleared whenever the LSU runs.
        self._blocked = False

    def attach_telemetry(self, hub) -> None:
        """Opt this SM into flit-lifecycle event tracing."""
        self._tracer = hub.tracer
        self._tl_id = hub.register(self.name)

    # ------------------------------------------------------------------ #
    # Occupancy / launch interface (used by the thread-block scheduler).
    # ------------------------------------------------------------------ #
    @property
    def smid(self) -> int:
        """The %smid special register."""
        return self.sm_id

    def clock(self) -> int:
        """The clock() intrinsic: per-SM 32-bit cycle register."""
        return self._read_clock(self.sm_id)

    def add_warp(self, context: WarpContext, program: WarpProgram) -> WarpSlot:
        if len(self.warps) >= self.config.max_warps_per_sm:
            raise RuntimeError(f"{self.name}: warp occupancy exceeded")
        slot = WarpSlot(context, program)
        self.warps.append(slot)
        self.wake()
        return slot

    @property
    def active_warps(self) -> int:
        return sum(1 for warp in self.warps if warp.state != DONE)

    @property
    def idle(self) -> bool:
        return self.active_warps == 0 and not self._l1_returns

    def retire_finished_warps(self) -> None:
        """Drop DONE warps so completed blocks free their slots."""
        self.warps = [warp for warp in self.warps if warp.state != DONE]
        self._sched_pointer = 0

    # ------------------------------------------------------------------ #
    # Per-cycle execution.
    # ------------------------------------------------------------------ #
    def tick(self, cycle: int) -> None:
        warps = self.warps
        if not warps and not self._l1_returns:
            return
        if self._l1_returns:
            self._complete_l1_returns(cycle)
        # Resume runnable warps (generator steps are cheap and represent
        # ALU work done in parallel with memory: all runnable warps may
        # advance to their next action in one cycle).
        for warp in warps:
            state = warp.state
            if state == NEW or state == READY:
                self._advance(warp, cycle)
            elif state == SLEEP and cycle >= warp.wake_cycle:
                warp.state = READY
                self._advance(warp, cycle)
        # LSU: inject up to issue-width transactions.  A warp memory
        # instruction's transactions are issued *contiguously* (the
        # coalescer emits them as one batch), so packets from different
        # warps never interleave mid-op — which is also what makes
        # warp-group (CRR) arbitration meaningful downstream.  The LSU
        # rotates between warps only at op boundaries.
        budget = self.config.sm_issue_width
        num = len(warps)
        if num == 0:
            return
        self._blocked = False
        while budget > 0:
            current = self._current_issue_warp()
            if current is None:
                break
            if self._issue_one(current, cycle):
                budget -= 1
                if not current.pending_issue:
                    # Op batch complete: rotate to the next warp.
                    self._sched_pointer = (
                        warps.index(current) + 1
                    ) % num
            else:
                self._blocked = True
                break  # blocked on credits or queue space

    def _current_issue_warp(self) -> Optional[WarpSlot]:
        """The warp whose op batch the LSU is currently draining.

        Sticks with an in-progress batch; otherwise picks the next
        ISSUING warp in round-robin order from the scheduler pointer.
        """
        warps = self.warps
        num = len(warps)
        for offset in range(num):
            warp = warps[(self._sched_pointer + offset) % num]
            if warp.state == ISSUING and warp.pending_issue:
                if offset:
                    self._sched_pointer = (self._sched_pointer + offset) % num
                return warp
        return None

    # -- generator stepping -------------------------------------------- #
    def _advance(self, warp: WarpSlot, cycle: int) -> None:
        """Drive the warp's generator until it blocks on a slow action."""
        while True:
            try:
                action = warp.program.send(
                    None if warp.state == NEW else warp.resume_value
                )
            except StopIteration:
                warp.state = DONE
                if self.on_warp_done is not None:
                    self.on_warp_done()
                return
            warp.state = READY
            warp.resume_value = None
            if isinstance(action, MemOp):
                self._start_mem_op(warp, action, cycle)
                return
            if isinstance(action, ReadClock):
                warp.resume_value = self.clock()
                warp.state = SLEEP
                warp.wake_cycle = cycle + 1
                return
            if isinstance(action, WaitCycles):
                warp.state = SLEEP
                warp.wake_cycle = cycle + max(1, action.cycles)
                return
            if isinstance(action, WaitUntilClock):
                self._sleep_until_clock(warp, cycle, action.value)
                return
            if isinstance(action, WaitClockMask):
                self._sleep_until_mask(warp, cycle, action.mask, action.target)
                return
            raise TypeError(f"unknown warp action: {action!r}")

    def _sleep_until_clock(self, warp: WarpSlot, cycle: int, value: int) -> None:
        """Busy-wait until clock() >= value, computed analytically."""
        now = self.clock()
        delta = value - now
        warp.state = SLEEP
        warp.wake_cycle = cycle + max(1, delta)

    def _sleep_until_mask(
        self, warp: WarpSlot, cycle: int, mask: int, target: int
    ) -> None:
        """Busy-wait until ``clock() & mask == target``.

        Solved arithmetically: a poll loop would observe the first cycle
        where the masked clock matches, which for a contiguous low-bit
        mask is periodic with period mask+1.
        """
        if mask & (mask + 1):
            raise ValueError("WaitClockMask requires a contiguous low mask")
        period = mask + 1
        now = self.clock()
        delta = (target - now) % period
        if delta == 0:
            delta = period  # "the *next* boundary", matching a poll loop
        warp.state = SLEEP
        warp.wake_cycle = cycle + delta

    # -- memory pipeline ------------------------------------------------ #
    def _start_mem_op(self, warp: WarpSlot, op: MemOp, cycle: int) -> None:
        if op.kind not in (READ, WRITE):
            raise ValueError(f"bad MemOp kind {op.kind!r}")
        lines = coalesce(op.addresses, self.config.l2_line_bytes)
        if self.stats is not None:
            self.stats.incr(f"{self.name}.mem_ops")
            self.stats.incr(f"{self.name}.transactions", len(lines))
        warp.op_start_cycle = cycle
        warp.op_blocking = op.blocking()
        self._group_counter += 1
        warp.op_group = (self.sm_id << 20) | self._group_counter
        warp.outstanding = 0
        remote = op.device is not None and op.device != self.device_id
        if remote and self.remote_queue is None:
            raise RuntimeError(
                f"{self.name}: remote MemOp targets device {op.device} "
                "but this SM has no inter-GPU fabric attached"
            )
        if remote:
            # Peer accesses bypass the local L1 entirely (NVLink peer
            # loads/stores are not cached on the requesting die) and
            # enter the fabric egress instead of the on-chip NoC.
            warp.pending_issue = [
                _Transaction(warp, op.kind, address, self.sm_id, op.device)
                for address in lines
            ]
            warp.state = ISSUING
            return
        pending: List[_Transaction] = []
        for address in lines:
            if op.kind == READ and self.l1.lookup_read(address):
                # L1 hit: completes locally after the hit latency.
                warp.outstanding += 1
                self._l1_returns.append(
                    (cycle + self.l1.hit_latency, warp)
                )
                if self.stats is not None:
                    self.stats.incr(f"{self.name}.l1_hits")
                continue
            if op.kind == WRITE:
                self.l1.note_write(address)
            pending.append(_Transaction(warp, op.kind, address, self.sm_id))
        warp.pending_issue = pending
        if pending or (warp.op_blocking and warp.outstanding):
            warp.state = ISSUING if pending else WAIT_MEM
        else:
            # Entire op served by L1 without blocking (pure hit, posted).
            warp.resume_value = self.l1.hit_latency
            warp.state = SLEEP
            warp.wake_cycle = cycle + 1

    def _issue_one(self, warp: WarpSlot, cycle: int) -> bool:
        """Try to inject the warp's next transaction; True on success."""
        txn: _Transaction = warp.pending_issue[0]
        if txn.kind == READ:
            if self._read_credits <= 0:
                return False
            flits = self.config.read_request_flits
        else:
            if self._write_credits <= 0:
                return False
            flits = self.config.write_request_flits
        packet = Packet(
            kind=txn.kind,
            address=txn.address,
            flits=flits,
            src_sm=self.sm_id,
            slice_id=self.config.address_to_slice(txn.address),
            warp_ref=warp,
            group_id=warp.op_group,
            birth_cycle=cycle,
            src_device=self.device_id,
            dst_device=(
                self.device_id if txn.device is None else txn.device
            ),
        )
        queue = (
            self.inject_queue if txn.device is None else self.remote_queue
        )
        if not queue.push(packet):
            return False
        if txn.kind == READ:
            self._read_credits -= 1
        else:
            self._write_credits -= 1
        warp.pending_issue.pop(0)
        warp.outstanding += 1
        if self.stats is not None:
            self.stats.incr(f"{self.name}.injected")
        if self._tracer is not None:
            self._tracer.emit(cycle, SM_INJECT, self._tl_id, packet.uid,
                              1 if txn.kind == WRITE else 0,
                              packet.slice_id)
        if self._validator is not None:
            self._validator.note_inject(packet, cycle)
        if not warp.pending_issue:
            self._finish_issue_phase(warp, cycle)
        return True

    def _op_done(self, warp: WarpSlot, cycle: int) -> None:
        """Complete a memory op: apply the timing-noise model and resume.

        The uniform 0..timing_noise delay stands in for the system effects
        a real GPU adds to every warp wake-up (scheduler jitter, replays),
        which is the error floor of low-iteration covert-channel slots.
        """
        latency = cycle - warp.op_start_cycle
        if self._noise:
            jitter = self._rng.randrange(0, self._noise + 1)
            latency += jitter
            warp.resume_value = latency
            warp.state = SLEEP
            warp.wake_cycle = cycle + max(1, jitter)
        else:
            warp.resume_value = latency
            warp.state = READY

    def _finish_issue_phase(self, warp: WarpSlot, cycle: int) -> None:
        if warp.op_blocking and warp.outstanding > 0:
            warp.state = WAIT_MEM
        else:
            # Posted op: retires once issued; latency observed = issue time.
            self._op_done(warp, cycle)

    def deliver_reply(self, packet: Packet, cycle: int) -> None:
        """Reply-subnet delivery: credit the warp and maybe wake it."""
        self.wake()
        if packet.kind == READ:
            self._read_credits += 1
            if packet.dst_device == self.device_id:
                # Remote reads are not cached locally (peer accesses
                # bypass the L1 in both directions).
                self.l1.fill(packet.address)
        else:
            self._write_credits += 1
        warp = packet.warp_ref
        if warp is None:
            return
        # Credit the warp only if this reply belongs to its *current*
        # blocking op (a late posted-write ack must not complete a newer
        # op it doesn't belong to).
        if warp.op_blocking and packet.group_id == warp.op_group:
            warp.outstanding -= 1
            if warp.outstanding <= 0 and warp.state == WAIT_MEM:
                if packet.kind == READ:
                    latency = cycle - warp.op_start_cycle
                    if self.stats is not None:
                        self.stats.sample(
                            f"{self.name}.read_latency", latency
                        )
                        self._lat_hist.add(latency)
                    if self._tracer is not None:
                        self._tracer.emit(cycle, READ_RTT, self._tl_id,
                                          latency, packet.uid)
                self._op_done(warp, cycle)

    def _complete_l1_returns(self, cycle: int) -> None:
        remaining = []
        for ready, warp in self._l1_returns:
            if ready <= cycle:
                warp.outstanding -= 1
                if (
                    warp.outstanding <= 0
                    and warp.state == WAIT_MEM
                    and not warp.pending_issue
                ):
                    self._op_done(warp, cycle)
            else:
                remaining.append((ready, warp))
        self._l1_returns = remaining

    def idle_until(self, cycle: int) -> Optional[int]:
        """Activity contract: an SM sleeps when no warp is runnable.

        Warps in ``NEW``/``READY``/``ISSUING`` keep the SM active every
        cycle (ISSUING may be retrying against backpressure); ``SLEEP``
        warps and pending L1 returns contribute their wake-up cycles;
        ``WAIT_MEM``/``DONE`` warps are purely reactive (the reply path
        calls :meth:`deliver_reply`, which wakes the SM).
        """
        wake = FOREVER
        parked_issuing = self._vec and self._blocked
        for warp in self.warps:
            state = warp.state
            if state == SLEEP:
                if warp.wake_cycle < wake:
                    wake = warp.wake_cycle
            elif state == ISSUING and parked_issuing:
                # Vector mode: the LSU is backpressure-blocked; retry
                # ticks are no-ops until the injection queue's pop hook
                # or a reply delivery wakes the SM, so park reactively.
                continue
            elif state != WAIT_MEM and state != DONE:
                return None  # NEW / READY / ISSUING: busy
        for ready, _ in self._l1_returns:
            if ready < wake:
                wake = ready
        return wake

    def state_digest(self):
        """Warp, credit, and rng state (lockstep oracle).

        Warp slots are summarised by their scheduler-visible fields; warp
        program generators themselves advance deterministically given the
        same resume sequence, so they need no direct representation.
        """
        return (
            tuple(
                (
                    warp.state,
                    warp.wake_cycle,
                    warp.outstanding,
                    len(warp.pending_issue),
                    warp.op_group,
                    warp.op_blocking,
                    warp.op_start_cycle,
                )
                for warp in self.warps
            ),
            self._sched_pointer,
            self._read_credits,
            self._write_credits,
            tuple(sorted(ready for ready, _ in self._l1_returns)),
            hash(self._rng.getstate()[1]),
            self.inject_queue.state_digest(),
            (
                None if self.remote_queue is None
                else self.remote_queue.state_digest()
            ),
        )

    def reset(self) -> None:
        self.warps.clear()
        self._sched_pointer = 0
        self._read_credits = self.config.sm_mshrs
        self._write_credits = self.config.sm_write_buffer
        self._l1_returns.clear()
        self.l1.cache.reset()  # invalidate AND reseed the replacement rng
        self._rng = random.Random(self._noise_seed)

"""Prometheus text exposition for :class:`MetricsRegistry`.

Renders the registry in the Prometheus text format (version 0.0.4):
``# HELP``/``# TYPE`` headers followed by one sample line per series.
Kind mapping:

* counter → ``counter``
* gauge → ``gauge``
* sampler → ``summary`` (``_count`` and ``_sum`` lines; quantiles are
  not tracked by :class:`~repro.sim.stats.Sampler`, so none are emitted)
* histogram → ``histogram`` (cumulative ``_bucket{le=...}`` lines, the
  mandatory ``+Inf`` bucket, ``_sum`` and ``_count``)

Fixed-width simulator histograms carry hundreds of mostly-empty buckets;
to keep the exposition readable only bucket edges where the cumulative
count *changes* are emitted (plus ``+Inf``).  Scrapers treat cumulative
buckets as a step function, so eliding flat steps loses nothing.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping

from .registry import MetricsRegistry

_TYPE_BY_KIND = {
    "counter": "counter",
    "gauge": "gauge",
    "sampler": "summary",
    "histogram": "histogram",
}


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _format(value: Any) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _histogram_lines(
    name: str, labels: Mapping[str, str], state: Mapping[str, Any]
) -> List[str]:
    lines: List[str] = []
    width = int(state.get("bucket_width", 16))
    cumulative = 0
    previous = -1
    for index, bucket_count in enumerate(state.get("buckets") or ()):
        cumulative += int(bucket_count)
        if cumulative != previous:
            edge = 'le="%s"' % _format((index + 1) * width)
            lines.append(
                f"{name}_bucket{_labels(labels, edge)} {cumulative}"
            )
            previous = cumulative
    total = int(state.get("count", 0))
    inf_edge = 'le="+Inf"'
    lines.append(f"{name}_bucket{_labels(labels, inf_edge)} {total}")
    lines.append(f"{name}_sum{_labels(labels)} {_format(state.get('total', 0.0))}")
    lines.append(f"{name}_count{_labels(labels)} {total}")
    return lines


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus exposition text (trailing newline)."""
    manifest = registry.to_manifest()
    return render_manifest_prometheus(manifest)


def render_manifest_prometheus(manifest: Mapping[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.to_manifest` payload directly.

    Accepting the manifest (not the registry) means a sweep's stored JSON
    can be re-rendered to Prometheus text later without replaying it into
    a live registry.
    """
    lines: List[str] = []
    metrics: Dict[str, Any] = manifest.get("metrics") or {}
    for name in sorted(metrics):
        family = metrics[name]
        kind = family.get("kind", "gauge")
        help_text = family.get("help") or ""
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {_TYPE_BY_KIND.get(kind, 'untyped')}")
        for entry in family.get("series", ()):
            labels = entry.get("labels") or {}
            if kind == "counter" or kind == "gauge":
                lines.append(
                    f"{name}{_labels(labels)} {_format(entry.get('value', 0))}"
                )
            elif kind == "sampler":
                summary = entry.get("summary") or {}
                lines.append(
                    f"{name}_count{_labels(labels)} "
                    f"{_format(summary.get('count', 0))}"
                )
                lines.append(
                    f"{name}_sum{_labels(labels)} "
                    f"{_format(summary.get('total', 0.0))}"
                )
            else:  # histogram
                lines.extend(_histogram_lines(
                    name, labels, entry.get("histogram") or {}
                ))
    return "\n".join(lines) + "\n" if lines else ""

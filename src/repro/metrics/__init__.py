"""The per-process metrics plane.

Labeled counters / gauges / samplers / histograms in a mergeable
registry (:mod:`.registry`), Prometheus text exposition
(:mod:`.exposition`), sampled engine self-profiling (:mod:`.profile`),
live sweep progress rendering (:mod:`.progress`), and bench-trajectory
history with trailing-median regression detection (:mod:`.history`).

This plane is deliberately distinct from :mod:`repro.telemetry`:
telemetry records *simulated* events inside one GPU model (flit
lifecycles, cycle-stamped timelines); metrics record what the *service*
around the simulator did (jobs, retries, cache hits, profiler samples)
and aggregate across worker shards.
"""

from .exposition import render_manifest_prometheus, render_prometheus
from .history import (
    DEFAULT_THRESHOLD,
    DEFAULT_WINDOW,
    HISTORY_FILE,
    HistoryCheck,
    Regression,
    append_history,
    bench_config_hash,
    bench_record,
    check_history,
    host_fingerprint,
    load_history,
)
from .profile import DEFAULT_INTERVAL, EngineProfiler
from .progress import SweepProgress
from .registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    get_registry,
    scoped_registry,
)

__all__ = [
    "Counter",
    "DEFAULT_INTERVAL",
    "DEFAULT_THRESHOLD",
    "DEFAULT_WINDOW",
    "EngineProfiler",
    "Gauge",
    "HISTORY_FILE",
    "HistoryCheck",
    "MetricsRegistry",
    "Regression",
    "SweepProgress",
    "append_history",
    "bench_config_hash",
    "bench_record",
    "check_history",
    "get_registry",
    "host_fingerprint",
    "load_history",
    "render_manifest_prometheus",
    "render_prometheus",
    "scoped_registry",
]

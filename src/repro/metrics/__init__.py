"""The per-process metrics plane.

Labeled counters / gauges / samplers / histograms in a mergeable
registry (:mod:`.registry`), Prometheus text exposition
(:mod:`.exposition`), sampled engine self-profiling (:mod:`.profile`),
live sweep progress rendering (:mod:`.progress`), and bench-trajectory
history with trailing-median regression detection (:mod:`.history`).

This plane is deliberately distinct from :mod:`repro.telemetry`:
telemetry records *simulated* events inside one GPU model (flit
lifecycles, cycle-stamped timelines); metrics record what the *service*
around the simulator did (jobs, retries, cache hits, profiler samples)
and aggregate across worker shards.

Well-known families published by the runner stack:

* ``sweep_jobs_total`` / ``sweep_attempts_total`` / ``sweep_retries_total``
  — supervised sweep execution (:mod:`repro.runner.supervisor`);
* ``cache_ops_total{op=hit|miss|put|eviction}`` — the shared artifact
  store (:class:`repro.runner.cache.ResultCache`);
* ``service_requests_total`` / ``service_jobs_total{state=...}`` /
  ``service_inflight_jobs`` — the async sweep service
  (:mod:`repro.runner.service`);
* ``surface_queries_total{result=exact|interpolated|nearest}`` /
  ``surface_points`` — the capacity-surface query layer
  (:mod:`repro.runner.surface`).
"""

from .exposition import render_manifest_prometheus, render_prometheus
from .history import (
    DEFAULT_THRESHOLD,
    DEFAULT_WINDOW,
    HISTORY_FILE,
    HistoryCheck,
    Regression,
    append_history,
    bench_config_hash,
    bench_record,
    check_history,
    host_fingerprint,
    load_history,
)
from .profile import DEFAULT_INTERVAL, EngineProfiler
from .progress import SweepProgress
from .registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    get_registry,
    scoped_registry,
)

__all__ = [
    "Counter",
    "DEFAULT_INTERVAL",
    "DEFAULT_THRESHOLD",
    "DEFAULT_WINDOW",
    "EngineProfiler",
    "Gauge",
    "HISTORY_FILE",
    "HistoryCheck",
    "MetricsRegistry",
    "Regression",
    "SweepProgress",
    "append_history",
    "bench_config_hash",
    "bench_record",
    "check_history",
    "get_registry",
    "host_fingerprint",
    "load_history",
    "render_manifest_prometheus",
    "render_prometheus",
    "scoped_registry",
]

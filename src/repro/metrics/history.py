"""Bench-trajectory tracking: append-only history + regression detection.

``BENCH_engine.json`` is overwritten on every ``python -m repro bench``
run, so the performance trajectory the ROADMAP tracks (12.8x naive,
1.31x active at full Volta) had no memory.  This module gives it one:

* :func:`bench_record` distills a bench report into one JSON-safe
  record — config hash (scale + bits + workload set), per-workload
  per-strategy throughputs, and a host fingerprint;
* :func:`append_history` appends it to ``BENCH_history.jsonl``
  (the same torn-tail-tolerant JSONL discipline as the sweep journal);
* :func:`check_history` compares a fresh report against the **trailing
  median** of comparable records (same config hash *and* same host —
  cross-machine numbers are not comparable) and flags any throughput
  that dropped more than ``threshold`` (default 20%).

The check is advisory by design: ``python -m repro bench`` always prints
it, and only ``--check-history`` turns a regression into a non-zero
exit (CI wires it as a warn-only step because shared runners are noisy).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from ..runner.cache import canonical_json

#: Default history file, next to BENCH_engine.json in the working dir.
HISTORY_FILE = "BENCH_history.jsonl"

#: Trailing records (per config+host) the median is taken over.
DEFAULT_WINDOW = 8

#: Fractional throughput drop that counts as a regression.
DEFAULT_THRESHOLD = 0.20

_STRATEGIES = ("naive", "active", "vector")


def host_fingerprint() -> Dict[str, Any]:
    """Coarse host identity: throughputs only compare on like hardware."""
    return {
        "platform": platform.system(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 0,
    }


def _digest(payload: Mapping[str, Any]) -> str:
    return hashlib.sha256(
        canonical_json(payload).encode()
    ).hexdigest()[:12]


def bench_config_hash(report: Mapping[str, Any]) -> str:
    """Hash of the bench shape: scale, bit budget, workload set."""
    return _digest({
        "scales": report.get("scales", {}),
        "num_bits": report.get("num_bits"),
        "workloads": sorted(report.get("workloads", {})),
    })


def _throughputs(report: Mapping[str, Any]) -> Dict[str, Dict[str, float]]:
    """``{workload: {strategy: cycles_per_s}}`` from a bench report."""
    out: Dict[str, Dict[str, float]] = {}
    for name, entry in (report.get("workloads") or {}).items():
        per_strategy = {
            strategy: float(entry[key])
            for strategy in _STRATEGIES
            if (key := f"{strategy}_cycles_per_s") in entry
        }
        if per_strategy:
            out[name] = per_strategy
    return out


def bench_record(
    report: Mapping[str, Any],
    scale: Optional[str] = None,
    timestamp: Optional[float] = None,
) -> Dict[str, Any]:
    """One history record for a completed bench report."""
    host = host_fingerprint()
    return {
        "ts": round(
            time.time() if timestamp is None else timestamp, 3
        ),
        "scale": scale,
        "config_hash": bench_config_hash(report),
        "host": host,
        "host_key": _digest(host),
        "num_bits": report.get("num_bits"),
        "throughputs": _throughputs(report),
        "min_speedup": report.get("min_speedup"),
        "vector_speedup_vs_active": (
            (report.get("vector") or {}).get("min_speedup_vs_active")
        ),
    }


def append_history(
    record: Mapping[str, Any],
    path: Union[str, Path] = HISTORY_FILE,
) -> Path:
    """Append one record to the JSONL history (created on first use)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    return target


def load_history(
    path: Union[str, Path] = HISTORY_FILE,
) -> List[Dict[str, Any]]:
    """All records in file order; a torn final line is tolerated."""
    target = Path(path)
    if not target.is_file():
        return []
    records: List[Dict[str, Any]] = []
    with open(target, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a killed run
            if isinstance(entry, dict):
                records.append(entry)
    return records


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass
class Regression:
    """One throughput that fell below the trailing-median floor."""

    workload: str
    strategy: str
    current: float
    median: float
    drop_frac: float

    def line(self) -> str:
        return (
            f"REGRESSION {self.workload}/{self.strategy}: "
            f"{self.current:.1f} cycles/s is {self.drop_frac:.0%} below "
            f"the trailing median {self.median:.1f}"
        )


@dataclass
class HistoryCheck:
    """Outcome of comparing one bench report against its history.

    The two degraded comparison modes are explicit rather than silent:

    * ``short_history`` — fewer comparable prior runs than the requested
      ``window``.  The floor check still ran, but its median is noisier
      than a full window's; callers deciding to gate on the result can
      tell the difference.
    * ``zero_median`` — ``workload/strategy`` series whose trailing
      median was ``<= 0`` (corrupt or placeholder records).  A
      nonpositive median cannot form a floor, so these series are
      *excluded* from the regression check and named here instead of
      passing silently.
    """

    baseline_runs: int
    compared: int
    regressions: List[Regression] = field(default_factory=list)
    skipped_reason: str = ""
    #: The window the caller asked for (trailing records per series).
    window: int = DEFAULT_WINDOW
    #: Series (``"workload/strategy"``) skipped for nonpositive medians.
    zero_median: List[str] = field(default_factory=list)

    @property
    def short_history(self) -> bool:
        """True when the baseline had fewer records than the window."""
        return 0 < self.baseline_runs < self.window

    @property
    def ok(self) -> bool:
        return not self.regressions

    def lines(self) -> List[str]:
        if self.skipped_reason:
            return [f"bench-history: skipped ({self.skipped_reason})"]
        out = [
            f"bench-history: {self.compared} throughputs vs "
            f"{self.baseline_runs} comparable prior runs"
        ]
        if self.short_history:
            out.append(
                f"bench-history: short history "
                f"({self.baseline_runs}/{self.window} records) — "
                f"median floor is provisional"
            )
        for series in self.zero_median:
            out.append(
                f"bench-history: {series} has a nonpositive trailing "
                f"median — series skipped, check its history records"
            )
        out.extend(r.line() for r in self.regressions)
        if not self.regressions and self.compared:
            out.append("bench-history: no regression beyond threshold")
        return out


def check_history(
    report: Mapping[str, Any],
    path: Union[str, Path] = HISTORY_FILE,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
    scale: Optional[str] = None,
) -> HistoryCheck:
    """Compare ``report`` against the trailing median of its history.

    Only records with the same bench-config hash *and* the same host
    fingerprint are comparable.  Call this *before* appending the fresh
    record so the baseline never includes the run under test.

    Degraded baselines are reported, never silently absorbed (see
    :class:`HistoryCheck`): with no comparable records at all the check
    is skipped with ``skipped_reason`` set; with fewer records than
    ``window`` it runs and sets :attr:`HistoryCheck.short_history`; a
    series whose trailing median is ``<= 0`` cannot form a floor and is
    listed in :attr:`HistoryCheck.zero_median` instead of passing.
    """
    current = bench_record(report, scale=scale)
    history = load_history(path)
    baseline = [
        entry for entry in history
        if entry.get("config_hash") == current["config_hash"]
        and entry.get("host_key") == current["host_key"]
    ][-window:]
    if not baseline:
        return HistoryCheck(
            baseline_runs=0, compared=0, window=window,
            skipped_reason=(
                "no comparable prior runs (config or host changed, or "
                "history is empty)"
            ),
        )
    check = HistoryCheck(
        baseline_runs=len(baseline), compared=0, window=window
    )
    for workload, per_strategy in current["throughputs"].items():
        for strategy, value in per_strategy.items():
            prior = [
                float(entry["throughputs"][workload][strategy])
                for entry in baseline
                if strategy in (
                    entry.get("throughputs", {}).get(workload) or {}
                )
            ]
            if not prior:
                continue
            median = _median(prior)
            if median <= 0:
                # A nonpositive floor would "pass" any value, including
                # a real regression — name the series instead.
                check.zero_median.append(f"{workload}/{strategy}")
                continue
            check.compared += 1
            if value < median * (1.0 - threshold):
                check.regressions.append(Regression(
                    workload=workload,
                    strategy=strategy,
                    current=value,
                    median=median,
                    drop_frac=1.0 - value / median,
                ))
    return check

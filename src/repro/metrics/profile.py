"""Sampled self-profiling of the engine hot loop.

The profiler is a *passive observer*: it reads scheduler state, never
mutates it, so enabling it keeps simulation results bit-identical (the
lockstep oracle runs with it on).  Cost control is by sampling — the
active-set size is recorded only every ``interval`` busy cycles (one
integer compare per cycle when enabled, a single ``is not None`` branch
when disabled), while the event-shaped signals (fast-forward spans,
mux-bank dispatch widths, sole-contender batch lengths) are recorded at
their natural, already-rare call sites.

Everything lands in a :class:`MetricsRegistry` labeled by engine
strategy, so profiles from different strategies or worker shards merge
natively through the metrics manifest.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .registry import MetricsRegistry

#: Default sampling stride for the per-cycle signals (engine cycles).
DEFAULT_INTERVAL = 64


class EngineProfiler:
    """Pre-resolved metric handles for the engine's hot-loop signals.

    One profiler instance is shared by a device's engine and its muxes;
    handles are resolved once at construction so the hot path touches
    plain attributes only.
    """

    __slots__ = (
        "interval", "next_sample", "registry",
        "_active", "_ff_spans", "_bank_widths", "_batch_spans",
        "_samples", "_ff_count", "_bank_count", "_batch_count",
    )

    def __init__(
        self,
        interval: int = DEFAULT_INTERVAL,
        registry: Optional[MetricsRegistry] = None,
        strategy: str = "active",
        device: Optional[int] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("profiler interval must be positive")
        self.interval = interval
        self.next_sample = 0
        self.registry = registry if registry is not None else MetricsRegistry()
        labels = {"strategy": strategy}
        if device is not None:
            # Multi-GPU systems profile per device; standalone devices
            # keep the historical single-label series names.
            labels["device"] = str(device)
        self._active = self.registry.sampler(
            "engine_active_set_size",
            "Scheduled components per busy cycle (sampled)", **labels,
        )
        self._ff_spans = self.registry.histogram(
            "engine_fast_forward_span_cycles",
            "Idle spans skipped by fast-forward, in cycles",
            bucket_width=64, num_buckets=128, **labels,
        )
        self._bank_widths = self.registry.sampler(
            "engine_bank_dispatch_width",
            "Members per batched mux-bank dispatch", **labels,
        )
        self._batch_spans = self.registry.sampler(
            "engine_sole_batch_cycles",
            "Cycles folded per sole-contender packet batch", **labels,
        )
        self._samples = self.registry.counter(
            "engine_profile_samples_total",
            "Active-set size samples taken", **labels,
        )
        self._ff_count = self.registry.counter(
            "engine_fast_forwards_total",
            "Idle fast-forward jumps taken", **labels,
        )
        self._bank_count = self.registry.counter(
            "engine_bank_dispatches_total",
            "Batched mux-bank dispatches issued", **labels,
        )
        self._batch_count = self.registry.counter(
            "engine_sole_batches_total",
            "Sole-contender packet batches materialized", **labels,
        )

    # ------------------------------------------------------------------ #
    # Hot-loop hooks (all observation, no mutation).
    # ------------------------------------------------------------------ #
    def sample(self, cycle: int, num_active: int) -> None:
        """Record one active-set size sample; rearm the stride."""
        self.next_sample = cycle + self.interval
        self._samples.inc()
        self._active.add(num_active)

    def note_fast_forward(self, span: int) -> None:
        self._ff_count.inc()
        self._ff_spans.add(span)

    def note_bank_dispatch(self, width: int) -> None:
        self._bank_count.inc()
        self._bank_widths.add(width)

    def note_sole_batch(self, span: int) -> None:
        self._batch_count.inc()
        self._batch_spans.add(span)

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Zero all series (``Engine.reset`` resets observability)."""
        self.next_sample = 0
        self.registry.reset()

    def manifest(self) -> Dict[str, Any]:
        """JSON-safe metrics manifest (mergeable across shards)."""
        return self.registry.to_manifest()

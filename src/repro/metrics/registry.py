"""Process-wide registry of labeled counters, gauges, samplers, histograms.

The metrics plane is the *per-process* complement to the per-device event
telemetry of :mod:`repro.telemetry`: where telemetry records what one
simulated GPU did (flit lifecycles, link timelines), the metrics registry
records what the *service* around it did — jobs launched, retries, cache
hits, engine self-profiling samples — and folds those numbers across
worker shards the same way ``Sampler.merge`` already folds latency
summaries.

Design points:

* **Labeled families.**  A metric name owns one *kind* (counter / gauge /
  sampler / histogram) and a set of series keyed by sorted label items,
  mirroring the Prometheus data model.  Re-registering a name with a
  different kind is a hard error — silent kind drift is how dashboards
  rot.
* **Handles, not string lookups, on hot paths.**  ``registry.counter(...)``
  returns a :class:`Counter` handle whose ``inc`` is one attribute
  bump; callers resolve the handle once and keep it (the engine
  profiler pre-resolves every handle it touches).
* **Mergeable manifests.**  ``to_manifest`` emits a JSON-safe dict;
  ``merge_manifest`` folds one back in (counters sum, samplers and
  histograms merge, gauges keep the max).  That makes the manifest the
  wire format between supervised worker shards and the parent sweep.
"""

from __future__ import annotations

import re
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from ..sim.stats import Histogram, Sampler

#: Prometheus-compatible metric-name grammar.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: The metric kinds a family may carry.
KINDS = ("counter", "gauge", "sampler", "histogram")

LabelKey = Tuple[Tuple[str, str], ...]


class Counter:
    """Monotonic counter handle; ``inc`` is hot-path safe."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """Point-in-time level; merges across shards by keeping the max."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def high_water(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def reset(self) -> None:
        self.value = 0.0


class _Family:
    """One metric name: a kind, help text, and label-keyed series."""

    __slots__ = ("name", "kind", "help", "series")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.series: Dict[LabelKey, Any] = {}


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Labeled metric families with mergeable JSON manifests."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Registration / handle lookup.
    # ------------------------------------------------------------------ #
    def _series(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Mapping[str, Any],
        factory,
    ) -> Any:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}, not {kind}"
                )
            elif help_text and not family.help:
                family.help = help_text
            metric = family.series.get(key)
            if metric is None:
                metric = factory()
                family.series[key] = metric
            return metric

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._series(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._series(name, "gauge", help, labels, Gauge)

    def sampler(self, name: str, help: str = "", **labels: Any) -> Sampler:
        return self._series(name, "sampler", help, labels, Sampler)

    def histogram(
        self,
        name: str,
        help: str = "",
        bucket_width: int = 16,
        num_buckets: int = 256,
        **labels: Any,
    ) -> Histogram:
        return self._series(
            name, "histogram", help, labels,
            lambda: Histogram(bucket_width, num_buckets),
        )

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    def families(self) -> Iterator[Tuple[str, str, str]]:
        """``(name, kind, help)`` per family, name-sorted."""
        for name in sorted(self._families):
            family = self._families[name]
            yield name, family.kind, family.help

    def series(
        self, name: str
    ) -> List[Tuple[Dict[str, str], Any]]:
        """``(labels, metric)`` pairs of one family, label-sorted."""
        family = self._families.get(name)
        if family is None:
            return []
        return [
            (dict(key), family.series[key])
            for key in sorted(family.series)
        ]

    def value(self, name: str, **labels: Any) -> Any:
        """The raw metric object for a series, or ``None``."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.series.get(_label_key(labels))

    def __len__(self) -> int:
        return len(self._families)

    # ------------------------------------------------------------------ #
    # Manifests and merging.
    # ------------------------------------------------------------------ #
    def to_manifest(self) -> Dict[str, Any]:
        """JSON-safe ``{"metrics": {name: family}}`` snapshot."""
        metrics: Dict[str, Any] = {}
        for name in sorted(self._families):
            family = self._families[name]
            series = []
            for key in sorted(family.series):
                metric = family.series[key]
                entry: Dict[str, Any] = {"labels": dict(key)}
                if family.kind == "counter":
                    entry["value"] = metric.value
                elif family.kind == "gauge":
                    entry["value"] = metric.value
                elif family.kind == "sampler":
                    entry["summary"] = metric.summary()
                else:  # histogram
                    entry["histogram"] = metric.state_dict()
                series.append(entry)
            metrics[name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series,
            }
        return {"metrics": metrics}

    def merge_manifest(self, manifest: Mapping[str, Any]) -> "MetricsRegistry":
        """Fold a :meth:`to_manifest` payload into this registry."""
        for name, family in (manifest.get("metrics") or {}).items():
            kind = family.get("kind")
            if kind not in KINDS:
                raise ValueError(
                    f"manifest metric {name!r} has unknown kind {kind!r}"
                )
            help_text = family.get("help", "")
            for entry in family.get("series", ()):
                labels = entry.get("labels") or {}
                if kind == "counter":
                    self.counter(name, help_text, **labels).inc(
                        int(entry.get("value", 0))
                    )
                elif kind == "gauge":
                    self.gauge(name, help_text, **labels).high_water(
                        float(entry.get("value", 0.0))
                    )
                elif kind == "sampler":
                    self.sampler(name, help_text, **labels).merge(
                        Sampler.from_summary(entry.get("summary") or {})
                    )
                else:  # histogram
                    state = entry.get("histogram") or {}
                    self.histogram(
                        name, help_text,
                        bucket_width=int(state.get("bucket_width", 16)),
                        num_buckets=int(state.get("num_buckets", 256)),
                        **labels,
                    ).merge(Histogram.from_state(state))
        return self

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's live metrics into this one."""
        return self.merge_manifest(other.to_manifest())

    def reset(self) -> None:
        """Zero every series (families and labels are retained)."""
        for family in self._families.values():
            for metric in family.series.values():
                metric.reset()

    def clear(self) -> None:
        """Drop every family (used between isolated test runs)."""
        with self._lock:
            self._families.clear()


# ---------------------------------------------------------------------- #
# Process-default registry.
# ---------------------------------------------------------------------- #
_default = MetricsRegistry()
_scoped = threading.local()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (or the innermost scoped override)."""
    stack = getattr(_scoped, "stack", None)
    if stack:
        return stack[-1]
    return _default


@contextmanager
def scoped_registry(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Temporarily swap :func:`get_registry` to an isolated registry.

    Tests and one-shot CLI commands use this so instrumented library code
    (which always writes through ``get_registry()``) lands in a registry
    the caller owns rather than the process-wide one.
    """
    registry = registry if registry is not None else MetricsRegistry()
    stack = getattr(_scoped, "stack", None)
    if stack is None:
        stack = _scoped.stack = []
    stack.append(registry)
    try:
        yield registry
    finally:
        stack.pop()

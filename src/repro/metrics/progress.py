"""Live TTY progress rendering for sweep execution.

``SweepProgress`` consumes the supervisor's event stream (``on_event``)
plus the coarse ``progress(done, total)`` callback and repaints a single
status line in place::

    fig10  [=========>          ]  12/32  cache 5 (42%)  retry 1  fail 0  | #14 3.2s, #15 0.4s

On a real TTY the line is redrawn with ``\\r`` (throttled so rendering
never dominates a fast sweep); when stdout is a pipe (CI logs) each
update is printed as a plain line only when the done-count changes, so
logs stay readable without escape codes.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, Dict, Mapping, Optional, TextIO

#: Widest line we emit; avoids wrapping on odd terminals.
MAX_WIDTH = 110


class SweepProgress:
    """Single-line sweep progress renderer.

    Parameters
    ----------
    label:
        Sweep name shown at the line head (``fig10``, ``bench`` ...).
    total:
        Total job count (0 means unknown; the bar is omitted).
    stream:
        Output stream; defaults to ``sys.stderr`` so sweep results on
        stdout stay machine-parseable.
    min_interval_s:
        Repaint throttle for TTY mode.
    now:
        Clock override for tests (defaults to ``time.monotonic``).
    """

    def __init__(
        self,
        label: str,
        total: int = 0,
        stream: Optional[TextIO] = None,
        min_interval_s: float = 0.1,
        now: Callable[[], float] = time.monotonic,
    ) -> None:
        self.label = label
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self.now = now
        self.done = 0
        self.cache_hits = 0
        self.replays = 0
        self.retries = 0
        self.failures = 0
        #: index -> (attempt, start time) of jobs currently in workers.
        self.inflight: Dict[int, Any] = {}
        self._last_paint = -1.0
        self._last_line = ""
        self._last_plain_done = -1
        self._closed = False
        try:
            self._tty = bool(self.stream.isatty())
        except (AttributeError, ValueError):
            self._tty = False

    # ------------------------------------------------------------------ #
    # Supervisor callbacks.
    # ------------------------------------------------------------------ #
    def on_event(self, kind: str, info: Mapping[str, Any]) -> None:
        """Consume one supervisor event (see ``run_supervised``)."""
        index = info.get("index")
        if kind == "launch":
            self.inflight[index] = (info.get("attempt", 1), self.now())
        elif kind == "ok":
            self.inflight.pop(index, None)
        elif kind == "fail":
            self.inflight.pop(index, None)
            if info.get("retry"):
                self.retries += 1
            else:
                self.failures += 1
        elif kind == "cache-hit":
            self.cache_hits += 1
        elif kind == "replay":
            self.replays += 1
        self.render()

    def progress(self, done: int, total: int) -> None:
        """Coarse done/total callback (also fired by unsupervised runs)."""
        self.done = done
        if total:
            self.total = total
        self.render()

    # ------------------------------------------------------------------ #
    # Rendering.
    # ------------------------------------------------------------------ #
    def _bar(self) -> str:
        if not self.total:
            return ""
        width = 20
        frac = min(1.0, self.done / self.total)
        filled = int(frac * width)
        head = ">" if filled < width else ""
        return ("[" + "=" * filled + head
                + " " * (width - filled - len(head)) + "] ")

    def _line(self) -> str:
        parts = [f"{self.label}  {self._bar()}{self.done}/{self.total or '?'}"]
        served = self.cache_hits + self.replays
        if self.done:
            rate = 100.0 * served / self.done
            parts.append(f"cache {served} ({rate:.0f}%)")
        else:
            parts.append(f"cache {served}")
        parts.append(f"retry {self.retries}")
        parts.append(f"fail {self.failures}")
        if self.inflight:
            clock = self.now()
            workers = ", ".join(
                "#%s %.1fs" % (index, clock - started)
                for index, (_attempt, started)
                in sorted(self.inflight.items())
            )
            parts.append("| " + workers)
        line = "  ".join(parts)
        return line[:MAX_WIDTH]

    def render(self, force: bool = False) -> None:
        if self._closed:
            return
        if not self._tty:
            # Pipe mode: one plain line per done-count change only.
            if force or self.done != self._last_plain_done:
                self._last_plain_done = self.done
                self.stream.write(self._line() + "\n")
                self.stream.flush()
            return
        clock = self.now()
        if not force and clock - self._last_paint < self.min_interval_s:
            return
        self._last_paint = clock
        line = self._line()
        pad = max(0, len(self._last_line) - len(line))
        self._last_line = line
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()

    def close(self) -> None:
        """Final repaint and newline; further callbacks are ignored.

        Idempotent, and the terminating newline is guaranteed on TTYs
        even when the final repaint itself raises (a sweep dying
        mid-flight must not leave the shell prompt glued to a partial
        ``\\r`` status line).
        """
        if self._closed:
            return
        try:
            self.render(force=True)
        finally:
            self._closed = True
            if self._tty:
                try:
                    self.stream.write("\n")
                    self.stream.flush()
                except (OSError, ValueError):
                    pass  # stream already torn down; nothing to unpaint

    # ------------------------------------------------------------------ #
    # Context management: `with SweepProgress(...) as p:` guarantees the
    # line is terminated on every exit path — normal completion, sweep
    # exceptions, and KeyboardInterrupt alike.
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "SweepProgress":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

"""Clock register survey (Section 4.1, Figure 6).

A kernel is launched with one block per SM that simply returns the value
of its SM's ``clock()`` register.  The survey shows that neighbouring SMs
(same TPC) read nearly identical values, TPCs within a GPC are within ~15
cycles, while different GPCs differ by billions of cycles — the property
that lets the sender and receiver synchronize without any handshake
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..config import GpuConfig
from ..gpu.device import GpuDevice
from ..gpu.kernel import Kernel
from ..gpu.workloads import clock_survey_program


@dataclass
class ClockSurvey:
    """One survey run: clock() value per SM (the Figure 6 scatter)."""

    config: GpuConfig
    values: Dict[int, int]

    def tpc_skews(self) -> List[int]:
        """Per-TPC |clock(SM 2i) - clock(SM 2i+1)| deltas."""
        skews = []
        for tpc in range(self.config.num_tpcs):
            sms = self.config.tpc_sms(tpc)
            readings = [self.values[sm] for sm in sms if sm in self.values]
            if len(readings) >= 2:
                skews.append(max(readings) - min(readings))
        return skews

    def gpc_skews(self) -> List[int]:
        """Per-GPC max pairwise clock delta across its SMs."""
        members = self.config.gpc_members()
        skews = []
        for gpc, tpcs in members.items():
            readings = [
                self.values[sm]
                for tpc in tpcs
                for sm in self.config.tpc_sms(tpc)
                if sm in self.values
            ]
            if len(readings) >= 2:
                skews.append(max(readings) - min(readings))
        return skews


def survey_clocks(config: GpuConfig, seed_salt: int = 0) -> ClockSurvey:
    """Run the Figure 6 kernel once: clock() from every SM."""
    device = GpuDevice(config, seed_salt=seed_salt)
    results: Dict[int, int] = {}
    kernel = Kernel(
        clock_survey_program,
        num_blocks=config.num_sms,
        args={"results": results},
        name="clock-survey",
    )
    device.run_kernels([kernel])
    return ClockSurvey(config=config, values=dict(results))


def repeated_skew_statistics(
    config: GpuConfig, runs: int = 100
) -> Dict[str, float]:
    """Re-run the survey ``runs`` times (Section 4.1's 100 repetitions).

    Returns the average intra-TPC and intra-GPC skews, which the paper
    found to be under 5 and under 15 cycles respectively — negligible
    against the ~200-250 cycle L2 round trip.
    """
    tpc_total = 0.0
    tpc_count = 0
    gpc_total = 0.0
    gpc_count = 0
    for run in range(runs):
        survey = survey_clocks(config, seed_salt=run)
        for skew in survey.tpc_skews():
            tpc_total += skew
            tpc_count += 1
        for skew in survey.gpc_skews():
            gpc_total += skew
            gpc_count += 1
    return {
        "avg_tpc_skew": tpc_total / max(1, tpc_count),
        "avg_gpc_skew": gpc_total / max(1, gpc_count),
    }

"""Thread-block scheduling reverse engineering (Section 4.3).

The covert channel needs the sender and receiver *co-located* on the two
SMs of each TPC.  The paper determines that the hardware scheduler
interleaves thread blocks across GPCs, and across TPCs within a GPC,
before doubling up on any TPC.  Consequently: launch the sender with one
block per TPC first, then the receiver with one block per TPC — every TPC
ends up with one sender SM and one receiver SM.

This module probes the scheduler of the simulated device the same way the
paper probes the real one (reading ``%smid`` per block) and provides the
co-location helper the covert channels use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import GpuConfig
from ..gpu.device import GpuDevice
from ..gpu.kernel import Kernel
from ..gpu.warp import WarpContext, WarpProgram, WaitCycles


def _smid_probe_program(context: WarpContext) -> WarpProgram:
    """Record this block's %smid, then idle briefly (keeps blocks resident
    concurrently so the placement reflects one dispatch wave)."""
    context.args["placements"][
        (context.args["tag"], context.block_id)
    ] = context.sm_id
    yield WaitCycles(context.args.get("hold_cycles", 64))


def probe_block_placement(
    config: GpuConfig,
    grid_sizes: Tuple[int, ...] = None,
) -> Dict[Tuple[int, int], int]:
    """Launch consecutive grids and record every block's %smid.

    Returns ``(kernel_index, block_id) -> sm_id``, the raw data from which
    the scheduling policy is inferred.
    """
    if grid_sizes is None:
        grid_sizes = (config.num_tpcs, config.num_tpcs)
    device = GpuDevice(config)
    placements: Dict[Tuple[int, int], int] = {}
    kernels = []
    for index, size in enumerate(grid_sizes):
        kernels.append(
            Kernel(
                _smid_probe_program,
                num_blocks=size,
                args={"placements": placements, "tag": index},
                name=f"probe{index}",
            )
        )
    device.run_kernels(kernels)
    return placements


@dataclass
class ColocationPlan:
    """Sender/receiver SM assignment produced by the scheduling trick."""

    #: TPC id -> (sender SM, receiver SM).
    pairs: Dict[int, Tuple[int, int]]

    @property
    def num_channels(self) -> int:
        return len(self.pairs)


def infer_scheduling_policy(config: GpuConfig) -> List[int]:
    """Infer the dispatch order by probing with one block per SM."""
    placements = probe_block_placement(config, grid_sizes=(config.num_sms,))
    order = [None] * config.num_sms
    for (tag, block_id), sm_id in placements.items():
        order[block_id] = sm_id
    return order


def detect_colocation_by_contention(
    config: GpuConfig,
    kernel_a_sm: int,
    kernel_b_sm: int,
    ops: int = 10,
    threshold: float = 1.5,
) -> bool:
    """Decide whether two kernels share a TPC *without* reading %smid.

    The paper's scheduler trick relies on %smid; on a system that hides
    it, the attacker can still verify co-location the same way the
    reverse engineering works: run a streaming-write probe on kernel A
    alone, then with kernel B active — a >~2x slowdown means the two
    share a TPC injection channel.  (This is also the handshaking
    primitive Section 6 mentions as a clock-fuzzing workaround.)
    """
    from .tpc_discovery import measure_active_sms

    baseline = measure_active_sms(config, {kernel_a_sm}, "write", ops=ops)[
        kernel_a_sm
    ]
    paired = measure_active_sms(
        config, {kernel_a_sm, kernel_b_sm}, "write", ops=ops
    )[kernel_a_sm]
    return paired / baseline > threshold


def plan_tpc_colocation(
    config: GpuConfig, num_tpcs: Optional[int] = None
) -> ColocationPlan:
    """Verify the sender-first/receiver-second trick and build the plan.

    Launches a ``num_tpcs``-block sender probe followed by an equal-size
    receiver probe and checks that every TPC received exactly one block of
    each — raising if the co-location assumption is violated.
    """
    total = config.num_tpcs if num_tpcs is None else num_tpcs
    placements = probe_block_placement(config, grid_sizes=(total, total))
    sender_sms = [placements[(0, block)] for block in range(total)]
    receiver_sms = [placements[(1, block)] for block in range(total)]
    pairs: Dict[int, Tuple[int, int]] = {}
    for sender_sm, receiver_sm in zip(sender_sms, receiver_sms):
        sender_tpc = config.sm_to_tpc(sender_sm)
        receiver_tpc = config.sm_to_tpc(receiver_sm)
        if sender_tpc != receiver_tpc:
            raise RuntimeError(
                f"co-location violated: sender SM {sender_sm} "
                f"(TPC {sender_tpc}) vs receiver SM {receiver_sm} "
                f"(TPC {receiver_tpc})"
            )
        if sender_tpc in pairs:
            raise RuntimeError(f"TPC {sender_tpc} received two sender blocks")
        pairs[sender_tpc] = (sender_sm, receiver_sm)
    return ColocationPlan(pairs=pairs)

"""TPC organization reverse engineering (Section 3.2, Algorithm 1, Fig 2).

The experiment: run a memory-intensive streaming-write benchmark (L1
bypassed, touching every memory partition) concurrently on SM0 and exactly
one other SM, sweeping that other SM's id.  The execution time of SM0
doubles only when the co-runner shares SM0's TPC injection channel —
revealing which SMs are co-located in a TPC (consecutive even/odd pairs on
Volta).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..config import GpuConfig
from ..gpu.device import GpuDevice
from ..gpu.workloads import kernel_footprint_bytes, make_streaming_kernel


def measure_active_sms(
    config: GpuConfig,
    active_sms: Set[int],
    kind: str = "write",
    ops: int = 24,
    duty: float = 1.0,
    duty_overrides: Optional[Dict[int, float]] = None,
    warps_per_block: int = 2,
    seed_salt: int = 0,
) -> Dict[int, int]:
    """Run Algorithm 1 with only ``active_sms`` doing work.

    A grid with one block per SM is launched; blocks whose ``%smid`` is not
    in ``active_sms`` exit immediately (exactly the paper's gating).
    Returns each active SM's measured execution time (its own clock()
    delta, so cross-SM clock offsets cancel).
    """
    device = GpuDevice(config, seed_salt=seed_salt)
    durations: Dict = {}
    footprint = config.num_l2_slices * 64 * config.l2_line_bytes
    kernel = make_streaming_kernel(
        config,
        kind,
        ops=ops,
        num_blocks=config.num_sms,
        warps_per_block=warps_per_block,
        duty=duty,
        duty_overrides=duty_overrides,
        active_sms=active_sms,
        durations=durations,
        region_stride=footprint,
        name="algorithm1",
    )
    # Each active SM streams through its own disjoint array (Algorithm 1's
    # arr_A / arr_B), all preloaded into the L2.
    for sm_id in active_sms:
        device.preload_region(sm_id * footprint, footprint)
    device.run_kernels([kernel])
    result: Dict[int, int] = {}
    for (sm_id, _block, _warp), duration in durations.items():
        result[sm_id] = max(duration, result.get(sm_id, 0))
    missing = active_sms - set(result)
    if missing:
        raise RuntimeError(
            f"active SMs {sorted(missing)} never got a block; "
            f"increase the grid size"
        )
    return result


@dataclass
class TpcSweepResult:
    """Figure 2's data: SM0 execution time vs the co-running SM's id."""

    baseline: int
    #: other-SM id -> SM0 execution time when co-running with that SM.
    sm0_times: Dict[int, int]

    def normalized(self) -> Dict[int, float]:
        """SM0 time normalized to its solo baseline (the Fig 2 y-axis)."""
        return {
            sm: time / self.baseline for sm, time in self.sm0_times.items()
        }

    def partner_of_sm0(self, threshold: float = 1.5) -> List[int]:
        """SMs whose co-running slows SM0 past ``threshold`` (its TPC mates)."""
        return [
            sm for sm, ratio in self.normalized().items() if ratio > threshold
        ]


def sweep_tpc_pairing(
    config: GpuConfig,
    probe_sm: int = 0,
    other_sms: Optional[Sequence[int]] = None,
    ops: int = 24,
) -> TpcSweepResult:
    """Reproduce Figure 2: co-run ``probe_sm`` with each other SM in turn."""
    if other_sms is None:
        other_sms = [sm for sm in range(config.num_sms) if sm != probe_sm]
    baseline = measure_active_sms(config, {probe_sm}, ops=ops)[probe_sm]
    sm0_times: Dict[int, int] = {}
    for other in other_sms:
        times = measure_active_sms(config, {probe_sm, other}, ops=ops)
        sm0_times[other] = times[probe_sm]
    return TpcSweepResult(baseline=baseline, sm0_times=sm0_times)


def recover_tpc_pairs(
    config: GpuConfig, ops: int = 24, threshold: float = 1.5
) -> List[Set[int]]:
    """Full TPC-pair recovery: group all SMs into their TPCs.

    Runs the Figure 2 sweep from each still-unpaired even candidate until
    every SM is assigned — the procedure the paper repeats "across a
    different combination of SMs".
    """
    unassigned = set(range(config.num_sms))
    pairs: List[Set[int]] = []
    while unassigned:
        probe = min(unassigned)
        unassigned.discard(probe)
        partner = None
        baseline = measure_active_sms(config, {probe}, ops=ops)[probe]
        for other in sorted(unassigned):
            times = measure_active_sms(config, {probe, other}, ops=ops)
            if times[probe] / baseline > threshold:
                partner = other
                break
        if partner is None:
            pairs.append({probe})
        else:
            unassigned.discard(partner)
            pairs.append({probe, partner})
    return pairs

"""GPC membership reverse engineering (Section 3.3, Figures 3 and 4).

The experiment: always activate TPC0 (one SM), activate one *varied* TPC,
and activate 5 more randomly-selected TPCs (one SM each, 7 SMs total —
enough read traffic to oversubscribe a GPC reply channel thanks to the
bandwidth speedup).  Repeat many times per varied TPC and average TPC0's
execution time.  When the varied TPC shares TPC0's GPC, the probability
that the GPC channel is contended rises, and TPC0's average time is
measurably higher — revealing GPC membership.  Repeating with every TPC as
the anchor recovers the full logical-to-physical map (Figure 4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..config import GpuConfig
from .tpc_discovery import measure_active_sms


@dataclass
class GpcSweepResult:
    """Figure 3's data for one anchor TPC."""

    anchor_tpc: int
    #: varied TPC id -> list of anchor execution times (one per trial).
    samples: Dict[int, List[int]] = field(default_factory=dict)
    #: Every trial as (active co-runner TPC set, anchor time).  The sweep
    #: *chose* the random TPCs, so each trial labels all of them — far
    #: more information per run than the varied TPC alone.
    trials: List = field(default_factory=list)

    def averages(self) -> Dict[int, float]:
        """Varied TPC id -> mean anchor execution time (Fig 3b/3d)."""
        return {
            tpc: sum(times) / len(times)
            for tpc, times in self.samples.items()
            if times
        }

    def contended_fractions(self, slowdown_cut: float = 1.05) -> Dict[int, float]:
        """Per varied TPC: fraction of trials showing GPC contention.

        A trial counts as contended when the anchor ran more than
        ``slowdown_cut`` times slower than the fastest trial observed
        anywhere in the sweep (the no-contention baseline).  This is the
        scatter visible in Figure 3(a): co-resident TPCs produce high
        outlier trials far more often.
        """
        baseline = min(
            min(times) for times in self.samples.values() if times
        )
        cut = baseline * slowdown_cut
        return {
            tpc: sum(1 for t in times if t > cut) / len(times)
            for tpc, times in self.samples.items()
            if times
        }

    def membership_scores(self) -> Dict[int, float]:
        """Per-TPC leverage on the anchor's execution time.

        For every co-runner TPC, compare the anchor's mean time over the
        trials where that TPC was active against the trials where it was
        idle.  Because the sweep knows each trial's full active set, every
        run contributes a label for *all* candidate TPCs — pooling makes
        the estimate far more sample-efficient than the per-varied-TPC
        averages alone, while measuring the same physical effect: only
        same-GPC TPCs raise the anchor's time.
        """
        candidates = {
            tpc for active, _time in self.trials for tpc in active
        }
        scores: Dict[int, float] = {}
        for tpc in sorted(candidates):
            active_times = [t for a, t in self.trials if tpc in a]
            idle_times = [t for a, t in self.trials if tpc not in a]
            if not active_times or not idle_times:
                continue
            scores[tpc] = (
                sum(active_times) / len(active_times)
                - sum(idle_times) / len(idle_times)
            )
        return scores

    def co_resident_tpcs(self, margin: float = 0.5) -> List[int]:
        """TPCs inferred to share the anchor's GPC.

        A TPC is flagged when its membership score lies more than
        ``margin`` of the way from the sweep's minimum score toward its
        maximum — the Figure 3(b,d) outliers.
        """
        scores = self.membership_scores()
        if not scores:
            return []
        low = min(scores.values())
        high = max(scores.values())
        if high <= low:
            return []
        cut = low + margin * (high - low)
        return sorted(tpc for tpc, score in scores.items() if score > cut)


def sweep_gpc_membership(
    config: GpuConfig,
    anchor_tpc: int = 0,
    trials: int = 25,
    extra_tpcs: int = 5,
    ops: int = 6,
    seed: Optional[int] = None,
    varied_tpcs: Optional[Sequence[int]] = None,
) -> GpcSweepResult:
    """Reproduce Figure 3 for one anchor TPC.

    Per trial: the anchor TPC, the varied TPC, and ``extra_tpcs`` random
    other TPCs are activated with one read-streaming SM each; the anchor's
    execution time is recorded.
    """
    rng = random.Random(config.seed if seed is None else seed)
    if varied_tpcs is None:
        varied_tpcs = [
            tpc for tpc in range(config.num_tpcs) if tpc != anchor_tpc
        ]
    result = GpcSweepResult(anchor_tpc=anchor_tpc)
    anchor_sm = config.tpc_sms(anchor_tpc)[0]
    for varied in varied_tpcs:
        times: List[int] = []
        for trial in range(trials):
            others = [
                tpc
                for tpc in range(config.num_tpcs)
                if tpc not in (anchor_tpc, varied)
            ]
            random_tpcs = rng.sample(others, min(extra_tpcs, len(others)))
            co_runners = frozenset([varied] + random_tpcs)
            active = {anchor_sm}
            for tpc in co_runners:
                active.add(config.tpc_sms(tpc)[0])
            measured = measure_active_sms(
                config,
                active,
                kind="read",
                ops=ops,
                seed_salt=rng.randrange(1 << 30),
            )
            times.append(measured[anchor_sm])
            result.trials.append((co_runners, measured[anchor_sm]))
        result.samples[varied] = times
    return result


def recover_gpc_groups(
    config: GpuConfig,
    trials: int = 25,
    ops: int = 6,
    seed: Optional[int] = None,
    margin: float = 0.5,
) -> List[Set[int]]:
    """Recover the full TPC->GPC grouping (the Figure 4 map).

    Runs the Figure 3 sweep from successive anchors until every TPC is
    assigned to a group.  Anchors only sweep TPCs that are still
    unassigned, which keeps the cost near one sweep per GPC.
    """
    unassigned = set(range(config.num_tpcs))
    groups: List[Set[int]] = []
    while unassigned:
        anchor = min(unassigned)
        varied = sorted(unassigned - {anchor})
        sweep = sweep_gpc_membership(
            config,
            anchor_tpc=anchor,
            trials=trials,
            ops=ops,
            seed=seed,
            varied_tpcs=varied,
        )
        members = set(sweep.co_resident_tpcs(margin=margin)) & unassigned
        group = {anchor} | members
        groups.append(group)
        unassigned -= group
    return groups


def verify_topology(config: GpuConfig, groups: List[Set[int]]) -> bool:
    """Check recovered groups against the configured ground truth."""
    truth = {frozenset(tpcs) for tpcs in config.gpc_members().values()}
    return {frozenset(group) for group in groups} == truth

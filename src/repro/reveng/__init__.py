"""Reverse engineering of the GPU on-chip network (Section 3 & 4.3)."""

from .tpc_discovery import (
    TpcSweepResult,
    measure_active_sms,
    recover_tpc_pairs,
    sweep_tpc_pairing,
)
from .gpc_discovery import (
    GpcSweepResult,
    recover_gpc_groups,
    sweep_gpc_membership,
    verify_topology,
)
from .contention import (
    RwContentionProfile,
    SharingSweepResult,
    gpc_sharing_sweep,
    mux_sharing_sweep,
    rw_contention_profile,
)
from .clockmap import ClockSurvey, repeated_skew_statistics, survey_clocks
from .colocation import (
    ColocationPlan,
    detect_colocation_by_contention,
    infer_scheduling_policy,
    plan_tpc_colocation,
    probe_block_placement,
)

__all__ = [
    "TpcSweepResult",
    "measure_active_sms",
    "recover_tpc_pairs",
    "sweep_tpc_pairing",
    "GpcSweepResult",
    "recover_gpc_groups",
    "sweep_gpc_membership",
    "verify_topology",
    "RwContentionProfile",
    "SharingSweepResult",
    "gpc_sharing_sweep",
    "mux_sharing_sweep",
    "rw_contention_profile",
    "ClockSurvey",
    "repeated_skew_statistics",
    "survey_clocks",
    "ColocationPlan",
    "detect_colocation_by_contention",
    "infer_scheduling_policy",
    "plan_tpc_colocation",
    "probe_block_placement",
]

"""Contention characterization sweeps (Figures 5, 8, and 11).

These experiments quantify *how much* the shared channels leak:

* :func:`rw_contention_profile` — read vs write degradation for the TPC
  channel (2 SMs) and the GPC channel (1-7 active TPCs): Figure 5.
* :func:`mux_sharing_sweep` — SM0's execution time as a function of the
  co-runner's traffic fraction, for a mux-sharing co-runner (SM1) and a
  non-sharing one (e.g. SM12): Figure 8.  The linear slope for SM1 versus
  the flat line for SM12 is the leakage the covert channel encodes bits
  into.
* :func:`gpc_sharing_sweep` — the same sweep at GPC granularity
  (Figure 11); the slope is smaller because of the GPC bandwidth speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import GpuConfig
from .tpc_discovery import measure_active_sms


@dataclass
class RwContentionProfile:
    """Figure 5's data."""

    #: Normalized 2-SM TPC-channel execution time, per access kind.
    tpc: Dict[str, float] = field(default_factory=dict)
    #: kind -> list over 1..N activated TPCs of normalized execution time.
    gpc: Dict[str, List[float]] = field(default_factory=dict)


def rw_contention_profile(
    config: GpuConfig,
    ops: int = 12,
    max_tpcs: Optional[int] = None,
    gpc_id: int = 0,
) -> RwContentionProfile:
    """Measure read/write contention on TPC and GPC channels (Figure 5)."""
    profile = RwContentionProfile()
    members = config.gpc_members()[gpc_id]
    if max_tpcs is None:
        max_tpcs = len(members)
    anchor_sm = config.tpc_sms(members[0])[0]
    pair = set(config.tpc_sms(members[0]))
    for kind in ("write", "read"):
        baseline = measure_active_sms(config, {anchor_sm}, kind, ops=ops)[
            anchor_sm
        ]
        profile.tpc[kind] = (
            measure_active_sms(config, pair, kind, ops=ops)[anchor_sm]
            / baseline
        )
        series: List[float] = []
        for active_tpcs in range(1, max_tpcs + 1):
            active = {
                config.tpc_sms(tpc)[0] for tpc in members[:active_tpcs]
            }
            measured = measure_active_sms(config, active, kind, ops=ops)
            series.append(measured[anchor_sm] / baseline)
        profile.gpc[kind] = series
    return profile


@dataclass
class SharingSweepResult:
    """Figures 8/11: probe time vs co-runner traffic fraction."""

    fractions: List[float]
    #: co-runner label -> normalized probe execution time per fraction.
    series: Dict[str, List[float]] = field(default_factory=dict)

    def slope(self, label: str) -> float:
        """Least-squares slope of a series (leakage strength)."""
        xs = self.fractions
        ys = self.series[label]
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        den = sum((x - mean_x) ** 2 for x in xs)
        return num / den if den else 0.0


def mux_sharing_sweep(
    config: GpuConfig,
    probe_sm: int = 0,
    sharing_sm: Optional[int] = None,
    non_sharing_sm: Optional[int] = None,
    fractions: Sequence[float] = (0.0, 0.12, 0.24, 0.36, 0.48, 0.6, 0.72, 0.84, 0.96),
    ops: int = 16,
) -> SharingSweepResult:
    """Reproduce Figure 8: vary the co-runner's write-traffic fraction.

    ``sharing_sm`` defaults to the probe's TPC sibling; ``non_sharing_sm``
    defaults to an SM of another TPC in the same GPC (SM12 in the paper).
    """
    if sharing_sm is None:
        siblings = config.tpc_sms(config.sm_to_tpc(probe_sm))
        sharing_sm = next(sm for sm in siblings if sm != probe_sm)
    if non_sharing_sm is None:
        gpc = config.sm_to_gpc(probe_sm)
        other_tpc = next(
            tpc
            for tpc in config.gpc_members()[gpc]
            if tpc != config.sm_to_tpc(probe_sm)
        )
        non_sharing_sm = config.tpc_sms(other_tpc)[0]
    baseline = measure_active_sms(config, {probe_sm}, "write", ops=ops)[
        probe_sm
    ]
    result = SharingSweepResult(fractions=list(fractions))
    for label, other in (
        (f"SM{sharing_sm}", sharing_sm),
        (f"SM{non_sharing_sm}", non_sharing_sm),
    ):
        series: List[float] = []
        for fraction in fractions:
            measured = measure_active_sms(
                config, {probe_sm, other}, "write", ops=ops,
                duty_overrides={other: fraction},
            )
            series.append(measured[probe_sm] / baseline)
        result.series[label] = series
    return result


def gpc_sharing_sweep(
    config: GpuConfig,
    gpc_id: int = 0,
    fractions: Sequence[float] = (0.0, 0.12, 0.24, 0.36, 0.48, 0.6, 0.72, 0.84, 0.96),
    ops: int = 8,
    num_senders: int = 4,
) -> SharingSweepResult:
    """Reproduce Figure 11: GPC-channel leakage slope.

    The probe TPC issues reads while ``num_senders`` other TPCs of the
    same GPC (or, for the control series, TPCs of a *different* GPC)
    issue reads at a varied fraction.  Same-GPC senders raise the probe's
    time linearly but with a much smaller slope than the TPC channel —
    the GPC bandwidth speedup absorbs most of the pressure (the paper's
    "speedup reduces the impact of interconnect contention");
    different-GPC senders leave it flat.
    """
    members = config.gpc_members()
    probe_tpc = members[gpc_id][0]
    probe_sm = config.tpc_sms(probe_tpc)[0]
    same = [
        config.tpc_sms(t)[0]
        for t in members[gpc_id][1 : 1 + num_senders]
    ]
    other_gpc = (gpc_id + 1) % config.num_gpcs
    different = [config.tpc_sms(t)[0] for t in members[other_gpc]][: len(same)]
    baseline = measure_active_sms(config, {probe_sm}, "read", ops=ops)[
        probe_sm
    ]
    result = SharingSweepResult(fractions=list(fractions))
    for label, senders in (
        ("same-gpc", same),
        ("different-gpc", different),
    ):
        series: List[float] = []
        for fraction in fractions:
            active = {probe_sm} | set(senders)
            measured = measure_active_sms(
                config, active, "read", ops=ops,
                duty_overrides={sm: fraction for sm in senders},
            )
            series.append(measured[probe_sm] / baseline)
        result.series[label] = series
    return result

"""repro — reproduction of "Network-on-Chip Microarchitecture-based Covert
Channel in GPUs" (Ahn et al., MICRO 2021).

The package provides:

* :mod:`repro.sim` — cycle-level simulation kernel and clock registers,
* :mod:`repro.noc` — the hierarchical GPU on-chip network (muxes, arbiters,
  crossbar) whose bandwidth sharing the attack exploits,
* :mod:`repro.gpu` — the Volta-like GPU model (SMs, caches, DRAM, streams,
  thread-block scheduler),
* :mod:`repro.reveng` — the reverse-engineering experiments of Section 3,
* :mod:`repro.channel` — the TPC/GPC covert channels of Section 4-5,
* :mod:`repro.defense` — the secure-arbitration countermeasures of
  Section 6,
* :mod:`repro.analysis` — metrics and figure/table series builders.

Quick start::

    from repro import VOLTA_V100, GpuDevice
    from repro.channel import TpcCovertChannel

    channel = TpcCovertChannel(VOLTA_V100)
    result = channel.transmit([1, 0, 1, 1, 0, 0, 1, 0])
    print(result.received_symbols, result.error_rate, result.bandwidth_mbps)
"""

from .config import (
    ARBITRATION_POLICIES,
    ARCHITECTURES,
    ClockSkewModel,
    DramTiming,
    GpuConfig,
    PASCAL_P100,
    TURING_TU104,
    VOLTA_V100,
    medium_config,
    small_config,
)
from .gpu.device import GpuDevice
from .gpu.kernel import Kernel, Stream

__version__ = "1.0.0"

__all__ = [
    "ARBITRATION_POLICIES",
    "ARCHITECTURES",
    "ClockSkewModel",
    "DramTiming",
    "GpuConfig",
    "PASCAL_P100",
    "TURING_TU104",
    "VOLTA_V100",
    "medium_config",
    "small_config",
    "GpuDevice",
    "Kernel",
    "Stream",
    "__version__",
]

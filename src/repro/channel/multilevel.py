"""Multi-level channel communication (Section 5, Figure 14).

Because the interconnect channel measures the *degree* of contention
directly, the sender can modulate the number of unique memory requests per
warp (the coalescing degree) to put more than one bit in each slot: the
paper demonstrates 2 bits per slot using 0%, 25%, 50%, and 100% request
densities (0/8/16/32 unique lines), for ~1.6x more bandwidth at a higher
error rate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..config import GpuConfig
from .metrics import TransmissionResult
from .protocol import ChannelParams, decode_multilevel
from .tpc_channel import TpcCovertChannel

#: Default request densities: symbol s -> unique lines per sender warp op.
DEFAULT_LEVELS = (0, 8, 16, 32)


class MultiLevelTpcChannel(TpcCovertChannel):
    """A TPC channel carrying log2(len(levels)) bits per slot."""

    def __init__(
        self,
        config: GpuConfig,
        params: Optional[ChannelParams] = None,
        channels: Optional[Sequence[int]] = None,
        levels: Sequence[int] = DEFAULT_LEVELS,
        seed_salt: int = 0,
    ) -> None:
        super().__init__(config, params, channels, seed_salt)
        if len(levels) < 2:
            raise ValueError("need at least two levels")
        if levels[0] != 0:
            raise ValueError("level 0 must be silence (0 requests)")
        self.levels = list(levels)
        self._level_thresholds: Optional[List[float]] = None

    @property
    def bits_per_symbol(self) -> float:
        from math import log2

        return log2(len(self.levels))

    def calibrate_levels(self, repeats: int = 8) -> List[float]:
        """Transmit each level repeatedly; cut thresholds between the
        per-level latency means (the staircase of Figure 14)."""
        num_levels = len(self.levels)
        pattern = [
            symbol for symbol in range(num_levels) for _ in range(repeats)
        ]
        per_channel = [list(pattern) for _ in range(self.num_channels)]
        measurements, _ = self._run(per_channel, levels=self.levels)
        by_level: Dict[int, List[float]] = {s: [] for s in range(num_levels)}
        for series in measurements.values():
            for slot, value in enumerate(series):
                by_level[pattern[slot]].append(value)
        means = [
            sum(values) / len(values) for values in by_level.values()
        ]
        if sorted(means) != means:
            # Levels must produce monotonically increasing latency for a
            # threshold decoder to work; surface miscalibration early.
            raise RuntimeError(
                f"level latencies not monotonic: {[round(m) for m in means]}"
            )
        thresholds = [
            (means[i] + means[i + 1]) / 2.0 for i in range(num_levels - 1)
        ]
        self._level_thresholds = thresholds
        return thresholds

    def level_means(self, repeats: int = 8) -> List[float]:
        """Per-level mean latency (for plotting the Figure 14 staircase)."""
        num_levels = len(self.levels)
        pattern = [
            symbol for symbol in range(num_levels) for _ in range(repeats)
        ]
        per_channel = [list(pattern) for _ in range(self.num_channels)]
        measurements, _ = self._run(per_channel, levels=self.levels)
        by_level: Dict[int, List[float]] = {s: [] for s in range(num_levels)}
        for series in measurements.values():
            for slot, value in enumerate(series):
                by_level[pattern[slot]].append(value)
        return [sum(v) / len(v) for v in by_level.values()]

    def transmit(self, symbols: Sequence[int]) -> TransmissionResult:
        """Send multi-level symbols (each in ``range(len(levels))``)."""
        symbols = list(symbols)
        if not symbols:
            raise ValueError("empty payload")
        bad = [s for s in symbols if not 0 <= s < len(self.levels)]
        if bad:
            raise ValueError(f"symbols out of range: {bad[:5]}")
        if self._level_thresholds is None:
            self.calibrate_levels()
        per_channel = self._split_payload(symbols)
        measurements, cycles = self._run(per_channel, levels=self.levels)
        decoded = [
            decode_multilevel(measurements[c], self._level_thresholds)
            for c in range(self.num_channels)
        ]
        received = self._assemble(decoded, len(symbols))
        return TransmissionResult(
            config=self.config,
            sent_symbols=symbols,
            received_symbols=received,
            cycles=cycles,
            bits_per_symbol=self.bits_per_symbol,
            measurements=measurements,
            thresholds=list(self._level_thresholds),
        )

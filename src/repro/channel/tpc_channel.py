"""TPC covert channel (Section 4.4).

The sender and receiver are co-located on the two SMs of a TPC; the sender
modulates *write* traffic (writes saturate the TPC injection channel,
Section 3.4) and the receiver observes its own probe latency through the
shared 2:1 mux.  A single TPC channel reaches ~1 Mbps on the paper's
hardware; running all 40 TPC channels in parallel reaches ~24 Mbps with
negligible error.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..config import GpuConfig
from ..noc.packet import WRITE
from .base import CovertChannelBase
from .protocol import ChannelParams


class TpcCovertChannel(CovertChannelBase):
    """One or more parallel TPC channels.

    Parameters
    ----------
    config:
        GPU configuration.
    channels:
        TPC ids carrying a channel.  ``None`` means the single-TPC channel
        on TPC 0; use :meth:`all_channels` for the multi-TPC attack.
    """

    def __init__(
        self,
        config: GpuConfig,
        params: Optional[ChannelParams] = None,
        channels: Optional[Sequence[int]] = None,
        seed_salt: int = 0,
    ) -> None:
        super().__init__(config, params, seed_salt)
        if channels is None:
            channels = [0]
        self.channel_tpcs = list(channels)
        missing = set(self.channel_tpcs) - set(range(config.num_tpcs))
        if missing:
            raise ValueError(f"unknown TPC ids: {sorted(missing)}")

    @classmethod
    def all_channels(
        cls,
        config: GpuConfig,
        params: Optional[ChannelParams] = None,
        seed_salt: int = 0,
    ) -> "TpcCovertChannel":
        """The multi-TPC attack: one channel on every TPC of the GPU.

        With no explicit params, the slot is stretched slightly relative
        to the single-channel default: co-GPC channels couple through the
        shared GPC structures (the noise the paper observes when scaling
        up), so each probe takes longer.
        """
        if params is None:
            params = ChannelParams(slot_per_iteration=500)
        return cls(
            config,
            params,
            channels=list(range(config.num_tpcs)),
            seed_salt=seed_salt,
        )

    def default_params(self) -> ChannelParams:
        return ChannelParams(sender_kind=WRITE, sender_warps=2)

    def _role_blocks(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Block i of each grid lands on TPC ``_block_tpcs[i]``; the sender
        grid takes the first SM, the receiver grid the second."""
        tpc_to_channel = {
            tpc: channel for channel, tpc in enumerate(self.channel_tpcs)
        }
        senders: Dict[int, int] = {}
        receivers: Dict[int, int] = {}
        for block, tpc in enumerate(self._block_tpcs):
            channel = tpc_to_channel.get(tpc)
            if channel is not None:
                senders[block] = channel
                receivers[block] = channel
        return senders, receivers

"""Handshake/preamble synchronization — the clock-fuzzing workaround.

Section 6 observes that clock fuzzing "does not necessarily remove the
covert channel as alternative synchronization approaches can be
explored", e.g. handshaking on the interconnect channel itself.  This
module implements that fallback as an *asynchronous* channel that never
trusts the clock register across SMs:

* the **sender** paces itself by instruction counting (busy loops —
  `WaitCycles` — whose duration is independent of the fuzzed clock
  register) and prefixes the payload with a fixed preamble;
* the **receiver** simply probes back-to-back, recording every probe
  latency — a sampled waveform of the channel contention;
* the decoder recovers timing offline: it grid-searches the preamble's
  (offset, samples-per-slot) against the waveform (matched-filter
  alignment, telecom-style), then averages each symbol window and
  thresholds.

Works unchanged when ``config.clock_fuzz`` is large enough to defeat the
baseline clock-synchronized channel — demonstrating the paper's point
that fuzzing alone is not a sufficient countermeasure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import GpuConfig
from ..gpu.device import GpuDevice
from ..gpu.kernel import Kernel
from ..gpu.warp import MemOp, WaitCycles, WarpContext, WarpProgram, READ
from .base import CovertChannelBase, block_to_tpc_map
from .metrics import TransmissionResult
from .protocol import (
    ChannelParams,
    receiver_addresses,
    region_bytes,
    sender_addresses,
)

#: A preamble with sharp autocorrelation (Barker-7-like).
DEFAULT_PREAMBLE = (1, 1, 1, 0, 0, 1, 0)


def _async_sender_program(context: WarpContext) -> WarpProgram:
    """Counted-pacing sender: bursts for '1', matched idle for '0'."""
    args = context.args
    params: ChannelParams = args["params"]
    bits = args["channel_bits"].get(context.block_id)
    if bits is None:
        return
    line = args["line_bytes"]
    base = args["base_for"][context.block_id] + context.warp_id * region_bytes(
        params, line
    )
    #: Busy cycles standing in for a '1' burst's issue time, so '0' and
    #: '1' slots take the same wall time without consulting the clock.
    zero_pad = args["zero_pad"]
    slot_pad = args["slot_pad"]
    for symbol in bits:
        if symbol:
            for op in range(params.iterations):
                addresses = sender_addresses(params, base, line, op)
                yield MemOp(
                    params.sender_kind, addresses, wait_for_completion=False
                )
        else:
            yield WaitCycles(zero_pad)
        yield WaitCycles(slot_pad)


def _async_receiver_program(context: WarpContext) -> WarpProgram:
    """Free-running receiver: back-to-back probes, every latency kept."""
    args = context.args
    params: ChannelParams = args["params"]
    num_probes = args["num_probes"].get(context.block_id)
    if num_probes is None:
        return
    line = args["line_bytes"]
    base = args["base_for"][context.block_id]
    samples: Dict = args["samples"]
    for index in range(num_probes):
        addresses = receiver_addresses(params, base, line, index)
        latency = yield MemOp(READ, addresses)
        samples[(context.block_id, index)] = latency


def waveform_timeline(waveform: Sequence[float]) -> List[float]:
    """Midpoint time of each back-to-back probe.

    Probe ``k`` starts when probe ``k-1`` completes, so its latency IS its
    duration: the cumulative sum reconstructs the wall-clock axis the
    clock register would have provided.
    """
    midpoints: List[float] = []
    now = 0.0
    for latency in waveform:
        midpoints.append(now + latency / 2.0)
        now += latency
    return midpoints


def _window_mean(
    waveform: Sequence[float],
    midpoints: Sequence[float],
    start: float,
    end: float,
) -> Optional[float]:
    values = [
        value
        for value, mid in zip(waveform, midpoints)
        if start <= mid < end
    ]
    if not values:
        return None
    return sum(values) / len(values)


@dataclass
class AlignmentFit:
    """Result of the preamble time-domain search."""

    offset_cycles: float
    score: float


def fit_preamble(
    waveform: Sequence[float],
    preamble: Sequence[int],
    slot_cycles: int,
    payload_symbols: int,
    step: Optional[int] = None,
    offset_min: float = 0.0,
    offset_max: Optional[float] = None,
) -> AlignmentFit:
    """Slide the preamble along the reconstructed time axis.

    The symbol rate is known exactly (the sender paces ``slot_cycles``
    per symbol by instruction counting); only the start offset is
    unknown.  The best offset maximizes the mean-latency contrast between
    the preamble's '1' and '0' windows.  ``offset_min``/``offset_max``
    bound the search (frame-by-frame decoding re-anchors each frame near
    its expected position).
    """
    midpoints = waveform_timeline(waveform)
    total_time = sum(waveform)
    frame_time = slot_cycles * (len(preamble) + payload_symbols)
    step = step or max(1, slot_cycles // 8)
    best = AlignmentFit(offset_cycles=offset_min, score=float("-inf"))
    offset = max(0.0, offset_min)
    limit = total_time + slot_cycles
    if offset_max is not None:
        limit = min(limit, offset_max + frame_time)
    while offset + frame_time <= limit:
        ones: List[float] = []
        zeros: List[float] = []
        for index, bit in enumerate(preamble):
            mean = _window_mean(
                waveform,
                midpoints,
                offset + index * slot_cycles,
                offset + (index + 1) * slot_cycles,
            )
            if mean is not None:
                (ones if bit else zeros).append(mean)
        if ones and zeros:
            score = sum(ones) / len(ones) - sum(zeros) / len(zeros)
            if score > best.score:
                best = AlignmentFit(offset, score)
        offset += step
    return best


def decode_waveform(
    waveform: Sequence[float],
    fit: AlignmentFit,
    preamble_len: int,
    payload_symbols: int,
    slot_cycles: int,
    threshold: float,
) -> List[int]:
    """Average each symbol's time window and threshold it."""
    midpoints = waveform_timeline(waveform)
    start = fit.offset_cycles + preamble_len * slot_cycles
    symbols: List[int] = []
    for index in range(payload_symbols):
        mean = _window_mean(
            waveform,
            midpoints,
            start + index * slot_cycles,
            start + (index + 1) * slot_cycles,
        )
        symbols.append(1 if mean is not None and mean > threshold else 0)
    return symbols


class HandshakeTpcChannel(CovertChannelBase):
    """Clock-free TPC channel: preamble alignment + counted pacing."""

    def __init__(
        self,
        config: GpuConfig,
        params: Optional[ChannelParams] = None,
        channels: Optional[Sequence[int]] = None,
        preamble: Sequence[int] = DEFAULT_PREAMBLE,
        frame_symbols: int = 10,
        seed_salt: int = 0,
    ) -> None:
        super().__init__(config, params, seed_salt)
        if channels is None:
            channels = [0]
        self.channel_tpcs = list(channels)
        self.preamble = list(preamble)
        if len(set(self.preamble)) < 2:
            raise ValueError("preamble must contain both symbols")
        if frame_symbols < 1:
            raise ValueError("frame_symbols must be positive")
        #: Payload symbols between preambles.  Counted pacing drifts a few
        #: cycles per symbol (a '1' burst's drain time varies with
        #: contention), so each frame re-anchors on a fresh preamble.
        self.frame_symbols = frame_symbols
        #: Calibrated per-channel thresholds and the effective slot
        #: length (counted pacing runs slightly over the nominal slot
        #: when the burst drains slower under contention).
        self._thresholds: Optional[List[float]] = None
        self._slot_estimate: Optional[int] = None

    def default_params(self) -> ChannelParams:
        # A slightly longer slot absorbs the pacing drift that counted
        # slots accumulate (no mid-frame resync exists in this mode).
        return ChannelParams(sender_warps=2, slot_per_iteration=450)

    def _role_blocks(self):
        tpc_to_channel = {
            tpc: index for index, tpc in enumerate(self.channel_tpcs)
        }
        senders = {}
        receivers = {}
        for block, tpc in enumerate(self._block_tpcs):
            channel = tpc_to_channel.get(tpc)
            if channel is not None:
                senders[block] = channel
                receivers[block] = channel
        return senders, receivers

    # ------------------------------------------------------------------ #
    def _run_async(
        self, per_channel_bits: List[List[int]]
    ) -> Tuple[Dict[int, List[float]], int]:
        config = self.config
        params = self.params
        senders, receivers = self._role_blocks()
        line = config.l2_line_bytes
        region = region_bytes(params, line)
        block_stride = region * (params.sender_warps + 2)
        sender_base = {block: block * block_stride for block in senders}
        receiver_base = {
            block: block * block_stride + params.sender_warps * region
            for block in receivers
        }
        # The '0' idle must match a '1' burst's *drain* time through the
        # width-1 TPC channel, or slot lengths would be data dependent:
        # all sender warps' flits serialize at tpc_channel_width/cycle.
        flits_per_txn = (
            config.write_request_flits
            if params.sender_kind == "write"
            else config.read_request_flits
        )
        zero_pad = (
            params.iterations * params.lanes * flits_per_txn
            * params.sender_warps // max(1, config.tpc_channel_width)
        )
        slot_pad = max(32, params.slot - zero_pad)
        frame_len = max(len(bits) for bits in per_channel_bits)
        #: Receiver samples generously: frame duration / min probe time.
        probe_floor = 200
        num_probes = {
            block: 2 + (frame_len + 2) * params.slot // probe_floor
            for block in receivers
        }
        samples: Dict = {}
        device = GpuDevice(config, seed_salt=self.seed_salt)
        sender_kernel = Kernel(
            _async_sender_program,
            num_blocks=config.num_tpcs,
            warps_per_block=params.sender_warps,
            args={
                "params": params,
                "channel_bits": {
                    block: per_channel_bits[channel]
                    for block, channel in senders.items()
                },
                "base_for": sender_base,
                "line_bytes": line,
                "zero_pad": zero_pad,
                "slot_pad": slot_pad,
            },
            name="trojan-async",
        )
        receiver_kernel = Kernel(
            _async_receiver_program,
            num_blocks=config.num_tpcs,
            warps_per_block=1,
            args={
                "params": params,
                "num_probes": num_probes,
                "base_for": receiver_base,
                "line_bytes": line,
                "samples": samples,
            },
            name="spy-async",
        )
        for block, base in sender_base.items():
            device.preload_region(base, params.sender_warps * region)
        for block, base in receiver_base.items():
            device.preload_region(base, region)
        times = device.run_kernels([sender_kernel, receiver_kernel])
        waveforms: Dict[int, List[float]] = {}
        for block, channel in receivers.items():
            waveforms[channel] = [
                samples.get((block, index), 0.0)
                for index in range(num_probes[block])
            ]
        return waveforms, times["spy-async"]

    # ------------------------------------------------------------------ #
    def calibrate(self, training_symbols: int = 12) -> float:
        """Estimate per-channel thresholds and the effective slot length.

        Transmits a known alternating pattern; the threshold sits between
        the low/high latency clusters, and the slot length is recovered
        by maximizing the known pattern's time-domain contrast over a
        small grid around the nominal slot (counted pacing stretches
        slightly when the burst drains slower than its idle equivalent).
        """
        pattern = [slot % 2 for slot in range(training_symbols)]
        framed = [
            self.preamble + pattern for _ in range(self.num_channels)
        ]
        waveforms, _ = self._run_async(framed)
        known = self.preamble + pattern
        nominal = self.params.slot
        candidates = range(
            int(nominal * 0.92), int(nominal * 1.2), max(8, nominal // 48)
        )
        thresholds: List[float] = []
        slot_votes: List[int] = []
        for channel in range(self.num_channels):
            waveform = waveforms[channel]
            low = sorted(waveform)[: max(1, len(waveform) // 3)]
            high = sorted(waveform)[-max(1, len(waveform) // 3):]
            thresholds.append(
                (sum(low) / len(low) + sum(high) / len(high)) / 2.0
            )
            best_slot = nominal
            best_score = float("-inf")
            for slot in candidates:
                fit = fit_preamble(waveform, known, slot, 0)
                if fit.score > best_score:
                    best_score = fit.score
                    best_slot = slot
            slot_votes.append(best_slot)
        self._thresholds = thresholds
        self._slot_estimate = round(sum(slot_votes) / len(slot_votes))
        return sum(thresholds) / len(thresholds)

    def _frames(self, bits: List[int]) -> List[List[int]]:
        size = self.frame_symbols
        return [bits[i : i + size] for i in range(0, len(bits), size)]

    def transmit(self, symbols: Sequence[int]) -> TransmissionResult:
        symbols = list(symbols)
        if not symbols:
            raise ValueError("empty payload")
        if self._thresholds is None:
            self.calibrate()
        per_channel = self._split_payload(symbols)
        framed: List[List[int]] = []
        for bits in per_channel:
            sequence: List[int] = []
            for frame in self._frames(bits):
                sequence.extend(self.preamble)
                sequence.extend(frame)
            framed.append(sequence)
        waveforms, cycles = self._run_async(framed)
        slot = self._slot_estimate or self.params.slot
        decoded: List[List[int]] = []
        for channel in range(self.num_channels):
            waveform = waveforms[channel]
            bits_out: List[int] = []
            hint = 0.0
            for frame in self._frames(per_channel[channel]):
                fit = fit_preamble(
                    waveform,
                    self.preamble,
                    slot,
                    len(frame),
                    offset_min=max(0.0, hint - 2 * slot),
                    offset_max=hint + 4 * slot,
                )
                bits_out.extend(
                    decode_waveform(
                        waveform,
                        fit,
                        len(self.preamble),
                        len(frame),
                        slot,
                        self._thresholds[channel],
                    )
                )
                hint = fit.offset_cycles + slot * (
                    len(self.preamble) + len(frame)
                )
            decoded.append(bits_out)
        received = self._assemble(decoded, len(symbols))
        return TransmissionResult(
            config=self.config,
            sent_symbols=symbols,
            received_symbols=received,
            cycles=cycles,
            measurements=waveforms,
        )

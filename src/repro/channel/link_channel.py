"""Inter-GPU (NVLink-class) link-contention covert channel.

The on-chip channels modulate a TPC or GPC mux; the link channel ports
the same protocol one level up the hierarchy, to the serializing link of
a :class:`~repro.interconnect.MultiGpuSystem` fabric:

* the **trojan** runs on GPU0 and, for a '1' bit, streams posted remote
  writes at GPU1's L2 (peer access over NVLink);
* the **spy** also runs on GPU0 and times remote reads against lines it
  preloaded into GPU1's L2.

Both traffic streams meet in GPU0's fabric egress queue and then in the
GPU0→GPU1 link serializer, so a streaming trojan inflates the spy's
remote round-trip the same way a streaming TPC neighbour inflates a
local probe — the paper's mechanism, transplanted onto the inter-GPU
interconnect.  The *contended resource* is per device, not per TPC, so
trojan and spy merely have to be resident on the same source GPU — but
the *clock synchronization* still demands co-location: per-SM clock
registers in different GPCs differ by billions of cycles (Section 4.1),
which makes independent mask-boundary syncs land a random fraction of
the mask period apart.  The channel therefore reuses the scheduling
trick of the on-chip channels: sender and receiver grids are one block
per TPC (only block 0 does any work; the rest idle out), which
co-locates the two block-0 warps on the two SMs of TPC 0 where the
skew is a few cycles.

Timing is Algorithm 2 unchanged — clock-mask synchronization, fixed
slots, threshold decoding — with slots stretched to cover the remote
round-trip (hundreds of cycles one-way) instead of the on-chip L2 trip.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..config import GpuConfig, LinkConfig
from ..gpu.kernel import Kernel
from ..interconnect import MultiGpuSystem
from .metrics import TransmissionResult
from .protocol import (
    ChannelParams,
    decode_binary,
    receiver_program,
    region_bytes,
    sender_program,
)


class LinkCovertChannel:
    """Covert channel over one inter-GPU link of a multi-device system.

    Parameters
    ----------
    config:
        Per-device GPU configuration (all devices identical).
    link:
        Fabric shape; defaults to a 2-device ring.  ``target_device``
        must be reachable from device 0 under this topology.
    params:
        Protocol parameters; ``default_params`` stretches the slots for
        the remote round-trip.
    target_device:
        The device whose L2 both roles address remotely (the far end of
        the contended link).  Trojan and spy always run on device 0.
    """

    def __init__(
        self,
        config: GpuConfig,
        link: Optional[LinkConfig] = None,
        params: Optional[ChannelParams] = None,
        seed_salt: int = 0,
        target_device: int = 1,
    ) -> None:
        self.config = config
        self.link = link if link is not None else LinkConfig()
        if not 0 < target_device < self.link.num_devices:
            raise ValueError(
                f"target_device {target_device} not in this "
                f"{self.link.num_devices}-device fabric (or is the "
                f"attacker's own device 0)"
            )
        self.params = params or self.default_params()
        self.seed_salt = seed_salt
        self.target_device = target_device
        self._channel_thresholds: Optional[List[float]] = None
        #: Telemetry manifests of the most recent run, one per device
        #: (None unless ``config.telemetry_enabled``).
        self.last_telemetry: Optional[Dict] = None

    def default_params(self) -> ChannelParams:
        """Slot timing sized for the remote round-trip.

        A remote read pays serialization plus flight latency both ways on
        top of the far L2 lookup (~500+ cycles uncontended at default
        link parameters, versus ~200 on-chip), and a contended probe must
        still complete inside the slot, so both the base and the
        per-iteration term are several times the on-chip channel's.
        """
        return ChannelParams(
            iterations=2,
            slot_base=2000,
            slot_per_iteration=3000,
            sender_warps=2,
            sync_mask=(1 << 15) - 1,
        )

    @property
    def num_channels(self) -> int:
        """Independent bit pipes — one: the single contended link."""
        return 1

    # -- transmission ---------------------------------------------------- #
    def _run(
        self, per_channel: List[List[int]]
    ) -> Tuple[Dict[int, List[float]], int]:
        """One transmission over a freshly built multi-GPU system."""
        config = self.config
        params = self.params
        line = config.l2_line_bytes
        region = region_bytes(params, line)
        sender_base = 0
        receiver_base = params.sender_warps * region
        measurements: Dict[Tuple[int, int], float] = {}
        system = MultiGpuSystem(
            config, self.link, seed_salt=self.seed_salt
        )
        attacker = system.devices[0]
        target = system.devices[self.target_device]
        # Both roles touch *remote* lines only; preload them in the far
        # L2 so every access hits there (Section 4.2's discipline).
        target.preload_region(sender_base, params.sender_warps * region)
        target.preload_region(receiver_base, region)
        # One block per TPC, only block 0 active: the dispatch order
        # then co-locates sender block 0 and receiver block 0 on the
        # two SMs of TPC 0, whose clock registers agree to a few cycles
        # — the mask-boundary sync is meaningless across GPCs.
        sender_kernel = Kernel(
            sender_program,
            num_blocks=config.num_tpcs,
            warps_per_block=params.sender_warps,
            args={
                "params": params,
                "channel_bits": {0: per_channel[0]},
                "base_for": {0: sender_base},
                "line_bytes": line,
                "levels": None,
                "channel_of": {0: 0},
                "target_device": self.target_device,
            },
            name="trojan",
        )
        receiver_kernel = Kernel(
            receiver_program,
            num_blocks=config.num_tpcs,
            warps_per_block=1,
            args={
                "params": params,
                "num_symbols": {0: len(per_channel[0])},
                "base_for": {0: receiver_base},
                "line_bytes": line,
                "measurements": measurements,
                "channel_of": {0: 0},
                "target_device": self.target_device,
            },
            name="spy",
        )
        attacker.launch(sender_kernel)
        attacker.launch(receiver_kernel)
        start = system.cycle
        system.engine.run_until(
            lambda: sender_kernel.done and receiver_kernel.done,
            max_cycles=20_000_000,
            check_every=16,
        )
        cycles = system.cycle - start
        sender_sm = sender_kernel.blocks[0].sm_id
        receiver_sm = receiver_kernel.blocks[0].sm_id
        if sender_sm is None or receiver_sm is None:
            raise RuntimeError("a channel block was never dispatched")
        if config.sm_to_tpc(sender_sm) != config.sm_to_tpc(receiver_sm):
            raise RuntimeError(
                f"link channel: sender on SM {sender_sm}, receiver on "
                f"SM {receiver_sm} — not co-located, clock sync is void"
            )
        if config.telemetry_enabled:
            self.last_telemetry = {
                f"device{d}": device.telemetry_manifest()
                for d, device in enumerate(system.devices)
            }
        series = [
            measurements.get((0, slot), 0.0)
            for slot in range(len(per_channel[0]))
        ]
        return {0: series}, cycles

    # -- calibration ------------------------------------------------------ #
    def calibrate(self, training_symbols: int = 16) -> float:
        """Transmit a known 0101... pattern and place the threshold
        midway between the two observed latency clusters."""
        pattern = [slot % 2 for slot in range(training_symbols)]
        measurements, _ = self._run([pattern])
        series = measurements[0]
        zeros = [v for slot, v in enumerate(series) if not pattern[slot]]
        ones = [v for slot, v in enumerate(series) if pattern[slot]]
        if not zeros or not ones:
            raise RuntimeError("calibration needs both symbol classes")
        threshold = (
            sum(zeros) / len(zeros) + sum(ones) / len(ones)
        ) / 2.0
        self._channel_thresholds = [threshold]
        self.params = self.params.with_(threshold=threshold)
        return threshold

    def transmit(self, symbols: Sequence[int]) -> TransmissionResult:
        """Send ``symbols`` (0/1 list) over the inter-GPU link."""
        symbols = list(symbols)
        if not symbols:
            raise ValueError("empty payload")
        if self.params.threshold is None:
            self.calibrate()
        measurements, cycles = self._run([symbols])
        threshold = (self._channel_thresholds or [self.params.threshold])[0]
        received = decode_binary(measurements[0], threshold)
        return TransmissionResult(
            config=self.config,
            sent_symbols=symbols,
            received_symbols=received,
            cycles=cycles,
            measurements=measurements,
            thresholds=[threshold],
            telemetry=self.last_telemetry,
        )

    def transmit_bytes(self, data: bytes) -> TransmissionResult:
        """Convenience: send raw bytes MSB-first."""
        bits = [
            (byte >> (7 - bit)) & 1 for byte in data for bit in range(8)
        ]
        return self.transmit(bits)

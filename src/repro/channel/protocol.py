"""The covert-channel protocol: slot timing, synchronization, and the
sender/receiver warp programs of Algorithm 2.

One bit is communicated per timing slot of ``T`` cycles, agreed between
sender and receiver ahead of time.  Within a slot:

* the **sender** injects ``iterations`` uncoalesced memory operations to
  communicate '1', or stays silent for '0';
* the **receiver** issues ``iterations`` uncoalesced probe reads to the L2
  and records the total latency; contention on the shared interconnect
  channel marks a '1'.

Both sides count the slot on their *own* SM clock register.  Because the
skew between co-located SMs is a few cycles (Section 4.1), no handshake is
needed; a periodic coarse resynchronization — waiting until the low
``sync_mask`` bits of the clock equal a fixed value — resets any drift
accumulated from slot overruns (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..config import GpuConfig
from ..gpu.coalescer import (
    lane_addresses_coalesced,
    lane_addresses_partial,
    lane_addresses_uncoalesced,
)
from ..gpu.warp import (
    MemOp,
    ReadClock,
    WaitClockMask,
    WaitUntilClock,
    WarpContext,
    WarpProgram,
    READ,
    WRITE,
)


@dataclass(frozen=True)
class ChannelParams:
    """Tunable parameters shared by sender and receiver.

    The defaults are calibrated for the simulated Volta configuration the
    same way the paper calibrates for real hardware: the slot must fit the
    sender's injection burst and the receiver's probes with margin, and
    the threshold sits between the contended / uncontended probe times.
    """

    #: Memory operations used to communicate one bit (Figure 10 x-axis).
    iterations: int = 4
    #: Slot duration in cycles; if 0, computed as
    #: ``slot_base + iterations * slot_per_iteration``.
    slot_cycles: int = 0
    slot_base: int = 400
    slot_per_iteration: int = 400
    #: Bits between coarse resynchronizations; 0 disables resync
    #: (the drifting configuration of Figure 9a).
    sync_period: int = 8
    #: Low-bit mask compared against ``sync_target`` during resync.  The
    #: period (mask+1) must exceed the slot so a resync boundary is never
    #: missed.
    sync_mask: int = (1 << 13) - 1
    sync_target: int = 0
    #: Mask for the one-time *initial* synchronization.  None uses
    #: ``sync_mask``.  MPS-style launches (two processes, large launch
    #: skew) need a period comfortably above the skew so both kernels
    #: meet at the same first boundary — the paper's "one-time
    #: synchronization overhead" of the MPS variant.
    initial_sync_mask: Optional[int] = None
    #: Concurrent sender warps (the paper uses 5 for the TPC channel and
    #: 8 for the GPC channel to overcome the GPC bandwidth speedup).
    sender_warps: int = 2
    #: Sender memory-access kind: writes for the TPC channel, reads for
    #: the GPC channel (Section 3.4).
    sender_kind: str = WRITE
    #: Unique cache lines per sender warp op: 32 = fully uncoalesced.
    sender_lines: int = 32
    #: Whether receiver probes are uncoalesced (Figure 13 studies this).
    receiver_lines: int = 32
    #: Decision threshold on the per-slot latency sum; None = calibrate.
    threshold: Optional[float] = None
    #: SIMT lanes participating in each access.
    lanes: int = 32
    #: Per-channel phase stagger (cycles).  Parallel channels offset their
    #: sync target by ``channel_index * stagger`` so their probe bursts do
    #: not collide on the shared GPC reply channel every slot — without
    #: it, the aligned probes of 7 co-GPC channels raise each other's
    #: latency and the cross-channel noise eats the margin.
    stagger: int = 347

    @property
    def slot(self) -> int:
        """Effective slot length in cycles."""
        if self.slot_cycles:
            return self.slot_cycles
        return self.slot_base + self.iterations * self.slot_per_iteration

    def with_(self, **changes) -> "ChannelParams":
        return replace(self, **changes)


#: Distinct per-warp op phases; bounds each warp's footprint to
#: ``REGION_OPS * lanes`` cache lines so that even the 40-channel attack
#: (120+ warps with disjoint regions) fits comfortably inside the L2 —
#: the attack must never spill to DRAM (Section 4.2).
REGION_OPS = 4


def sender_addresses(
    params: ChannelParams, base: int, line_bytes: int, op_index: int
) -> List[int]:
    """Lane addresses for one sender op (controls coalescing degree)."""
    offset = base + (op_index % REGION_OPS) * params.lanes * line_bytes
    if params.sender_lines >= params.lanes:
        return lane_addresses_uncoalesced(offset, line_bytes, params.lanes)
    if params.sender_lines <= 1:
        return lane_addresses_coalesced(offset, line_bytes, params.lanes)
    return lane_addresses_partial(
        offset, line_bytes, params.sender_lines, params.lanes
    )


def receiver_addresses(
    params: ChannelParams, base: int, line_bytes: int, op_index: int
) -> List[int]:
    """Lane addresses for one receiver probe."""
    offset = base + (op_index % REGION_OPS) * params.lanes * line_bytes
    if params.receiver_lines >= params.lanes:
        return lane_addresses_uncoalesced(offset, line_bytes, params.lanes)
    if params.receiver_lines <= 1:
        return lane_addresses_coalesced(offset, line_bytes, params.lanes)
    return lane_addresses_partial(
        offset, line_bytes, params.receiver_lines, params.lanes
    )


def region_bytes(params: ChannelParams, line_bytes: int) -> int:
    """Bytes a sender/receiver warp touches (for L2 preloading)."""
    return REGION_OPS * params.lanes * line_bytes


def sender_program(context: WarpContext) -> WarpProgram:
    """Algorithm 2, sender side.

    Kernel args: ``params`` (:class:`ChannelParams`), ``channel_bits``
    (block id -> bit/level list), ``line_bytes``, ``base_for`` (block id ->
    base address).  Blocks without an entry in ``channel_bits`` idle out.
    ``levels``: list of per-symbol request densities for the multi-level
    channel; for the binary channel symbol s != 0 sends with full density.
    ``target_device``: optional device id for multi-GPU link channels —
    every memory op goes over the inter-GPU fabric to that device's L2
    instead of the local NoC (absent/None keeps on-chip behavior).
    """
    args = context.args
    params: ChannelParams = args["params"]
    target_device = args.get("target_device")
    bits = args["channel_bits"].get(context.block_id)
    if bits is None:
        return
    line_bytes = args["line_bytes"]
    base = args["base_for"][context.block_id] + context.warp_id * region_bytes(
        params, line_bytes
    )
    levels: Optional[Sequence[int]] = args.get("levels")
    slot = params.slot
    channel = args.get("channel_of", {}).get(context.block_id, 0)
    target = (params.sync_target + channel * params.stagger) & params.sync_mask
    first_mask = (
        params.sync_mask
        if params.initial_sync_mask is None
        else params.initial_sync_mask
    )
    yield WaitClockMask(first_mask, target & first_mask)
    slot_start = yield ReadClock()
    for index, symbol in enumerate(bits):
        if params.sync_period and index and index % params.sync_period == 0:
            yield WaitClockMask(params.sync_mask, target)
            slot_start = yield ReadClock()
        if symbol:
            lines = (
                levels[symbol]
                if levels is not None
                else params.sender_lines
            )
            local = params.with_(sender_lines=lines)
            for op in range(params.iterations):
                addresses = sender_addresses(local, base, line_bytes, op)
                yield MemOp(
                    params.sender_kind, addresses,
                    wait_for_completion=False, device=target_device,
                )
        now = yield ReadClock()
        slot_end = slot_start + slot
        if now < slot_end:
            yield WaitUntilClock(slot_end)
            slot_start = slot_end
        else:
            slot_start = now  # overran the slot: drift (Figure 9a)


def receiver_program(context: WarpContext) -> WarpProgram:
    """Algorithm 2, receiver side.

    Records the summed probe latency of every slot into
    ``args['measurements'][(block_id, slot_index)]``.  As with the
    sender, an optional ``target_device`` arg retargets every probe at a
    remote device's L2 over the inter-GPU fabric.
    """
    args = context.args
    params: ChannelParams = args["params"]
    target_device = args.get("target_device")
    num_symbols = args["num_symbols"].get(context.block_id)
    if num_symbols is None:
        return
    line_bytes = args["line_bytes"]
    base = args["base_for"][context.block_id]
    measurements: Dict = args["measurements"]
    slot = params.slot
    channel = args.get("channel_of", {}).get(context.block_id, 0)
    target = (params.sync_target + channel * params.stagger) & params.sync_mask
    first_mask = (
        params.sync_mask
        if params.initial_sync_mask is None
        else params.initial_sync_mask
    )
    yield WaitClockMask(first_mask, target & first_mask)
    slot_start = yield ReadClock()
    for index in range(num_symbols):
        if params.sync_period and index and index % params.sync_period == 0:
            yield WaitClockMask(params.sync_mask, target)
            slot_start = yield ReadClock()
        total_latency = 0
        for op in range(params.iterations):
            addresses = receiver_addresses(params, base, line_bytes, op)
            latency = yield MemOp(READ, addresses, device=target_device)
            total_latency += latency
        measurements[(context.block_id, index)] = total_latency
        now = yield ReadClock()
        slot_end = slot_start + slot
        if now < slot_end:
            yield WaitUntilClock(slot_end)
            slot_start = slot_end
        else:
            slot_start = now


def decode_binary(
    measurements: Sequence[float], threshold: float
) -> List[int]:
    """Threshold decoder: latency above threshold means contention ('1')."""
    return [1 if value > threshold else 0 for value in measurements]


def decode_multilevel(
    measurements: Sequence[float], thresholds: Sequence[float]
) -> List[int]:
    """Multi-level decoder: cut points between the sorted level means."""
    symbols = []
    for value in measurements:
        symbol = 0
        for threshold in thresholds:
            if value > threshold:
                symbol += 1
        symbols.append(symbol)
    return symbols

"""Shared machinery for the interconnect covert channels.

Both channel types follow the same lifecycle:

1. **Placement** — a sender grid with one block per TPC is launched first,
   then a receiver grid of the same size.  Per the reverse-engineered
   scheduling policy (Section 4.3) this puts one sender block and one
   receiver block on the two SMs of every TPC.  Which block lands on which
   TPC is known from :func:`repro.gpu.scheduler.dispatch_order`.
2. **Calibration** — a known training pattern is transmitted once and the
   decision threshold(s) placed between the observed latency clusters
   (the paper determines the threshold empirically from the L2 latency).
3. **Transmission** — Algorithm 2 runs; the receiver's per-slot latency
   sums are threshold-decoded into symbols.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..config import GpuConfig
from ..gpu.device import GpuDevice
from ..gpu.kernel import Kernel
from ..gpu.scheduler import dispatch_order
from .metrics import TransmissionResult
from .protocol import (
    ChannelParams,
    decode_binary,
    receiver_program,
    region_bytes,
    sender_program,
)


def block_to_tpc_map(config: GpuConfig) -> List[int]:
    """TPC that block ``i`` of a one-block-per-TPC grid lands on."""
    order = dispatch_order(config)
    return [config.sm_to_tpc(sm) for sm in order[: config.num_tpcs]]


class CovertChannelBase:
    """Common sender/receiver orchestration (subclasses choose roles)."""

    def __init__(
        self,
        config: GpuConfig,
        params: Optional[ChannelParams] = None,
        seed_salt: int = 0,
        mps_launch_skew: int = 0,
    ) -> None:
        self.config = config
        self.params = params or self.default_params()
        self.seed_salt = seed_salt
        #: Cycles between the trojan's and the spy's kernel launches.
        #: 0 models cudaStream multiprogramming (same process, back to
        #: back); a large value models MPS, where two processes launch
        #: independently and only the clock-register synchronization
        #: aligns them (Section 2.2: the only difference the paper found
        #: was this one-time launch synchronization overhead).
        self.mps_launch_skew = mps_launch_skew
        self._block_tpcs = block_to_tpc_map(config)
        #: Per-channel decision thresholds (filled by calibrate()); each
        #: parallel channel has its own baseline because cross-channel
        #: coupling differs between GPCs.
        self._channel_thresholds: Optional[List[float]] = None
        #: Telemetry manifest of the most recent ``_run`` (None unless
        #: ``config.telemetry_enabled``).
        self.last_telemetry: Optional[Dict] = None

    # -- subclass interface --------------------------------------------- #
    def default_params(self) -> ChannelParams:
        raise NotImplementedError

    def _role_blocks(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        """(sender block -> channel index, receiver block -> channel index).

        A *channel* is an independent bit pipe (a TPC pair for the TPC
        channel, a whole GPC for the GPC channel).  Several sender blocks
        may feed one channel (GPC channel).
        """
        raise NotImplementedError

    @property
    def num_channels(self) -> int:
        _, receivers = self._role_blocks()
        return len(set(receivers.values()))

    # -- payload plumbing ------------------------------------------------ #
    def _split_payload(self, symbols: Sequence[int]) -> List[List[int]]:
        """Round-robin the payload over the parallel channels."""
        n = self.num_channels
        return [list(symbols[channel::n]) for channel in range(n)]

    def _assemble(self, per_channel: List[List[int]], total: int) -> List[int]:
        out: List[int] = []
        index = 0
        while len(out) < total:
            channel = index % len(per_channel)
            slot = index // len(per_channel)
            channel_symbols = per_channel[channel]
            out.append(
                channel_symbols[slot] if slot < len(channel_symbols) else 0
            )
            index += 1
        return out

    # -- transmission ----------------------------------------------------- #
    def _run(
        self,
        per_channel: List[List[int]],
        levels: Optional[Sequence[int]] = None,
    ) -> Tuple[Dict[int, List[float]], int]:
        """Run one transmission; returns per-channel measurements + cycles."""
        config = self.config
        params = self.params
        senders, receivers = self._role_blocks()
        line = config.l2_line_bytes
        region = region_bytes(params, line)
        # Address layout: every (block, role, warp) gets a disjoint region.
        block_stride = region * (params.sender_warps + 2)
        sender_base = {
            block: block * block_stride for block in senders
        }
        receiver_base = {
            block: block * block_stride + params.sender_warps * region
            for block in receivers
        }
        channel_bits = {
            block: per_channel[channel] for block, channel in senders.items()
        }
        num_symbols = {
            block: len(per_channel[channel])
            for block, channel in receivers.items()
        }
        measurements: Dict[Tuple[int, int], float] = {}
        device = GpuDevice(config, seed_salt=self.seed_salt)
        sender_channel_of = dict(senders)
        receiver_channel_of = dict(receivers)
        sender_kernel = Kernel(
            sender_program,
            num_blocks=config.num_tpcs,
            warps_per_block=params.sender_warps,
            args={
                "params": params,
                "channel_bits": channel_bits,
                "base_for": sender_base,
                "line_bytes": line,
                "levels": list(levels) if levels is not None else None,
                "channel_of": sender_channel_of,
            },
            name="trojan",
        )
        receiver_kernel = Kernel(
            receiver_program,
            num_blocks=config.num_tpcs,
            warps_per_block=1,
            args={
                "params": params,
                "num_symbols": num_symbols,
                "base_for": receiver_base,
                "line_bytes": line,
                "measurements": measurements,
                "channel_of": receiver_channel_of,
            },
            name="spy",
        )
        for block, base in sender_base.items():
            device.preload_region(base, params.sender_warps * region)
        for block, base in receiver_base.items():
            device.preload_region(base, region)
        extra = self._extra_kernels(device)
        if self.mps_launch_skew:
            # MPS: the trojan's process launches first; the spy's kernel
            # arrives after the (OS-scale) launch gap.  The clock-mask
            # synchronization absorbs any skew below the mask period.
            device.launch(sender_kernel)
            device.engine.step(self.mps_launch_skew)
            kernels = [receiver_kernel, *extra]
            for kernel in kernels:
                device.launch(kernel)
            device.engine.run_until(
                lambda: sender_kernel.done and receiver_kernel.done,
                max_cycles=20_000_000,
                check_every=16,
            )
            times = {"spy": device.engine.cycle}
        else:
            kernels = [sender_kernel, receiver_kernel, *extra]
            times = device.run_kernels(kernels)
        self._check_placement(sender_kernel, receiver_kernel)
        if device.telemetry is not None:
            self.last_telemetry = device.telemetry_manifest()
        per_channel_measurements: Dict[int, List[float]] = {}
        for block, channel in receivers.items():
            series = [
                measurements.get((block, slot), 0.0)
                for slot in range(num_symbols[block])
            ]
            per_channel_measurements[channel] = series
        return per_channel_measurements, times["spy"]

    def _extra_kernels(self, device: GpuDevice) -> List[Kernel]:
        """Hook: additional kernels co-scheduled with the channel.

        Subclasses use this to model third-kernel interference
        (Section 5's noise study).  Launched after the sender and
        receiver grids so their placement is unaffected.
        """
        return []

    def _check_placement(
        self, sender_kernel: Kernel, receiver_kernel: Kernel
    ) -> None:
        """Assert the scheduling trick really co-located every pair."""
        config = self.config
        for block in range(config.num_tpcs):
            sender_sm = sender_kernel.blocks[block].sm_id
            receiver_sm = receiver_kernel.blocks[block].sm_id
            if sender_sm is None or receiver_sm is None:
                raise RuntimeError("a channel block was never dispatched")
            if config.sm_to_tpc(sender_sm) != config.sm_to_tpc(receiver_sm):
                raise RuntimeError(
                    f"block {block}: sender on SM {sender_sm}, receiver on "
                    f"SM {receiver_sm} — not co-located"
                )

    # -- calibration ------------------------------------------------------ #
    def calibrate(self, training_symbols: int = 16) -> float:
        """Transmit a known 0101... pattern; place each channel's threshold
        midway between its own latency clusters.

        Returns the global (average) threshold, which is also stored in
        ``self.params``; per-channel thresholds are kept internally and
        preferred during decoding.
        """
        # Phase-shift the training pattern per channel so calibration
        # observes '0' slots coinciding with other channels' '1' traffic —
        # the cross-channel coupling a random payload will experience.
        per_channel = [
            [(slot + channel) % 2 for slot in range(training_symbols)]
            for channel in range(self.num_channels)
        ]
        measurements, _ = self._run(per_channel)
        thresholds: List[float] = []
        for channel in range(self.num_channels):
            pattern = per_channel[channel]
            series = measurements[channel]
            zeros = [v for slot, v in enumerate(series) if not pattern[slot]]
            ones = [v for slot, v in enumerate(series) if pattern[slot]]
            if not zeros or not ones:
                raise RuntimeError("calibration needs both symbol classes")
            thresholds.append(
                (sum(zeros) / len(zeros) + sum(ones) / len(ones)) / 2.0
            )
        self._channel_thresholds = thresholds
        threshold = sum(thresholds) / len(thresholds)
        self.params = self.params.with_(threshold=threshold)
        return threshold

    def transmit(self, symbols: Sequence[int]) -> TransmissionResult:
        """Send ``symbols`` (0/1 list) through the covert channel."""
        symbols = list(symbols)
        if not symbols:
            raise ValueError("empty payload")
        if self.params.threshold is None:
            self.calibrate()
        per_channel = self._split_payload(symbols)
        measurements, cycles = self._run(per_channel)
        thresholds = self._channel_thresholds or (
            [self.params.threshold] * self.num_channels
        )
        decoded = [
            decode_binary(measurements[channel], thresholds[channel])
            for channel in range(self.num_channels)
        ]
        received = self._assemble(decoded, len(symbols))
        return TransmissionResult(
            config=self.config,
            sent_symbols=symbols,
            received_symbols=received,
            cycles=cycles,
            measurements=measurements,
            thresholds=list(thresholds),
            telemetry=self.last_telemetry,
        )

    def transmit_bytes(self, data: bytes) -> TransmissionResult:
        """Convenience: send raw bytes MSB-first."""
        bits = [
            (byte >> (7 - bit)) & 1 for byte in data for bit in range(8)
        ]
        return self.transmit(bits)

"""Third-kernel noise injection (Section 5, "Impact of Noise").

The paper's noise analysis: the covert channel lives off L2-resident
accesses, so a third co-located kernel matters through two mechanisms —

* **bandwidth noise**: its requests share L2 slices and reply channels
  with the channel's probes, adding latency jitter;
* **capacity noise**: if it thrashes the L2, the channel's lines are
  evicted, probes detour to DRAM, and "the noise from main memory
  accesses will become dominant and make the covert channel infeasible".

The attacker's mitigation is occupancy: claiming all SMs (the multi-TPC
attack) leaves no room for a third kernel.  This module runs a covert
transmission while an interferer kernel of configurable footprint and
intensity executes on otherwise-unused TPCs, quantifying both effects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config import GpuConfig
from ..gpu.kernel import Kernel
from ..gpu.workloads import streaming_program
from .metrics import TransmissionResult
from .protocol import ChannelParams
from .tpc_channel import TpcCovertChannel


@dataclass
class NoiseStudyPoint:
    """Channel quality under one interferer configuration."""

    label: str
    #: Interferer footprint as a fraction of total L2 capacity.
    footprint_fraction: float
    error_rate: float
    bandwidth_mbps: float


class InterferedTpcChannel(TpcCovertChannel):
    """A TPC channel transmitting alongside a third 'victim' kernel.

    The interferer runs one streaming warp on the first SM of every TPC
    that carries no covert channel, with a configurable L2 footprint —
    small footprints only add bandwidth noise, L2-scale footprints evict
    the channel's lines (capacity noise).
    """

    def __init__(
        self,
        config: GpuConfig,
        params: Optional[ChannelParams] = None,
        channels: Optional[Sequence[int]] = None,
        interferer_footprint_bytes: int = 0,
        interferer_ops: int = 64,
        seed_salt: int = 0,
    ) -> None:
        super().__init__(config, params, channels, seed_salt)
        self.interferer_footprint_bytes = interferer_footprint_bytes
        self.interferer_ops = interferer_ops
        #: Base address far above any channel region.
        self._interferer_base = 1 << 28

    def _interferer_kernel(self) -> Optional[Kernel]:
        if self.interferer_footprint_bytes <= 0:
            return None
        config = self.config
        free_tpcs = sorted(
            set(range(config.num_tpcs)) - set(self.channel_tpcs)
        )
        if not free_tpcs:
            return None
        active_sms = {config.tpc_sms(tpc)[0] for tpc in free_tpcs}
        footprint_lines = max(
            32, self.interferer_footprint_bytes // config.l2_line_bytes
        )
        # Posted writes sweep the footprint at full injection rate and
        # allocate into the L2, so an L2-scale footprint actually evicts
        # the channel's lines set by set.  Enough ops to sweep the whole
        # footprint at least twice, or the configured minimum.
        lanes = config.simt_width
        ops = max(self.interferer_ops, 2 * footprint_lines // lanes)
        return Kernel(
            streaming_program,
            num_blocks=config.num_sms,
            warps_per_block=1,
            args={
                "kind": "write",
                "ops": ops,
                "base": self._interferer_base,
                "line_bytes": config.l2_line_bytes,
                "footprint_lines": footprint_lines,
                "active_sms": active_sms,
                "duty": 1.0,
            },
            name="interferer",
        )

    def _extra_kernels(self, device):
        interferer = self._interferer_kernel()
        return [interferer] if interferer is not None else []


def run_noise_study(
    config: GpuConfig,
    footprint_fractions: Sequence[float] = (0.0, 0.05, 0.5, 2.0),
    payload_bits: int = 48,
    channels: Optional[Sequence[int]] = None,
    seed: int = 37,
) -> List[NoiseStudyPoint]:
    """Transmit the same payload against interferers of growing footprint.

    Fractions are of total L2 capacity: 0 disables the interferer, small
    fractions add bandwidth noise only, fractions >= 1 thrash the L2 and
    should destroy the channel (the paper's infeasibility point).
    """
    rng = random.Random(seed)
    bits = [rng.randint(0, 1) for _ in range(payload_bits)]
    total_l2 = config.num_l2_slices * config.l2_slice_bytes
    points: List[NoiseStudyPoint] = []
    for fraction in footprint_fractions:
        channel = InterferedTpcChannel(
            config,
            channels=channels,
            interferer_footprint_bytes=int(total_l2 * fraction),
        )
        channel.calibrate()
        result = channel.transmit(bits)
        label = "no interferer" if fraction == 0 else f"{fraction:.2f}x L2"
        points.append(
            NoiseStudyPoint(
                label=label,
                footprint_fraction=fraction,
                error_rate=result.error_rate,
                bandwidth_mbps=result.bandwidth_mbps,
            )
        )
    return points

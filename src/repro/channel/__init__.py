"""The interconnect covert channels (the paper's core contribution)."""

from .metrics import (
    TransmissionResult,
    bit_error_rate,
    channel_capacity_per_symbol,
)
from .protocol import (
    ChannelParams,
    decode_binary,
    decode_multilevel,
    receiver_program,
    sender_program,
)
from .base import CovertChannelBase, block_to_tpc_map
from .link_channel import LinkCovertChannel
from .tpc_channel import TpcCovertChannel
from .gpc_channel import GpcCovertChannel
from .multilevel import DEFAULT_LEVELS, MultiLevelTpcChannel
from .coalescing import CoalescingStudy, cell_label, run_coalescing_study
from .side_channel import SideChannelTrace, measure_l1_miss_leakage
from .noise import (
    InterferedTpcChannel,
    NoiseStudyPoint,
    run_noise_study,
)
from .handshake import (
    DEFAULT_PREAMBLE,
    HandshakeTpcChannel,
    fit_preamble,
    decode_waveform,
    waveform_timeline,
)
from .coding import (
    CodedResult,
    hamming74_decode,
    hamming74_encode,
    repetition_decode,
    repetition_encode,
    transmit_coded,
)
from .aes_attack import (
    AesAttackResult,
    INV_SBOX,
    distinct_lines,
    run_aes_key_recovery,
)

__all__ = [
    "TransmissionResult",
    "bit_error_rate",
    "channel_capacity_per_symbol",
    "ChannelParams",
    "decode_binary",
    "decode_multilevel",
    "receiver_program",
    "sender_program",
    "CovertChannelBase",
    "block_to_tpc_map",
    "LinkCovertChannel",
    "TpcCovertChannel",
    "GpcCovertChannel",
    "DEFAULT_LEVELS",
    "MultiLevelTpcChannel",
    "CoalescingStudy",
    "cell_label",
    "run_coalescing_study",
    "SideChannelTrace",
    "measure_l1_miss_leakage",
    "InterferedTpcChannel",
    "NoiseStudyPoint",
    "run_noise_study",
    "DEFAULT_PREAMBLE",
    "HandshakeTpcChannel",
    "fit_preamble",
    "decode_waveform",
    "waveform_timeline",
    "CodedResult",
    "hamming74_decode",
    "hamming74_encode",
    "repetition_decode",
    "repetition_encode",
    "transmit_coded",
    "AesAttackResult",
    "INV_SBOX",
    "distinct_lines",
    "run_aes_key_recovery",
]

"""Forward error correction over the covert channel.

The paper operates the channel at iteration counts where the raw error
rate is negligible.  An alternative operating point — useful when the
channel is noisy (low iterations, multi-GPC, a third kernel, CRR
arbitration) — is to run *fast and dirty* and clean up with coding.
This module provides two classic schemes and a coded-channel wrapper:

* **Repetition-n**: each bit sent n times, majority-decoded.  Corrects
  up to floor(n/2) errors per bit at 1/n rate.
* **Hamming(7,4)**: 4 data bits per 7-bit codeword, corrects any single
  bit error per codeword at 4/7 rate.

The wrapper transmits the encoded stream through any binary channel and
reports both raw and decoded error rates, letting the ablation benchmark
compare `iterations=4, uncoded` against `iterations=1, coded` operating
points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .metrics import TransmissionResult, bit_error_rate


# --------------------------------------------------------------------- #
# Repetition code.
# --------------------------------------------------------------------- #
def repetition_encode(bits: Sequence[int], n: int = 3) -> List[int]:
    """Repeat every bit ``n`` times."""
    if n < 1 or n % 2 == 0:
        raise ValueError("repetition factor must be odd and positive")
    return [bit for bit in bits for _ in range(n)]


def repetition_decode(coded: Sequence[int], n: int = 3) -> List[int]:
    """Majority-vote every ``n``-symbol group."""
    if n < 1 or n % 2 == 0:
        raise ValueError("repetition factor must be odd and positive")
    decoded = []
    for start in range(0, len(coded) - n + 1, n):
        group = coded[start : start + n]
        decoded.append(1 if sum(group) * 2 > n else 0)
    return decoded


# --------------------------------------------------------------------- #
# Hamming(7,4).
# --------------------------------------------------------------------- #
#: Generator rows: codeword = [d1 d2 d3 d4 p1 p2 p3].
_H_PARITY = (
    (0, 1, 2),  # p1 covers d1 d2 d3
    (0, 1, 3),  # p2 covers d1 d2 d4
    (0, 2, 3),  # p3 covers d1 d3 d4
)


def hamming74_encode(bits: Sequence[int]) -> List[int]:
    """Encode bits in blocks of 4 (zero-padded) into 7-bit codewords."""
    coded: List[int] = []
    padded = list(bits) + [0] * ((-len(bits)) % 4)
    for start in range(0, len(padded), 4):
        data = padded[start : start + 4]
        parity = [
            data[a] ^ data[b] ^ data[c] for a, b, c in _H_PARITY
        ]
        coded.extend(data + parity)
    return coded


def hamming74_decode(coded: Sequence[int]) -> List[int]:
    """Decode 7-bit codewords, correcting single-bit errors."""
    decoded: List[int] = []
    for start in range(0, len(coded) - 6, 7):
        word = list(coded[start : start + 7])
        data, parity = word[:4], word[4:]
        syndrome = tuple(
            parity[i] ^ data[a] ^ data[b] ^ data[c]
            for i, (a, b, c) in enumerate(_H_PARITY)
        )
        if any(syndrome):
            # Locate the flipped bit: each position has a unique
            # syndrome signature.
            signatures = {
                (1, 1, 1): 0,  # d1
                (1, 1, 0): 1,  # d2
                (1, 0, 1): 2,  # d3
                (0, 1, 1): 3,  # d4
                (1, 0, 0): 4,  # p1
                (0, 1, 0): 5,  # p2
                (0, 0, 1): 6,  # p3
            }
            position = signatures.get(syndrome)
            if position is not None:
                word[position] ^= 1
        decoded.extend(word[:4])
    return decoded


# --------------------------------------------------------------------- #
# Coded transmission wrapper.
# --------------------------------------------------------------------- #
@dataclass
class CodedResult:
    """Raw-vs-decoded quality of one coded transmission."""

    raw: TransmissionResult
    decoded_bits: List[int]
    payload_bits: List[int]
    code_rate: float

    @property
    def raw_error_rate(self) -> float:
        return self.raw.error_rate

    @property
    def decoded_error_rate(self) -> float:
        return bit_error_rate(self.payload_bits, self.decoded_bits)

    @property
    def effective_bandwidth_mbps(self) -> float:
        """Payload bits per second after the coding overhead."""
        return self.raw.bandwidth_mbps * self.code_rate


def transmit_coded(
    channel,
    payload: Sequence[int],
    scheme: str = "hamming74",
    repetition: int = 3,
) -> CodedResult:
    """Send ``payload`` through ``channel`` under a coding scheme.

    ``channel`` is any object with the binary ``transmit(bits)`` API
    (TPC, GPC, handshake, ...).
    """
    payload = list(payload)
    if scheme == "repetition":
        coded = repetition_encode(payload, repetition)
        rate = 1.0 / repetition
    elif scheme == "hamming74":
        coded = hamming74_encode(payload)
        rate = 4.0 / 7.0
    elif scheme == "none":
        coded = list(payload)
        rate = 1.0
    else:
        raise ValueError(f"unknown coding scheme {scheme!r}")
    raw = channel.transmit(coded)
    received = raw.received_symbols
    if scheme == "repetition":
        decoded = repetition_decode(received, repetition)
    elif scheme == "hamming74":
        decoded = hamming74_decode(received)
    else:
        decoded = list(received)
    return CodedResult(
        raw=raw,
        decoded_bits=decoded[: len(payload)],
        payload_bits=payload,
        code_rate=rate,
    )

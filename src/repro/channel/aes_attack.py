"""AES key recovery through the NoC contention side channel.

Section 5 notes that the interconnect leak "can potentially lead to other
dangerous side-channel attacks", and the related work (Jiang et al.)
exploits the correlation between a GPU AES kernel's *unique cache line
count* and its timing.  This module stages that attack end to end on the
simulator:

* The **victim** runs AES last-round table lookups: each lane computes
  ``index = INV_SBOX[ct ^ key]`` and reads the T-table line holding it.
  The memory coalescer merges same-line lanes, so the number of NoC
  transactions per warp IS the number of distinct lines — which depends
  on the secret key byte nonlinearly through the inverse S-box.
  (A first-round ``pt ^ key`` attack would not work: distinct counts are
  XOR-invariant; the S-box is what makes the count key-dependent.)
* The **spy**, co-located on the victim's TPC, measures its own probe
  latency per ciphertext batch — the Figure 8 leak turns the victim's
  transaction count into the spy's latency.
* The **attacker** correlates, for every key-byte guess, the predicted
  distinct-line counts of the known ciphertexts against the measured
  latencies; the true key byte maximizes the correlation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import GpuConfig
from ..gpu.coalescer import coalesce
from ..gpu.device import GpuDevice
from ..gpu.kernel import Kernel
from ..gpu.warp import MemOp, WarpContext, WarpProgram, READ

#: The AES inverse S-box (FIPS-197 standard constant).
INV_SBOX = [
    0x52, 0x09, 0x6A, 0xD5, 0x30, 0x36, 0xA5, 0x38,
    0xBF, 0x40, 0xA3, 0x9E, 0x81, 0xF3, 0xD7, 0xFB,
    0x7C, 0xE3, 0x39, 0x82, 0x9B, 0x2F, 0xFF, 0x87,
    0x34, 0x8E, 0x43, 0x44, 0xC4, 0xDE, 0xE9, 0xCB,
    0x54, 0x7B, 0x94, 0x32, 0xA6, 0xC2, 0x23, 0x3D,
    0xEE, 0x4C, 0x95, 0x0B, 0x42, 0xFA, 0xC3, 0x4E,
    0x08, 0x2E, 0xA1, 0x66, 0x28, 0xD9, 0x24, 0xB2,
    0x76, 0x5B, 0xA2, 0x49, 0x6D, 0x8B, 0xD1, 0x25,
    0x72, 0xF8, 0xF6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xD4, 0xA4, 0x5C, 0xCC, 0x5D, 0x65, 0xB6, 0x92,
    0x6C, 0x70, 0x48, 0x50, 0xFD, 0xED, 0xB9, 0xDA,
    0x5E, 0x15, 0x46, 0x57, 0xA7, 0x8D, 0x9D, 0x84,
    0x90, 0xD8, 0xAB, 0x00, 0x8C, 0xBC, 0xD3, 0x0A,
    0xF7, 0xE4, 0x58, 0x05, 0xB8, 0xB3, 0x45, 0x06,
    0xD0, 0x2C, 0x1E, 0x8F, 0xCA, 0x3F, 0x0F, 0x02,
    0xC1, 0xAF, 0xBD, 0x03, 0x01, 0x13, 0x8A, 0x6B,
    0x3A, 0x91, 0x11, 0x41, 0x4F, 0x67, 0xDC, 0xEA,
    0x97, 0xF2, 0xCF, 0xCE, 0xF0, 0xB4, 0xE6, 0x73,
    0x96, 0xAC, 0x74, 0x22, 0xE7, 0xAD, 0x35, 0x85,
    0xE2, 0xF9, 0x37, 0xE8, 0x1C, 0x75, 0xDF, 0x6E,
    0x47, 0xF1, 0x1A, 0x71, 0x1D, 0x29, 0xC5, 0x89,
    0x6F, 0xB7, 0x62, 0x0E, 0xAA, 0x18, 0xBE, 0x1B,
    0xFC, 0x56, 0x3E, 0x4B, 0xC6, 0xD2, 0x79, 0x20,
    0x9A, 0xDB, 0xC0, 0xFE, 0x78, 0xCD, 0x5A, 0xF4,
    0x1F, 0xDD, 0xA8, 0x33, 0x88, 0x07, 0xC7, 0x31,
    0xB1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xEC, 0x5F,
    0x60, 0x51, 0x7F, 0xA9, 0x19, 0xB5, 0x4A, 0x0D,
    0x2D, 0xE5, 0x7A, 0x9F, 0x93, 0xC9, 0x9C, 0xEF,
    0xA0, 0xE0, 0x3B, 0x4D, 0xAE, 0x2A, 0xF5, 0xB0,
    0xC8, 0xEB, 0xBB, 0x3C, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2B, 0x04, 0x7E, 0xBA, 0x77, 0xD6, 0x26,
    0xE1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0C, 0x7D,
]

#: T-table geometry: 256 4-byte entries over 128-byte lines = 8 lines of
#: 32 entries each.
ENTRIES_PER_LINE = 32


def table_line(index: int) -> int:
    """Which T-table cache line entry ``index`` lives in."""
    return index // ENTRIES_PER_LINE


def distinct_lines(cts: Sequence[int], key_byte: int) -> int:
    """Distinct T-table lines a warp touches for these ciphertext bytes."""
    return len(
        {table_line(INV_SBOX[ct ^ key_byte]) for ct in cts}
    )


def _victim_program(context: WarpContext) -> WarpProgram:
    """AES last-round lookups: one warp op per encryption repetition.

    Every warp of the victim block processes the same ciphertext batch
    (a bulk encryption kernel working through a buffer), so the victim's
    aggregate NoC traffic per unit time scales with the batch's distinct
    line count.
    """
    args = context.args
    if context.sm_id != args["victim_sm"]:
        return
    key_byte = args["key_byte"]
    table_base = args["table_base"]
    line = args["line_bytes"]
    for batch in args["batches"]:
        for _rep in range(args["reps"]):
            addresses = [
                table_base + table_line(INV_SBOX[ct ^ key_byte]) * line
                for ct in batch
            ]
            # The coalescer collapses same-line lanes: the NoC sees
            # exactly `distinct_lines(batch, key)` transactions.
            yield MemOp(READ, addresses)


def _spy_program(context: WarpContext) -> WarpProgram:
    args = context.args
    if context.sm_id != args["spy_sm"]:
        return
    base = args["base"]
    line = args["line_bytes"]
    total = 0
    for op in range(args["probe_ops"]):
        addresses = [
            base + ((op * 32 + lane) % 128) * line for lane in range(32)
        ]
        latency = yield MemOp(READ, addresses)
        total += latency
    args["readings"].append(total)


def _pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0 or vy == 0:
        return 0.0
    return cov / (vx * vy) ** 0.5


@dataclass
class AesAttackResult:
    """Outcome of the key-byte recovery."""

    true_key_byte: int
    #: guess -> correlation between predicted line counts and latencies.
    correlations: Dict[int, float]
    measured_latencies: List[float]
    batches: List[List[int]]

    @property
    def recovered_key_byte(self) -> int:
        return max(self.correlations, key=self.correlations.get)

    @property
    def success(self) -> bool:
        return self.recovered_key_byte == self.true_key_byte

    def rank_of_true_key(self) -> int:
        """1 = the true key byte has the highest correlation."""
        ordered = sorted(
            self.correlations, key=self.correlations.get, reverse=True
        )
        return ordered.index(self.true_key_byte) + 1


def _diverse_batches(
    count: int, lanes: int, rng: random.Random
) -> List[List[int]]:
    """Ciphertext batches whose distinct-line counts vary widely.

    Restricting each batch's ciphertexts to a random subset of values
    spreads the distinct-line count over a wide range, maximizing the
    correlation signal (the attacker chooses/observes ciphertexts).
    """
    batches = []
    for _ in range(count):
        pool_size = rng.choice([2, 4, 8, 16, 48, 128, 256])
        pool = rng.sample(range(256), pool_size)
        batches.append([rng.choice(pool) for _ in range(lanes)])
    return batches


def run_aes_key_recovery(
    config: GpuConfig,
    key_byte: int = 0x3C,
    num_batches: int = 32,
    reps: int = 48,
    probe_ops: int = 24,
    measure_reps: int = 4,
    victim_warps: int = 4,
    guesses: Optional[Sequence[int]] = None,
    tpc: int = 0,
    seed: int = 7,
) -> AesAttackResult:
    """Recover one AES key byte through the TPC-channel side channel.

    For each ciphertext batch, the victim (encrypting the batch ``reps``
    times, like a bulk AES kernel) and the spy run co-located; the spy's
    total probe latency — averaged over ``measure_reps`` independent
    measurements to beat the machine's timing noise — is recorded.
    Guesses are ranked by the Pearson correlation between predicted
    distinct-line counts and the measured latencies.
    """
    if not 0 <= key_byte <= 0xFF:
        raise ValueError("key_byte must be one byte")
    rng = random.Random(seed)
    victim_sm, spy_sm = config.tpc_sms(tpc)[:2]
    line = config.l2_line_bytes
    batches = _diverse_batches(num_batches, config.simt_width, rng)
    table_base = 0
    spy_base = 1 << 22
    latencies: List[float] = []
    for index, batch in enumerate(batches):
        readings_sum = 0.0
        for rep in range(measure_reps):
            device = GpuDevice(
                config, seed_salt=seed + index * 31 + rep
            )
            readings: List[float] = []
            victim = Kernel(
                _victim_program,
                num_blocks=config.num_sms,
                warps_per_block=victim_warps,
                args={
                    "victim_sm": victim_sm,
                    "key_byte": key_byte,
                    "batches": [batch],
                    "reps": reps,
                    "table_base": table_base,
                    "line_bytes": line,
                },
                name="aes-victim",
            )
            spy = Kernel(
                _spy_program,
                num_blocks=config.num_sms,
                args={
                    "spy_sm": spy_sm,
                    "probe_ops": probe_ops,
                    "base": spy_base,
                    "line_bytes": line,
                    "readings": readings,
                },
                name="spy",
            )
            device.preload_region(table_base, 8 * line)
            device.preload_region(spy_base, 128 * line)
            device.run_kernels([victim, spy])
            readings_sum += readings[0]
        latencies.append(readings_sum / measure_reps)
    guesses = list(guesses) if guesses is not None else list(range(256))
    correlations = {
        guess: _pearson(
            [float(distinct_lines(batch, guess)) for batch in batches],
            latencies,
        )
        for guess in guesses
    }
    return AesAttackResult(
        true_key_byte=key_byte,
        correlations=correlations,
        measured_latencies=latencies,
        batches=batches,
    )

"""Covert-channel quality metrics: error rate, bandwidth, capacity."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..config import GpuConfig


def bit_error_rate(sent: Sequence[int], received: Sequence[int]) -> float:
    """Fraction of differing symbols (length mismatch counts as errors)."""
    if not sent:
        return 0.0
    errors = sum(
        1 for s, r in zip(sent, received) if s != r
    ) + abs(len(sent) - len(received))
    return errors / max(len(sent), len(received))


def channel_capacity_per_symbol(error_rate: float, levels: int = 2) -> float:
    """Shannon capacity (bits/symbol) of a symmetric channel.

    Used to report effective bandwidth of the multi-level channel where a
    raw symbol carries log2(levels) bits but errors eat into it.
    """
    if levels < 2:
        raise ValueError("levels must be >= 2")
    p = min(max(error_rate, 0.0), 1.0 - 1.0 / levels)
    raw = math.log2(levels)
    # Treat probabilities below double-precision resolution as zero so
    # p/(levels-1) cannot underflow inside the logarithm.
    if p < 1e-300:
        return raw
    # Symmetric channel: the error mass spreads over the other levels.
    return (
        raw
        + p * math.log2(p / (levels - 1))
        + (1.0 - p) * math.log2(1.0 - p)
    )


@dataclass
class TransmissionResult:
    """Outcome of one covert-channel transmission."""

    config: GpuConfig
    sent_symbols: List[int]
    received_symbols: List[int]
    #: Total wall time of the transmission in GPU core cycles.
    cycles: int
    #: Bits encoded per symbol (1 for binary, 2 for the 4-level channel).
    bits_per_symbol: float = 1.0
    #: Raw per-slot receiver measurements, per channel (diagnostics).
    measurements: Dict[int, List[float]] = field(default_factory=dict)
    #: Decision threshold(s) used by the decoder.
    thresholds: List[float] = field(default_factory=list)
    #: Telemetry manifest of the transmission's device (link utilization,
    #: latency percentiles, event counts); None unless the run's config
    #: had ``telemetry_enabled``.
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def num_symbols(self) -> int:
        return len(self.sent_symbols)

    @property
    def error_rate(self) -> float:
        return bit_error_rate(self.sent_symbols, self.received_symbols)

    @property
    def seconds(self) -> float:
        return self.config.cycles_to_seconds(self.cycles)

    @property
    def bandwidth_bps(self) -> float:
        """Raw symbol bandwidth in bits/second at the core clock."""
        if self.cycles <= 0:
            return 0.0
        return self.num_symbols * self.bits_per_symbol / self.seconds

    @property
    def bandwidth_mbps(self) -> float:
        return self.bandwidth_bps / 1e6

    @property
    def effective_bandwidth_bps(self) -> float:
        """Error-discounted bandwidth (capacity x symbol rate)."""
        levels = max(2, int(round(2 ** self.bits_per_symbol)))
        per_symbol = channel_capacity_per_symbol(self.error_rate, levels)
        if self.cycles <= 0:
            return 0.0
        return self.num_symbols * per_symbol / self.seconds

    def summary(self) -> str:
        return (
            f"{self.num_symbols} symbols in {self.cycles} cycles "
            f"({self.seconds * 1e6:.1f} us): "
            f"{self.bandwidth_mbps:.3f} Mbps, "
            f"error rate {self.error_rate:.4f}"
        )


def slot_contention(
    flits_by_epoch: Dict[int, int],
    epoch_cycles: int,
    slot_cycles: int,
    num_slots: int,
    start_cycle: int = 0,
) -> List[int]:
    """Fold a telemetry link series into per-bit-slot flit counts.

    Aligns a :class:`~repro.telemetry.timeline.LinkSeries` epoch map with
    the sender's bit schedule: slot ``i`` covers cycles ``[start_cycle +
    i*slot_cycles, start_cycle + (i+1)*slot_cycles)``.  Epochs straddling
    a slot boundary are apportioned pro rata, so the result is exact when
    ``slot_cycles`` is a multiple of ``epoch_cycles`` and a close
    approximation otherwise.  The returned list is the contention
    timeline one reads against the transmitted bit pattern: '1' slots
    (sender streaming) show high flit counts, '0' slots show only the
    receiver's probe traffic.
    """
    if slot_cycles <= 0 or epoch_cycles <= 0 or num_slots <= 0:
        raise ValueError("slot_cycles, epoch_cycles, num_slots must be > 0")
    slots = [0.0] * num_slots
    for epoch, flits in flits_by_epoch.items():
        lo = epoch * epoch_cycles - start_cycle
        hi = lo + epoch_cycles
        if hi <= 0 or lo >= num_slots * slot_cycles:
            continue
        first = max(0, lo // slot_cycles)
        last = min(num_slots - 1, (hi - 1) // slot_cycles)
        for slot in range(first, last + 1):
            s_lo = slot * slot_cycles
            s_hi = s_lo + slot_cycles
            overlap = min(hi, s_hi) - max(lo, s_lo)
            if overlap > 0:
                slots[slot] += flits * overlap / epoch_cycles
    return [int(round(v)) for v in slots]

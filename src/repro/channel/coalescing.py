"""Memory-coalescing impact study (Section 5, Figures 12 and 13).

A coalesced warp access produces a single memory transaction, so the
probability that it overlaps the other side's transactions in the mux is
small; an uncoalesced warp produces 32 transactions that blanket the slot
(Figure 12).  This module reruns the TPC channel over the 2x2 matrix of
{sender, receiver} x {coalesced, uncoalesced} and reports the error rate
of each cell (Figure 13): a coalesced *sender* breaks the channel
(error > 50%); an uncoalesced sender with a coalesced receiver still
works poorly (~10%); fully uncoalesced is near error-free.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import GpuConfig
from .protocol import ChannelParams
from .tpc_channel import TpcCovertChannel

#: The four cells of Figure 13 as (sender_coalesced, receiver_coalesced).
MATRIX_CELLS: Tuple[Tuple[bool, bool], ...] = (
    (True, True),
    (True, False),
    (False, True),
    (False, False),
)


def cell_label(sender_coalesced: bool, receiver_coalesced: bool) -> str:
    sender = "coalesced" if sender_coalesced else "uncoalesced"
    receiver = "coalesced" if receiver_coalesced else "uncoalesced"
    return f"sender={sender}, receiver={receiver}"


@dataclass
class CoalescingStudy:
    """Figure 13's data: error rate per coalescing combination."""

    error_rates: Dict[Tuple[bool, bool], float] = field(default_factory=dict)

    def rows(self) -> List[Tuple[str, float]]:
        return [
            (cell_label(*cell), self.error_rates[cell])
            for cell in MATRIX_CELLS
            if cell in self.error_rates
        ]


def run_coalescing_study(
    config: GpuConfig,
    params: Optional[ChannelParams] = None,
    payload_bits: int = 64,
    seed: int = 13,
) -> CoalescingStudy:
    """Measure the TPC-channel error rate for every coalescing cell.

    Each cell calibrates its own threshold (a coalesced receiver has a
    different latency scale), so the reported error rate reflects the
    channel physics — whether contention is observable at all — rather
    than a mismatched decoder.
    """
    rng = random.Random(seed)
    bits = [rng.randint(0, 1) for _ in range(payload_bits)]
    # More probe iterations than the binary channel's default: a coalesced
    # receiver's per-probe signal is tiny (one transaction), so averaging
    # over more probes is what keeps its cell at the paper's ~10% error
    # rather than coin-flipping.
    base_params = params or ChannelParams(iterations=8)
    study = CoalescingStudy()
    for sender_coalesced, receiver_coalesced in MATRIX_CELLS:
        cell_params = base_params.with_(
            sender_lines=1 if sender_coalesced else 32,
            receiver_lines=1 if receiver_coalesced else 32,
            threshold=None,
        )
        channel = TpcCovertChannel(config, params=cell_params)
        channel.calibrate()
        result = channel.transmit(bits)
        study.error_rates[(sender_coalesced, receiver_coalesced)] = (
            result.error_rate
        )
    return study

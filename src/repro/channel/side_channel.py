"""NoC-contention side channel (Section 5, "Side Channel Attack").

The covert-channel leakage generalizes to a side channel: because the TPC
channel's contention is linear in the co-located SM's L2 traffic
(Figure 8), a spy sharing a TPC with a *victim* can estimate the victim's
L1 miss count from its own probe latency — without any cooperation from
the victim.  The paper notes this as an example of how the leak enables
attacks such as AES key recovery that correlate secret-dependent cache
behaviour with timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import GpuConfig
from ..gpu.coalescer import lane_addresses_uncoalesced
from ..gpu.device import GpuDevice
from ..gpu.kernel import Kernel
from ..gpu.warp import MemOp, WaitCycles, WarpContext, WarpProgram, READ, WRITE


def _victim_program(context: WarpContext) -> WarpProgram:
    """A victim whose L2 traffic depends on its (secret) L1 hit rate.

    ``l1_miss_ops`` of its ``total_ops`` warp reads miss L1 and travel the
    interconnect; the remainder are L1 hits (modelled as idle issue slots,
    since an L1 hit never touches the NoC).
    """
    args = context.args
    if context.sm_id != args["victim_sm"]:
        return
    total_ops = args["total_ops"]
    miss_ops = args["l1_miss_ops"]
    base = args["base"]
    line_bytes = args["line_bytes"]
    for op in range(total_ops):
        if op < miss_ops:
            addresses = lane_addresses_uncoalesced(
                base + (op % 8) * 32 * line_bytes, line_bytes
            )
            yield MemOp(WRITE, addresses, wait_for_completion=False)
        else:
            yield WaitCycles(32)  # an L1 hit costs issue time, not NoC


def _spy_program(context: WarpContext) -> WarpProgram:
    """The spy probes the shared TPC channel and records total latency."""
    args = context.args
    if context.sm_id != args["spy_sm"]:
        return
    base = args["base"]
    line_bytes = args["line_bytes"]
    total = 0
    for op in range(args["probe_ops"]):
        addresses = lane_addresses_uncoalesced(
            base + (op % 8) * 32 * line_bytes, line_bytes
        )
        latency = yield MemOp(READ, addresses)
        total += latency
    args["readings"].append(total)


@dataclass
class SideChannelTrace:
    """Spy latency vs victim L1-miss count."""

    miss_counts: List[int]
    spy_latencies: List[float]

    def correlation(self) -> float:
        """Pearson correlation between miss count and spy latency."""
        xs = [float(x) for x in self.miss_counts]
        ys = self.spy_latencies
        n = len(xs)
        mx = sum(xs) / n
        my = sum(ys) / n
        cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
        vx = sum((x - mx) ** 2 for x in xs)
        vy = sum((y - my) ** 2 for y in ys)
        if vx == 0 or vy == 0:
            return 0.0
        return cov / (vx * vy) ** 0.5

    def fit(self) -> Tuple[float, float]:
        """Least-squares (slope, intercept) of latency vs miss count."""
        xs = [float(x) for x in self.miss_counts]
        ys = self.spy_latencies
        n = len(xs)
        mx = sum(xs) / n
        my = sum(ys) / n
        num = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
        den = sum((x - mx) ** 2 for x in xs)
        slope = num / den if den else 0.0
        return slope, my - slope * mx

    def estimate_misses(self, spy_latency: float) -> float:
        """Invert the fit: estimate a victim's miss count from a reading."""
        slope, intercept = self.fit()
        if slope == 0:
            return 0.0
        return (spy_latency - intercept) / slope


def measure_l1_miss_leakage(
    config: GpuConfig,
    miss_counts: Sequence[int] = (0, 4, 8, 12, 16, 20, 24, 28, 32),
    total_ops: int = 32,
    probe_ops: int = 8,
    tpc: int = 0,
    seed_salt: int = 0,
) -> SideChannelTrace:
    """Profile spy latency against a victim's L1 miss count.

    For each miss count, the victim and spy run co-located on one TPC and
    the spy's total probe latency is recorded.  The linear correlation is
    the Section 5 claim: NoC contention measures "the amount of L1 miss".
    """
    victim_sm, spy_sm = config.tpc_sms(tpc)[:2]
    line = config.l2_line_bytes
    latencies: List[float] = []
    for index, misses in enumerate(miss_counts):
        if not 0 <= misses <= total_ops:
            raise ValueError(f"miss count {misses} not in [0, {total_ops}]")
        device = GpuDevice(config, seed_salt=seed_salt + index)
        readings: List[float] = []
        victim = Kernel(
            _victim_program,
            num_blocks=config.num_sms,
            args={
                "victim_sm": victim_sm,
                "total_ops": total_ops,
                "l1_miss_ops": misses,
                "base": 0,
                "line_bytes": line,
            },
            name="victim",
        )
        spy = Kernel(
            _spy_program,
            num_blocks=config.num_sms,
            args={
                "spy_sm": spy_sm,
                "probe_ops": probe_ops,
                "base": 1 << 22,
                "line_bytes": line,
                "readings": readings,
            },
            name="spy",
        )
        device.preload_region(0, 8 * 32 * line)
        device.preload_region(1 << 22, 8 * 32 * line)
        device.run_kernels([victim, spy])
        if not readings:
            raise RuntimeError("spy program produced no reading")
        latencies.append(readings[0])
    return SideChannelTrace(
        miss_counts=list(miss_counts), spy_latencies=latencies
    )

"""GPC covert channel (Section 4.5).

When the sender and receiver cannot be co-located inside one TPC, a covert
channel can still be established if they share a GPC: one TPC of the GPC
acts as the receiver while the remaining TPCs act as senders.  Because of
the GPC bandwidth speedup the sender needs more warps than the TPC channel
(the paper uses 8), and the sender transmits *read* requests — it is the
read-reply traffic that oversubscribes the GPC reply channel (Section
3.4).  All SMs of a GPC share low-skew clocks, so the same clock-register
synchronization works.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..config import GpuConfig
from ..noc.packet import READ
from .base import CovertChannelBase
from .protocol import ChannelParams


class GpcCovertChannel(CovertChannelBase):
    """One or more parallel GPC channels.

    Each active GPC carries one bit pipe: its first TPC hosts the
    receiver (on the second SM of the TPC, placed by the receiver grid),
    every other TPC hosts sender blocks.
    """

    def __init__(
        self,
        config: GpuConfig,
        params: Optional[ChannelParams] = None,
        gpcs: Optional[Sequence[int]] = None,
        seed_salt: int = 0,
    ) -> None:
        super().__init__(config, params, seed_salt)
        if gpcs is None:
            gpcs = [0]
        self.channel_gpcs = list(gpcs)
        missing = set(self.channel_gpcs) - set(range(config.num_gpcs))
        if missing:
            raise ValueError(f"unknown GPC ids: {sorted(missing)}")

    @classmethod
    def all_channels(
        cls,
        config: GpuConfig,
        params: Optional[ChannelParams] = None,
        seed_salt: int = 0,
    ) -> "GpcCovertChannel":
        """The multi-GPC attack: one channel per GPC (Fig 10d).

        All six GPCs' senders stream reads simultaneously, so every
        receiver's probes slow down well beyond the single-GPC case (the
        paper's ~3% error / lower-than-proportional bandwidth at 6 GPCs
        has the same root cause).  The default slot is stretched so a '1'
        slot's probes still fit.
        """
        if params is None:
            params = ChannelParams(
                sender_kind=READ,
                sender_warps=2,
                slot_base=700,
                slot_per_iteration=1000,
            )
        return cls(
            config,
            params,
            gpcs=list(range(config.num_gpcs)),
            seed_salt=seed_salt,
        )

    def default_params(self) -> ChannelParams:
        # Reads and a longer slot (the paper raises T for the GPC channel
        # because more SMs must communicate).  The sender's per-slot read
        # volume is sized to drain within the slot at the MSHR-capped read
        # rate so it never overruns its slot and drifts.
        return ChannelParams(
            sender_kind=READ,
            sender_warps=2,
            slot_base=700,
            slot_per_iteration=500,
        )

    def _role_blocks(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        members = self.config.gpc_members()
        gpc_to_channel = {
            gpc: channel for channel, gpc in enumerate(self.channel_gpcs)
        }
        receiver_tpcs = {
            members[gpc][0]: gpc_to_channel[gpc] for gpc in self.channel_gpcs
        }
        sender_tpcs: Dict[int, int] = {}
        for gpc in self.channel_gpcs:
            for tpc in members[gpc][1:]:
                sender_tpcs[tpc] = gpc_to_channel[gpc]
        senders: Dict[int, int] = {}
        receivers: Dict[int, int] = {}
        for block, tpc in enumerate(self._block_tpcs):
            if tpc in sender_tpcs:
                senders[block] = sender_tpcs[tpc]
            if tpc in receiver_tpcs:
                receivers[block] = receiver_tpcs[tpc]
        return senders, receivers

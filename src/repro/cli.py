"""Command-line interface: ``python -m repro <experiment> [options]``.

Gives downstream users a zero-code way to run the paper's experiments::

    python -m repro info                    # show the GPU configuration
    python -m repro transmit --message hi   # covert-channel quickstart
    python -m repro fig2                    # TPC discovery sweep
    python -m repro fig5                    # read/write contention
    python -m repro fig6                    # clock survey
    python -m repro fig10 --panel tpc       # bandwidth vs iterations
    python -m repro linkchan                # inter-GPU NVLink channel
    python -m repro fig15                   # arbitration countermeasures
    python -m repro table2                  # measured channel summary
    python -m repro bench                   # engine strategy benchmark
    python -m repro metrics                 # metrics-plane exposition
    python -m repro trace --figure fig5     # Perfetto trace of a run
    python -m repro fuzz --quick            # randomized integrity fuzzing
    python -m repro chaos --quick           # fault-injection sweep drill
    python -m repro golden check            # golden-metric regression gate

``--scale {small,medium,volta}`` selects the simulated GPU (default
small: fastest; volta is the full Table-1 V100 and can take minutes).
``--validate`` runs any experiment with the conservation-invariant
checker attached (``repro.validate``); the run aborts with a structured
violation naming the cycle and component on the first inconsistency.

Sweep commands (``fig10``, ``table2``) fan their independent points over
worker processes (``--workers``) and reuse cached results from
``.repro_cache`` (disable with ``--no-cache``).  Any of ``--timeout``,
``--retries``, ``--keep-going``, ``--resume`` or ``--journal`` runs the
sweep under per-job supervision (``repro.runner.supervisor``): hung
workers are killed and retried, crashes become structured failure
records instead of aborting the sweep, and completed points checkpoint
to a journal that ``--resume`` replays after a crash or Ctrl-C.
``--progress`` renders a live single-line status (done/total, cache
hits, retries, per-worker elapsed) on stderr.

``python -m repro metrics`` runs a small instrumented sweep and prints
its Prometheus exposition; ``python -m repro bench`` appends every run
to ``BENCH_history.jsonl`` and ``--check-history`` turns a >20%
throughput drop versus the trailing median into exit code 3.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from .analysis import format_series, format_table
from .config import (
    GpuConfig,
    PASCAL_P100,
    TURING_TU104,
    VOLTA_V100,
    large_config,
    medium_config,
    small_config,
)

SCALES = {
    "small": small_config,
    "medium": medium_config,
    "volta": lambda: VOLTA_V100,
    "large": large_config,
    "pascal": lambda: PASCAL_P100,
    "turing": lambda: TURING_TU104,
}

#: Per-command default for ``--scale`` when the user does not pass one.
#: ``bench`` defaults to the full Table-1 Volta — the engine comparison
#: is only meaningful at the scale the vector strategy targets.
DEFAULT_SCALE = "small"
COMMAND_SCALES = {"bench": "volta"}


def _config(args) -> GpuConfig:
    config = SCALES[args.scale]()
    if getattr(args, "validate", False):
        config = config.replace(validate_enabled=True)
    return config


def cmd_info(args) -> int:
    config = _config(args)
    rows = [
        ("core clock", f"{config.core_clock_mhz} MHz"),
        ("GPCs", config.num_gpcs),
        ("TPCs", config.num_tpcs),
        ("SMs", config.num_sms),
        ("L2 slices", f"{config.num_l2_slices} x "
                      f"{config.l2_slice_bytes // 1024} KB"),
        ("memory controllers", config.num_memory_controllers),
        ("TPC channel width", f"{config.tpc_channel_width} flit/cycle"),
        ("GPC channel width", f"{config.gpc_channel_width} flits/cycle"),
        ("GPC reply width", f"{config.gpc_reply_width} flits/cycle"),
        ("arbitration", config.arbitration.upper()),
    ]
    print(format_table(["parameter", "value"], rows))
    members = config.gpc_members()
    for gpc, tpcs in members.items():
        print(f"GPC {gpc}: TPCs {tpcs}")
    return 0


def cmd_transmit(args) -> int:
    from .channel import TpcCovertChannel

    config = _config(args)
    channel = (
        TpcCovertChannel.all_channels(config)
        if args.all_tpcs
        else TpcCovertChannel(config)
    )
    channel.calibrate()
    message = args.message.encode()
    result = channel.transmit_bytes(message)
    value = 0
    for bit in result.received_symbols:
        value = (value << 1) | bit
    recovered = value.to_bytes(len(message), "big")
    print(f"sent      : {message!r}")
    print(f"recovered : {recovered!r}")
    print(result.summary())
    return 0 if result.error_rate < 0.1 else 1


def cmd_fig2(args) -> int:
    from .reveng import sweep_tpc_pairing

    config = _config(args)
    sweep = sweep_tpc_pairing(config, ops=args.ops)
    normalized = sweep.normalized()
    xs = sorted(normalized)
    print(format_series(
        xs, [normalized[x] for x in xs], "SM id", "normalized SM0 time"
    ))
    print(f"TPC sibling(s) of SM0: {sweep.partner_of_sm0()}")
    return 0


def cmd_fig5(args) -> int:
    from .reveng import rw_contention_profile

    config = _config(args)
    profile = rw_contention_profile(config, ops=args.ops)
    print("TPC channel (2 SMs):")
    print(format_table(
        ["access", "normalized time"], list(profile.tpc.items())
    ))
    print("\nGPC channel:")
    rows = [
        (n + 1, profile.gpc["write"][n], profile.gpc["read"][n])
        for n in range(len(profile.gpc["write"]))
    ]
    print(format_table(["active TPCs", "write", "read"], rows))
    return 0


def cmd_fig6(args) -> int:
    from .reveng import survey_clocks

    config = _config(args)
    survey = survey_clocks(config)
    print(format_series(
        sorted(survey.values),
        [survey.values[sm] for sm in sorted(survey.values)],
        "SM id", "clock()",
    ))
    print(f"max intra-TPC skew: {max(survey.tpc_skews())}")
    print(f"max intra-GPC skew: {max(survey.gpc_skews())}")
    return 0


def _sweep_cache(args):
    from .runner import ResultCache

    return None if args.no_cache else ResultCache()


def _progress_renderer(args, name, total):
    """A live ``SweepProgress`` renderer when ``--progress`` was given."""
    if not getattr(args, "progress", False):
        return None
    from .metrics import SweepProgress

    return SweepProgress(name, total=total)


def _run_sweep(args, jobs, name):
    """Run a CLI sweep, engaging supervision when any flag asks for it.

    Returns ``(rows, failures)``: rows in job order with failed slots
    removed, failures as structured ``JobFailure`` records.  With
    ``--resume`` (or ``--journal``) completed points checkpoint to an
    append-only JSONL journal — default ``.repro_sweeps/<name>.jsonl``
    — and a rerun replays them instead of re-simulating.  ``--progress``
    attaches a live single-line renderer (per-worker state needs the
    supervised event stream; the legacy path shows done/total only).
    """
    from .config import SweepSupervision
    from .runner import JobFailure, run_jobs
    from .runner.journal import SweepJournal, default_journal_path

    renderer = _progress_renderer(args, name, len(jobs))
    supervised = (
        args.timeout is not None or args.retries is not None
        or args.keep_going or args.resume or args.journal is not None
    )
    if not supervised:
        try:
            rows = run_jobs(
                jobs, workers=args.workers, cache=_sweep_cache(args),
                progress=renderer.progress if renderer else None,
            )
        finally:
            if renderer is not None:
                renderer.close()
        return rows, []

    policy = SweepSupervision.from_env()
    if args.timeout is not None:
        policy = policy.replace(timeout_s=args.timeout)
    if args.retries is not None:
        policy = policy.replace(max_attempts=args.retries + 1)
    journal_path = args.journal or default_journal_path(name)
    from .runner import run_supervised

    try:
        with SweepJournal(journal_path) as journal:
            outcome = run_supervised(
                jobs, workers=args.workers, cache=_sweep_cache(args),
                policy=policy, journal=journal, resume=args.resume,
                progress=renderer.progress if renderer else None,
                on_event=renderer.on_event if renderer else None,
            )
    finally:
        if renderer is not None:
            renderer.close()
    counters = outcome.counters
    replays = counters.get("journal_replays", 0)
    if replays:
        print(f"resumed from {journal_path}: {replays} point(s) replayed")
    if counters.get("retries") or counters.get("quarantined"):
        print(
            f"supervision: {counters.get('attempts', 0)} attempt(s), "
            f"{counters.get('retries', 0)} retried, "
            f"{counters.get('quarantined', 0)} cache entr(ies) quarantined"
        )
    for failure in outcome.failures:
        print(f"FAILED {failure}", file=sys.stderr)
    if outcome.failures and not args.keep_going:
        from .runner import SweepError

        raise SweepError(outcome.failures, outcome.results)
    rows = [r for r in outcome.results if not isinstance(r, JobFailure)]
    return rows, outcome.failures


def cmd_fig10(args) -> int:
    from .runner import SimJob

    config = _config(args)
    jobs = [
        SimJob(
            fn="repro.runner.workloads.fig10_point",
            config=config,
            params={
                "kind": args.panel,
                "iteration_count": count,
                "bits_per_channel": args.bits,
                "seed": 1021 + index,
            },
        )
        for index, count in enumerate(args.iterations)
    ]
    rows, failures = _run_sweep(args, jobs, f"fig10-{args.scale}")
    print(format_table(
        ["iterations", "bit rate (kbps)", "error rate"],
        [(r["iterations"], r["bandwidth_kbps"], r["error_rate"])
         for r in rows],
    ))
    _print_sweep_latency(rows)
    return 1 if failures else 0


def _print_sweep_latency(rows) -> None:
    """One-line sweep-wide L2 round-trip summary from job telemetry."""
    from .runner import merge_telemetry

    merged = merge_telemetry(rows)
    if merged is None:
        return
    latency = merged["read_latency"]
    if not latency["count"]:
        return
    print(
        f"L2 round-trip over {merged['devices']} devices: "
        f"mean {latency['mean']:.1f} cycles "
        f"(min {latency['min']:.0f}, max {latency['max']:.0f}, "
        f"n={latency['count']})"
    )


def cmd_linkchan(args) -> int:
    """NVLink-channel sweep over a multi-GPU fabric (fig10-style)."""
    import json as _json

    from .runner import SimJob

    config = _config(args)
    jobs = [
        SimJob(
            fn="repro.runner.workloads.link_channel_point",
            config=config,
            params={
                "iteration_count": count,
                "bits": args.bits,
                "seed": 4021 + index,
                "num_devices": args.devices,
                "topology": args.topology,
                "link_width": args.link_width,
                "link_latency": args.link_latency,
            },
        )
        for index, count in enumerate(args.iterations)
    ]
    rows, failures = _run_sweep(args, jobs, f"linkchan-{args.scale}")
    print(format_table(
        ["iterations", "bit rate (kbps)", "error rate"],
        [(r["iterations"], r["bandwidth_kbps"], r["error_rate"])
         for r in rows],
    ))
    _print_sweep_latency(rows)
    if args.json:
        manifest = {
            "scale": args.scale,
            "topology": args.topology,
            "devices": args.devices,
            "link_width": args.link_width,
            "link_latency": args.link_latency,
            "bits": args.bits,
            "points": rows,
            "failures": len(failures),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            _json.dump(manifest, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 1 if failures else 0


def cmd_serve(args) -> int:
    """Batch capacity-query service: sweep, build surface, answer queries.

    ``--once`` runs one request batch and exits: the fig10-style grid is
    submitted through the async sweep service (content-hash dedup +
    supervised shards + shared artifact store), a capacity surface is
    built from the completed points, and every query in ``--queries``
    (default: the grid itself) is answered from the surface — no
    re-simulation for already-swept points.  Answers plus service/cache
    counters land in the ``--answers`` JSON manifest, which is what the
    CI ``service-smoke`` job asserts on.
    """
    import json as _json

    from .config import ServiceConfig, SweepSupervision
    from .runner import (
        CapacitySurface,
        JobFailure,
        ResultCache,
        SimJob,
        serve_requests,
    )

    if not args.once:
        print(
            "serve: daemon mode is not implemented; pass --once for the "
            "batch query path",
            file=sys.stderr,
        )
        return 2
    config = _config(args)
    shape = ServiceConfig.from_env()
    if args.shards is not None:
        shape = shape.replace(shards=args.shards)
    if args.execution is not None:
        shape = shape.replace(execution=args.execution)
    policy = SweepSupervision.from_env()
    if args.timeout is not None:
        policy = policy.replace(timeout_s=args.timeout)
    if args.retries is not None:
        policy = policy.replace(max_attempts=args.retries + 1)
    cache = None
    if not args.no_cache:
        cache = ResultCache(
            max_entries=args.cache_entries, max_bytes=args.cache_bytes
        )

    # Same params (seed included) as ``fig10``, so the service shares
    # artifact-store entries with plain sweep invocations.
    jobs = [
        SimJob(
            fn="repro.runner.workloads.fig10_point",
            config=config,
            params={
                "kind": args.panel,
                "iteration_count": count,
                "bits_per_channel": args.bits,
                "seed": 1021 + index,
            },
        )
        for index, count in enumerate(args.iterations)
    ]
    results, service_manifest = serve_requests(
        [jobs], cache=cache, policy=policy, service=shape
    )
    rows = [r for r in results[0] if not isinstance(r, JobFailure)]
    failures = [r for r in results[0] if isinstance(r, JobFailure)]
    for failure in failures:
        print(f"FAILED {failure}", file=sys.stderr)
    if not rows:
        print("serve: every sweep point failed; no surface", file=sys.stderr)
        return 1

    surface = CapacitySurface.from_rows(rows)
    if args.queries is not None:
        with open(args.queries, "r", encoding="utf-8") as handle:
            raw_queries = _json.load(handle)
        if not isinstance(raw_queries, list):
            raise SystemExit("--queries must be a JSON list")
    else:
        raw_queries = [float(count) for count in args.iterations]
    answers = []
    for raw in raw_queries:
        params = (
            {"iterations": raw} if isinstance(raw, (int, float)) else raw
        )
        prediction = surface.predict(params, max_age_s=args.max_age)
        answers.append({"query": params, **prediction.to_dict()})

    print(format_table(
        ["iterations", "bandwidth (kbps)", "error", "source", "confidence"],
        [
            (
                answer["query"]["iterations"],
                f"{answer['bandwidth_kbps']:.2f}",
                f"{answer['error_rate']:.3f}",
                answer["source"],
                f"{answer['confidence']:.2f}",
            )
            for answer in answers
        ],
    ))
    manifest = {
        "scale": args.scale,
        "panel": args.panel,
        "bits": args.bits,
        "grid": [float(count) for count in args.iterations],
        "surface": {
            "points": len(surface),
            "axes": list(surface.axes),
            "version": surface.version,
        },
        "service": service_manifest,
        "answers": answers,
        "failures": [failure.to_dict() for failure in failures],
    }
    if args.answers:
        with open(args.answers, "w", encoding="utf-8") as handle:
            _json.dump(manifest, handle, indent=2, sort_keys=True)
        print(f"wrote {args.answers}")
    return 1 if failures else 0


def cmd_fig15(args) -> int:
    from .defense import arbitration_leakage_sweep

    config = _config(args).replace(timing_noise=0)
    sweep = arbitration_leakage_sweep(
        config, fractions=(0.0, 0.25, 0.5, 0.75, 1.0), ops=args.ops
    )
    rows = [
        [f"{fraction:.2f}"]
        + [f"{sweep.series[p][i]:.2f}" for p in ("rr", "crr", "srr")]
        for i, fraction in enumerate(sweep.fractions)
    ]
    print(format_table(["SM1 fraction", "RR", "CRR", "SRR"], rows))
    for policy in ("rr", "crr", "srr"):
        print(f"{policy.upper():4s} slope: {sweep.slope(policy):+.3f}")
    return 0


def cmd_table2(args) -> int:
    from .runner import SimJob

    config = _config(args)
    kinds = ("tpc", "multi-tpc", "gpc", "multi-gpc")
    jobs = [
        SimJob(
            fn="repro.runner.workloads.table2_point",
            config=config,
            params={
                "kind": kind,
                "bits_per_channel": args.bits,
                "seed": 2021 + index,
            },
        )
        for index, kind in enumerate(kinds)
    ]
    rows, failures = _run_sweep(args, jobs, f"table2-{args.scale}")
    print(format_table(
        ["channel", "error rate", "bandwidth (Mbps)"],
        [(r["channel"], r["error_rate"], r["bandwidth_mbps"])
         for r in rows],
    ))
    _print_sweep_latency(rows)
    return 1 if failures else 0


def _bench_history(args, report) -> int:
    """Check the report against BENCH_history.jsonl, then append it.

    The check runs *before* the append so the baseline never includes
    the run under test.  Prints the advisory result; returns 3 when
    ``--check-history`` was given and a throughput fell more than the
    threshold below its trailing median, 0 otherwise.
    """
    from .metrics.history import (
        HISTORY_FILE,
        append_history,
        bench_record,
        check_history,
    )

    path = args.history_file or HISTORY_FILE
    check = check_history(report, path=path, scale=args.scale)
    append_history(bench_record(report, scale=args.scale), path=path)
    for line in check.lines():
        print(line)
    if args.check_history and not check.ok:
        return 3
    return 0


def cmd_bench(args) -> int:
    import json as _json

    from .runner import bench_engine

    if args.from_report:
        # Re-check an existing report against the history without
        # re-benchmarking (the CI warn-only step): no append, since the
        # report's own run already appended itself.
        from .metrics.history import HISTORY_FILE, check_history

        with open(args.from_report, "r", encoding="utf-8") as handle:
            report = _json.load(handle)
        check = check_history(
            report, path=args.history_file or HISTORY_FILE,
            scale=args.scale,
        )
        for line in check.lines():
            print(line)
        return 3 if args.check_history and not check.ok else 0

    on_phase = None
    if args.progress:
        def on_phase(label: str) -> None:
            print(f"bench: {label}", file=sys.stderr, flush=True)

    config = _config(args)
    report = bench_engine(
        config, num_bits=args.bits,
        output=None if args.no_output else args.output,
        on_phase=on_phase,
    )
    for name, entry in report["workloads"].items():
        line = (
            f"{name:12s} naive {entry['naive_wall_s']:7.3f}s  "
            f"active {entry['active_wall_s']:7.3f}s  "
            f"speedup {entry['speedup']:.2f}x"
        )
        if "vector_wall_s" in entry:
            line += (
                f"  vector {entry['vector_wall_s']:7.3f}s "
                f"({entry['vector_speedup_vs_active']:.2f}x vs active)"
            )
        print(line)
    print(f"min speedup: {report['min_speedup']:.2f}x")
    vector = report.get("vector", {})
    if vector.get("available"):
        volta = vector["full_volta"]
        print(
            f"vector @ full Volta: "
            f"active {volta['active_cycles_per_s']:,.0f} cycles/s, "
            f"vector {volta['vector_cycles_per_s']:,.0f} cycles/s "
            f"({volta['speedup_vs_active']:.2f}x)"
        )
    elif vector:
        print(f"vector: unavailable ({vector['error']})")
    telemetry = report["telemetry"]
    print(
        f"telemetry    off {telemetry['disabled_wall_s']:7.3f}s  "
        f"on     {telemetry['enabled_wall_s']:7.3f}s  "
        f"overhead {telemetry['overhead_frac'] * 100:+.1f}%"
    )
    metrics = report.get("metrics")
    if metrics:
        print(
            f"metrics      off {metrics['disabled_wall_s']:7.3f}s  "
            f"on     {metrics['enabled_wall_s']:7.3f}s  "
            f"overhead {metrics['overhead_frac'] * 100:+.1f}% "
            f"({metrics['strategy']}, budget "
            f"{metrics['budget_frac'] * 100:.0f}%)"
        )
    supervision = report.get("supervision")
    if supervision:
        print(
            f"supervision  legacy {supervision['legacy_wall_s']:5.3f}s  "
            f"supervised {supervision['supervised_wall_s']:7.3f}s  "
            f"overhead {supervision['overhead_frac'] * 100:+.1f}%"
        )
    if "output" in report:
        print(f"wrote {report['output']}")
    if not args.no_history:
        return _bench_history(args, report)
    return 0


def cmd_metrics(args) -> int:
    """Run an instrumented sweep and emit its metrics.

    Runs a small supervised fig10-style sweep with ``metrics_enabled``
    (engine self-profiling) so one command demonstrates the whole
    metrics plane: supervision counters, engine profiles merged across
    fresh jobs, Prometheus text on stdout and — with ``--json`` — the
    mergeable JSON manifest.  ``--merge`` skips the sweep and instead
    folds previously written manifest files (worker shards) into one
    exposition.
    """
    import json as _json

    from .metrics import MetricsRegistry, render_manifest_prometheus

    registry = MetricsRegistry()
    ok = True
    if args.merge:
        for path in args.merge:
            with open(path, "r", encoding="utf-8") as handle:
                registry.merge_manifest(_json.load(handle))
    else:
        from .config import SweepSupervision
        from .runner import SimJob, merge_metrics, run_supervised

        config = _config(args).replace(metrics_enabled=True)
        jobs = [
            SimJob(
                fn="repro.runner.workloads.fig10_point",
                config=config,
                params={
                    "kind": "tpc",
                    "iteration_count": count,
                    "bits_per_channel": args.bits,
                    "seed": 3021 + index,
                },
            )
            for index, count in enumerate(args.iterations)
        ]
        renderer = _progress_renderer(args, "metrics", len(jobs))
        try:
            outcome = run_supervised(
                jobs, workers=args.workers,
                policy=SweepSupervision.from_env(),
                progress=renderer.progress if renderer else None,
                on_event=renderer.on_event if renderer else None,
                metrics=registry,
            )
        finally:
            if renderer is not None:
                renderer.close()
        ok = outcome.ok
        engine = merge_metrics(outcome.results, fresh=outcome.fresh)
        if engine is not None:
            registry.merge_manifest(engine)
        for failure in outcome.failures:
            print(f"FAILED {failure}", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            _json.dump(registry.to_manifest(), handle, indent=2,
                       sort_keys=True)
        print(f"wrote {args.json}", file=sys.stderr)
    sys.stdout.write(render_manifest_prometheus(registry.to_manifest()))
    return 0 if ok else 1


def cmd_trace(args) -> int:
    from .telemetry import collecting, write_chrome_trace

    config = _config(args).replace(
        telemetry_enabled=True,
        telemetry_ring_capacity=args.ring,
    )
    with collecting() as frame:
        if args.figure == "fig2":
            from .reveng import sweep_tpc_pairing

            sweep_tpc_pairing(config, ops=args.ops)
        elif args.figure == "fig5":
            from .reveng import rw_contention_profile

            rw_contention_profile(config, ops=args.ops)
        elif args.figure == "fig9":
            from .analysis.figures import fig9_latency_trace

            fig9_latency_trace(config, with_sync=True, num_bits=args.bits)
        else:  # transmit
            from .channel import TpcCovertChannel

            channel = TpcCovertChannel(config)
            channel.calibrate()
            channel.transmit([i % 2 for i in range(args.bits)])
    hubs = frame.hubs()
    if not hubs:
        print("no telemetry hubs were created; nothing to export",
              file=sys.stderr)
        return 1
    trace = write_chrome_trace(args.out, hubs)
    events = sum(len(hub.tracer) for hub in hubs)
    dropped = sum(hub.tracer.dropped for hub in hubs)
    print(f"traced {args.figure}: {len(hubs)} device(s), "
          f"{events} buffered events ({dropped} evicted), "
          f"{len(trace['traceEvents'])} trace entries")
    print(f"wrote {args.out} — open at https://ui.perfetto.dev "
          f"or chrome://tracing")
    return 0


def cmd_fuzz(args) -> int:
    from .validate import fuzz

    runs = 6 if args.quick and args.runs is None else (args.runs or 25)

    def report(case) -> None:
        status = "ok  " if case.ok else "FAIL"
        print(
            f"{status} case seed={case.seed} cycles={case.cycles} "
            f"packets={case.injected} [{case.summary}]"
        )
        if not case.ok:
            print(f"     {case.failure}")

    from .validate.oracle import DEFAULT_STRATEGIES

    outcome = fuzz(
        runs=runs,
        seed=args.seed,
        max_cycles=args.cycles,
        oracle=not args.no_oracle,
        on_case=report,
        strategies=tuple(args.strategies or DEFAULT_STRATEGIES),
    )
    failed = len(outcome.failures)
    print(f"{len(outcome.cases)} case(s), {failed} failure(s)")
    if failed:
        print(
            "replay a failing case with: "
            f"python -m repro fuzz --seed {outcome.failures[0].seed} --runs 1",
            file=sys.stderr,
        )
    return 1 if failed else 0


def cmd_chaos(args) -> int:
    """Fault-injection drill for the supervised sweep runner."""
    import json as _json

    from .runner import run_chaos
    from .runner.chaos import FAULT_PLANS

    kinds = tuple(args.kinds or FAULT_PLANS)
    for kind in kinds:
        if kind not in FAULT_PLANS:
            print(f"unknown fault kind {kind!r}; choose from "
                  f"{sorted(FAULT_PLANS)}", file=sys.stderr)
            return 2
    num_jobs = 12 if args.quick and args.jobs is None else (args.jobs or 32)
    timeout = args.timeout if args.timeout is not None else (
        0.3 if args.quick else 0.5
    )

    def progress(done: int, total: int) -> None:
        print(f"\rchaos sweep: {done}/{total}", end="", flush=True)

    report = run_chaos(
        seed=args.seed, num_jobs=num_jobs, kinds=kinds,
        workers=args.workers, timeout_s=timeout,
        on_progress=progress if not args.quiet else None,
    )
    if not args.quiet:
        print()
    print(format_table(
        ["job", "injected fault plan"],
        sorted(report.fault_plan.items()),
    ))
    counters = report.counters
    print(
        f"{report.jobs} jobs, {counters.get('attempts', 0)} attempts, "
        f"{counters.get('retries', 0)} retries | failures: "
        f"{counters.get('failures_exception', 0)} exception, "
        f"{counters.get('failures_timeout', 0)} timeout, "
        f"{counters.get('failures_worker_death', 0)} worker-death"
    )
    print(f"healthy results bit-identical to fault-free reference: "
          f"{report.healthy_identical}")
    print(f"resume replayed {report.resume['replayed']} point(s), "
          f"re-executed {report.resume['reexecuted']}")
    print(f"cache corruption: {report.quarantine['injected']} injected, "
          f"{report.quarantine['quarantined']} quarantined")
    for problem in report.problems:
        print(f"PROBLEM: {problem}", file=sys.stderr)
    if args.manifest:
        with open(args.manifest, "w", encoding="utf-8") as handle:
            _json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote {args.manifest}")
    if args.metrics and report.metrics is not None:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            _json.dump(report.metrics, handle, indent=2, sort_keys=True)
        print(f"wrote {args.metrics}")
    print("chaos drill: " + ("OK" if report.ok else "FAILED"))
    return 0 if report.ok else 1


def _parse_kv(pairs, label: str) -> dict:
    """Parse repeated ``key=value`` options (``--param``/``--override``).

    Values go through ``ast.literal_eval`` so ints, floats, tuples and
    quoted strings round-trip; anything unparsable stays a bare string
    (e.g. ``arbitration=srr``).
    """
    import ast

    parsed = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"bad {label} {pair!r}; expected key=value")
        try:
            parsed[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            parsed[key] = raw
    return parsed


def cmd_golden(args) -> int:
    from .runner import ResultCache
    from .testing import (
        GoldenStore,
        artifacts_for_scale,
        check_artifact,
        get_artifact,
        record_artifact,
        reduce_failure,
    )
    from .testing.harness import SCALE_FACTORIES

    scale = args.scale
    if scale not in SCALE_FACTORIES:
        print(
            f"golden supports scales {sorted(SCALE_FACTORIES)}, "
            f"not {scale!r}", file=sys.stderr,
        )
        return 2
    store = GoldenStore(args.golden_dir)
    cache = None if args.no_cache else ResultCache()

    if args.action == "list":
        from .analysis import format_table

        rows = []
        for artifact in artifacts_for_scale(scale):
            rows.append((
                artifact.id,
                ", ".join(exp.id for exp in artifact.expectations),
                "yes" if store.exists(artifact.id, scale) else "no",
            ))
        print(format_table(["artifact", "expectations", "golden"], rows))
        return 0

    chosen = args.artifacts or [
        artifact.id for artifact in artifacts_for_scale(scale)
    ]
    for artifact_id in chosen:
        get_artifact(artifact_id)  # fail fast on typos

    if args.action in ("record", "update"):
        wrote = 0
        for artifact_id in chosen:
            if args.action == "record" and store.exists(artifact_id, scale):
                print(f"keep  {store.path(artifact_id, scale)}")
                continue
            path = record_artifact(
                artifact_id, scale, cache=cache,
                workers=args.workers, store=store,
            )
            wrote += 1
            print(f"wrote {path}")
        print(f"{wrote} golden(s) recorded at scale {scale}")
        return 0

    # action == "check".  A custom sweep (explicit seeds, params, or a
    # deliberate perturbation) is judged on expectations only: goldens
    # were recorded on the unmodified config, so a drift comparison
    # would always report a meaningless config mismatch.
    params = _parse_kv(args.param, "--param") or None
    overrides = _parse_kv(args.override, "--override") or None
    against_golden = (
        params is None and overrides is None and args.seeds is None
    )
    runs = [
        check_artifact(
            artifact_id, scale, seeds=args.seeds, params=params,
            overrides=overrides, cache=cache, workers=args.workers,
            store=store, golden=against_golden,
        )
        for artifact_id in chosen
    ]
    failed = [run for run in runs if not run.passed]
    for run in runs:
        print(run.report())
    if args.report:
        import json as _json

        payload = {
            "scale": scale,
            "passed": not failed,
            "artifacts": [run.to_dict() for run in runs],
        }
        with open(args.report, "w", encoding="utf-8") as handle:
            _json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.report}")
    print(
        f"{len(runs)} artifact(s) checked at scale {scale}: "
        f"{len(runs) - len(failed)} passed, {len(failed)} failed"
    )
    if failed and args.reduce:
        first = failed[0]
        misses = first.failed_expectations()
        if misses:
            reduction = reduce_failure(
                first.artifact.id, misses[0].expectation_id, scale,
                seeds=args.seeds, params=params, overrides=overrides,
                cache=cache,
            )
            print(reduction.report())
    if any(run.golden_error for run in runs):
        return 2
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPU NoC covert channel (MICRO 2021) experiments",
    )
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default=None,
        help="simulated GPU size (default: small; bench defaults to "
             "volta; large is volta under the vector engine)",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="run with conservation-invariant checking enabled "
             "(repro.validate; aborts on the first inconsistency)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show the GPU configuration")

    transmit = sub.add_parser("transmit", help="send a message covertly")
    transmit.add_argument("--message", default="covert")
    transmit.add_argument("--all-tpcs", action="store_true",
                          help="use every TPC as a parallel channel")

    for name, needs_ops in (("fig2", True), ("fig5", True), ("fig15", True)):
        p = sub.add_parser(name, help=f"reproduce {name}")
        if needs_ops:
            p.add_argument("--ops", type=int, default=8)

    sub.add_parser("fig6", help="reproduce fig6 (clock survey)")

    fig10 = sub.add_parser("fig10", help="reproduce fig10 (bw vs error)")
    fig10.add_argument(
        "--panel", choices=("tpc", "multi-tpc", "gpc", "multi-gpc"),
        default="tpc",
    )
    fig10.add_argument("--iterations", type=int, nargs="+",
                       default=[1, 2, 3, 4, 5])
    fig10.add_argument("--bits", type=int, default=12)

    table2 = sub.add_parser("table2", help="measured channel summary")
    table2.add_argument("--bits", type=int, default=10)

    linkchan = sub.add_parser(
        "linkchan",
        help="NVLink-class inter-GPU covert channel sweep "
             "(multi-device fabric; bw vs error per iteration count)",
    )
    linkchan.add_argument("--iterations", type=int, nargs="+",
                          default=[1, 2, 3],
                          help="sender/receiver memory ops per bit slot")
    linkchan.add_argument("--bits", type=int, default=16,
                          help="payload bits per sweep point")
    linkchan.add_argument("--devices", type=int, default=2,
                          help="GPUs in the fabric (attacker is device 0)")
    linkchan.add_argument(
        "--topology", choices=("ring", "full", "switch"), default="ring",
        help="fabric shape (default: ring)",
    )
    linkchan.add_argument("--link-width", type=int, default=4,
                          help="link bandwidth in flits/cycle")
    linkchan.add_argument("--link-latency", type=int, default=150,
                          help="one-way link flight time in cycles")
    linkchan.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the sweep manifest (points + fabric shape) as JSON",
    )

    serve = sub.add_parser(
        "serve",
        help="sweep service: run a fig10 grid through the async dedup "
             "scheduler and answer capacity queries from the surface",
    )
    serve.add_argument(
        "--once", action="store_true",
        help="batch mode: sweep, answer queries, exit (required — daemon "
             "mode is not implemented yet)",
    )
    serve.add_argument(
        "--panel", choices=("tpc", "multi-tpc", "gpc", "multi-gpc"),
        default="tpc",
    )
    serve.add_argument("--iterations", type=int, nargs="+",
                       default=[1, 2, 4],
                       help="swept iteration counts (the surface grid)")
    serve.add_argument("--bits", type=int, default=8,
                       help="payload bits per sweep point")
    serve.add_argument(
        "--queries", default=None, metavar="FILE",
        help="JSON list of queries: iteration counts or "
             "{\"iterations\": x} objects (default: the swept grid)",
    )
    serve.add_argument(
        "--answers", default="serve-answers.json", metavar="FILE",
        help="answers manifest output (default: serve-answers.json)",
    )
    serve.add_argument(
        "--shards", type=int, default=None,
        help="service shard workers (default: $REPRO_SERVICE_SHARDS or 2)",
    )
    serve.add_argument(
        "--execution", choices=("supervised", "inline"), default=None,
        help="shard backend (default: supervised worker processes)",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=None, metavar="N",
        help="LRU-evict the artifact store beyond N entries",
    )
    serve.add_argument(
        "--cache-bytes", type=int, default=None, metavar="BYTES",
        help="LRU-evict the artifact store beyond BYTES total",
    )
    serve.add_argument(
        "--max-age", type=float, default=None, metavar="SECONDS",
        help="staleness bound: refuse answers from a surface older "
             "than this",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="bypass the shared artifact store (.repro_cache)",
    )
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-job supervision timeout")
    serve.add_argument("--retries", type=int, default=None, metavar="N",
                       help="extra attempts per failed job")

    for sweep in (fig10, table2, linkchan):
        sweep.add_argument(
            "--workers", type=int, default=None,
            help="parallel worker processes (default: one per sweep point, "
                 "capped at the CPU count; 1 runs inline)",
        )
        sweep.add_argument(
            "--no-cache", action="store_true",
            help="bypass the on-disk result cache (.repro_cache)",
        )
        sweep.add_argument(
            "--timeout", type=float, default=None, metavar="SECONDS",
            help="per-job wall-clock budget; a worker exceeding it is "
                 "killed and the job retried (enables supervision)",
        )
        sweep.add_argument(
            "--retries", type=int, default=None, metavar="N",
            help="extra attempts per failed job, with exponential backoff "
                 "(enables supervision)",
        )
        sweep.add_argument(
            "--keep-going", action="store_true",
            help="complete the sweep despite failed jobs; failures are "
                 "reported as structured records (exit code 1)",
        )
        sweep.add_argument(
            "--resume", action="store_true",
            help="replay points already completed in this sweep's journal "
                 "and execute only the remainder",
        )
        sweep.add_argument(
            "--journal", default=None, metavar="FILE",
            help="sweep journal path (default: .repro_sweeps/<sweep>.jsonl "
                 "or $REPRO_JOURNAL_DIR)",
        )
        sweep.add_argument(
            "--progress", action="store_true",
            help="live single-line sweep progress on stderr (per-worker "
                 "detail when supervision is engaged)",
        )

    bench = sub.add_parser(
        "bench", help="time the naive vs active-set engine strategies"
    )
    bench.add_argument("--bits", type=int, default=24,
                       help="symbols per benchmark workload")
    bench.add_argument("--output", default="BENCH_engine.json",
                       help="report file (default: BENCH_engine.json)")
    bench.add_argument("--no-output", action="store_true",
                       help="print the summary without writing the report")
    bench.add_argument("--progress", action="store_true",
                       help="print each benchmark phase as it starts")
    bench.add_argument(
        "--history-file", default=None, metavar="FILE",
        help="bench trajectory file (default: BENCH_history.jsonl)",
    )
    bench.add_argument(
        "--no-history", action="store_true",
        help="skip the BENCH_history.jsonl check-and-append",
    )
    bench.add_argument(
        "--check-history", action="store_true",
        help="exit 3 if any throughput falls >20%% below the trailing "
             "median of comparable prior runs (same config and host)",
    )
    bench.add_argument(
        "--from-report", default=None, metavar="FILE",
        help="skip benchmarking; re-check an existing report JSON "
             "against the history (no append)",
    )

    metrics = sub.add_parser(
        "metrics",
        help="run an instrumented sweep and emit Prometheus text plus "
             "an optional JSON metrics manifest",
    )
    metrics.add_argument("--iterations", type=int, nargs="+",
                         default=[1, 2, 3],
                         help="fig10-style iteration counts to sweep")
    metrics.add_argument("--bits", type=int, default=8,
                         help="payload bits per sweep point")
    metrics.add_argument("--workers", type=int, default=None,
                         help="supervised worker processes")
    metrics.add_argument("--json", default=None, metavar="FILE",
                         help="also write the mergeable JSON manifest")
    metrics.add_argument(
        "--merge", nargs="+", default=None, metavar="FILE",
        help="skip the sweep; merge these manifest files (shards) and "
             "render the combined exposition",
    )
    metrics.add_argument("--progress", action="store_true",
                         help="live sweep progress on stderr")

    trace = sub.add_parser(
        "trace",
        help="run an experiment with telemetry and export a Perfetto trace",
    )
    trace.add_argument(
        "--figure", choices=("fig2", "fig5", "fig9", "transmit"),
        default="fig5", help="which experiment to trace (default: fig5)",
    )
    trace.add_argument("--out", default="trace.json",
                       help="output file (Chrome trace-event JSON)")
    trace.add_argument("--bits", type=int, default=16,
                       help="payload bits for fig9/transmit")
    trace.add_argument("--ops", type=int, default=8,
                       help="accesses per kernel for fig2/fig5")
    trace.add_argument("--ring", type=int, default=262144,
                       help="event ring-buffer capacity")

    fuzz = sub.add_parser(
        "fuzz",
        help="randomized integrity fuzzing (invariants + lockstep oracle)",
    )
    fuzz.add_argument("--runs", type=int, default=None,
                      help="number of cases (default: 25, or 6 with --quick)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="first case seed (cases use seed..seed+runs-1)")
    fuzz.add_argument("--cycles", type=int, default=200_000,
                      help="per-case cycle budget before declaring no-drain")
    fuzz.add_argument("--no-oracle", action="store_true",
                      help="skip the lockstep engine comparison")
    fuzz.add_argument(
        "--strategies", nargs="+", default=None, metavar="STRATEGY",
        choices=("naive", "active", "vector"),
        help="engine strategies for the lockstep oracle; the first is "
             "the baseline (default: naive active; pass 'naive active "
             "vector' for the three-way sweep)",
    )
    fuzz.add_argument("--quick", action="store_true",
                      help="CI mode: a small time-boxed case budget")

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection drill: crash/hang/kill workers mid-sweep "
             "and verify supervision, resume and cache quarantine",
    )
    chaos.add_argument("--jobs", type=int, default=None,
                       help="sweep size (default: 32, or 12 with --quick)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-placement seed")
    chaos.add_argument(
        "--kind", action="append", dest="kinds", metavar="KIND",
        help="inject only this fault kind (repeatable; default: all)",
    )
    chaos.add_argument("--timeout", type=float, default=None,
                       help="per-job supervision timeout in seconds "
                            "(default: 0.5, or 0.3 with --quick)")
    chaos.add_argument("--workers", type=int, default=None,
                       help="concurrent supervised workers")
    chaos.add_argument("--manifest", default="chaos-manifest.json",
                       metavar="FILE",
                       help="write the failure manifest as JSON "
                            "(default: chaos-manifest.json)")
    chaos.add_argument("--quick", action="store_true",
                       help="CI smoke budget: fewer jobs, tighter timeout")
    chaos.add_argument("--quiet", action="store_true",
                       help="suppress the live progress line")
    chaos.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write the chaos sweep's labeled metrics manifest as JSON "
             "(mergeable via 'python -m repro metrics --merge')",
    )

    golden = sub.add_parser(
        "golden",
        help="golden-metric regression harness (statistical acceptance "
             "tests for every paper artifact)",
    )
    golden.add_argument(
        "action", choices=("record", "check", "update", "list"),
        help="record missing goldens / check against them / re-record "
             "all / list artifacts",
    )
    golden.add_argument(
        "--artifact", action="append", dest="artifacts", metavar="ID",
        help="limit to one artifact (repeatable; default: all at scale)",
    )
    golden.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="override the artifact's seed sweep (check only)",
    )
    golden.add_argument(
        "--param", action="append", metavar="K=V",
        help="override a workload parameter, e.g. ops=4 (check only)",
    )
    golden.add_argument(
        "--override", action="append", metavar="K=V",
        help="override a GpuConfig field, e.g. arbitration=srr "
             "(check only; used to perturb and to replay reductions)",
    )
    golden.add_argument(
        "--workers", type=int, default=1,
        help="parallel worker processes per seed sweep (default: 1)",
    )
    golden.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk result cache (.repro_cache)",
    )
    golden.add_argument(
        "--reduce", action="store_true",
        help="on failure, bisect the first miss to the smallest config "
             "that still reproduces it",
    )
    golden.add_argument(
        "--report", default=None, metavar="FILE",
        help="write the expectation/drift report as JSON",
    )
    golden.add_argument(
        "--golden-dir", default=None,
        help="golden snapshot directory (default: tests/golden, or "
             "$REPRO_GOLDEN_DIR)",
    )

    return parser


COMMANDS = {
    "info": cmd_info,
    "transmit": cmd_transmit,
    "fig2": cmd_fig2,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "fig10": cmd_fig10,
    "fig15": cmd_fig15,
    "linkchan": cmd_linkchan,
    "serve": cmd_serve,
    "table2": cmd_table2,
    "bench": cmd_bench,
    "metrics": cmd_metrics,
    "trace": cmd_trace,
    "fuzz": cmd_fuzz,
    "chaos": cmd_chaos,
    "golden": cmd_golden,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.scale is None:
        args.scale = COMMAND_SCALES.get(args.command, DEFAULT_SCALE)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

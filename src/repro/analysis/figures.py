"""Per-figure data-series builders.

One function per paper figure/table: each runs the underlying experiment
and returns the rows/series the paper reports, ready for the benchmark
harness to print.  Figure numbering follows the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import GpuConfig
from ..channel.gpc_channel import GpcCovertChannel
from ..channel.metrics import TransmissionResult
from ..channel.protocol import ChannelParams
from ..channel.tpc_channel import TpcCovertChannel


@dataclass
class BandwidthErrorPoint:
    """One point of Figure 10: bandwidth + error at an iteration count."""

    iterations: int
    bandwidth_kbps: float
    error_rate: float


@dataclass
class Fig10Series:
    """One panel of Figure 10 (e.g. single TPC, multi-TPC, ...)."""

    label: str
    points: List[BandwidthErrorPoint] = field(default_factory=list)

    def rows(self) -> List[Tuple[int, float, float]]:
        return [
            (p.iterations, p.bandwidth_kbps, p.error_rate)
            for p in self.points
        ]


def _random_bits(count: int, seed: int) -> List[int]:
    rng = random.Random(seed)
    return [rng.randint(0, 1) for _ in range(count)]


def _measure_channel(
    channel, payload_bits: int, seed: int, training_symbols: int = 16
) -> TransmissionResult:
    channel.calibrate(training_symbols=training_symbols)
    return channel.transmit(_random_bits(payload_bits, seed))


def fig10_panel(
    config: GpuConfig,
    kind: str,
    iterations: Sequence[int] = (1, 2, 3, 4, 5),
    bits_per_channel: int = 10,
    seed: int = 1021,
) -> Fig10Series:
    """Bandwidth and error rate vs iterations for one Figure 10 panel.

    ``kind`` is one of ``"tpc"``, ``"multi-tpc"``, ``"gpc"``,
    ``"multi-gpc"``.  The payload scales with the channel count so every
    parallel channel carries ``bits_per_channel`` symbols.
    """
    builders = {
        "tpc": lambda params: TpcCovertChannel(config, params=params),
        "multi-tpc": lambda params: TpcCovertChannel.all_channels(
            config, params=params
        ),
        "gpc": lambda params: GpcCovertChannel(config, params=params),
        "multi-gpc": lambda params: GpcCovertChannel.all_channels(
            config, params=params
        ),
    }
    if kind not in builders:
        raise ValueError(f"unknown Figure 10 panel {kind!r}")
    series = Fig10Series(label=kind)
    for index, iteration_count in enumerate(iterations):
        probe = builders[kind](None)
        params = probe.params.with_(iterations=iteration_count)
        channel = builders[kind](params)
        channel.seed_salt = seed + index
        payload = bits_per_channel * channel.num_channels
        result = _measure_channel(channel, payload, seed + index)
        series.points.append(
            BandwidthErrorPoint(
                iterations=iteration_count,
                bandwidth_kbps=result.bandwidth_bps / 1e3,
                error_rate=result.error_rate,
            )
        )
    return series


def fig9_latency_trace(
    config: GpuConfig,
    with_sync: bool,
    num_bits: int = 30,
    params: Optional[ChannelParams] = None,
) -> Tuple[List[int], List[float]]:
    """Figure 9: receiver latency for an alternating '0101..' sequence.

    ``with_sync=False`` reproduces panel (a): timing-slot-only operation
    where overrun drift accumulates and contention stops being detected;
    ``with_sync=True`` reproduces panel (b) with periodic resync.
    """
    base = params or ChannelParams()
    channel_params = base.with_(
        sync_period=(8 if with_sync else 0),
        # Panel (a) needs visible drift: shave the slot so the sender's
        # write burst cannot drain within it and every '1' overruns.
        slot_cycles=(0 if with_sync else max(256, base.slot - 700)),
        threshold=1.0,
    )
    channel = TpcCovertChannel(config, params=channel_params)
    bits = [slot % 2 for slot in range(num_bits)]
    result = channel.transmit(bits)
    return bits, result.measurements[0]


def fig14_multilevel_trace(
    config: GpuConfig,
    repeats: int = 8,
) -> Tuple[List[int], List[float]]:
    """Figure 14: latency staircase for the '0102030..' level sequence."""
    from ..channel.multilevel import MultiLevelTpcChannel

    channel = MultiLevelTpcChannel(config)
    channel.calibrate_levels(repeats=max(4, repeats // 2))
    pattern: List[int] = []
    for _ in range(repeats):
        for symbol in (0, 1, 0, 2, 0, 3):
            pattern.append(symbol)
    result = channel.transmit(pattern)
    return pattern, result.measurements[0]


@dataclass
class Table2Row:
    """One row of Table 2 (our-work portion): measured channel summary."""

    channel: str
    parallel: str
    locality: str
    directness: str
    error_rate: float
    bandwidth_mbps: float


def table2_summary(
    config: GpuConfig,
    bits_per_channel: int = 12,
    seed: int = 2021,
) -> List[Table2Row]:
    """Measure all four of this work's channels for the Table 2 rows."""
    rows: List[Table2Row] = []
    cases = [
        ("GPU TPC Channel", TpcCovertChannel(config)),
        ("GPU TPC Channel (all TPCs)", TpcCovertChannel.all_channels(config)),
        ("GPU GPC Channel", GpcCovertChannel(config)),
        ("GPU GPC Channel (all GPCs)", GpcCovertChannel.all_channels(config)),
    ]
    for index, (label, channel) in enumerate(cases):
        channel.seed_salt = seed + index
        payload = bits_per_channel * channel.num_channels
        result = _measure_channel(channel, payload, seed + index)
        rows.append(
            Table2Row(
                channel=label,
                parallel="Parallel",
                locality="Local",
                directness="Direct",
                error_rate=result.error_rate,
                bandwidth_mbps=result.bandwidth_mbps,
            )
        )
    return rows

"""Metrics, figure-series builders, and table rendering."""

from .figures import (
    BandwidthErrorPoint,
    Fig10Series,
    Table2Row,
    fig9_latency_trace,
    fig10_panel,
    fig14_multilevel_trace,
    table2_summary,
)
from .report import REPORT_SECTIONS, generate_report
from .tables import format_series, format_table

__all__ = [
    "BandwidthErrorPoint",
    "Fig10Series",
    "Table2Row",
    "fig9_latency_trace",
    "fig10_panel",
    "fig14_multilevel_trace",
    "table2_summary",
    "format_series",
    "format_table",
    "REPORT_SECTIONS",
    "generate_report",
]

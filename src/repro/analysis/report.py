"""One-shot experiment report generator.

``generate_report`` runs a configurable subset of the reproduction's
experiments and renders a single markdown document — a self-contained
"evidence bundle" a user can regenerate after modifying the simulator to
check that nothing regressed.  The full suite mirrors EXPERIMENTS.md; the
default quick profile exercises one experiment per subsystem on the
scaled-down configs in a couple of minutes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..config import GpuConfig, medium_config, small_config
from .tables import format_table


@dataclass
class ReportSection:
    title: str
    body_lines: List[str] = field(default_factory=list)

    def render(self) -> str:
        return "\n".join([f"## {self.title}", ""] + self.body_lines + [""])


def _section_tpc_discovery(quick: bool) -> ReportSection:
    from ..reveng import sweep_tpc_pairing

    config = small_config(timing_noise=0)
    sweep = sweep_tpc_pairing(config, ops=8)
    normalized = sweep.normalized()
    section = ReportSection("TPC discovery (Figure 2)")
    section.body_lines.append(
        format_table(
            ["co-runner SM", "normalized SM0 time"],
            sorted(normalized.items()),
        )
    )
    section.body_lines.append("")
    section.body_lines.append(
        f"Detected TPC sibling(s) of SM0: {sweep.partner_of_sm0()}"
    )
    return section


def _section_contention(quick: bool) -> ReportSection:
    from ..reveng import rw_contention_profile

    config = medium_config(timing_noise=0)
    profile = rw_contention_profile(config, ops=5 if quick else 8)
    section = ReportSection("Read/write contention (Figure 5)")
    section.body_lines.append(
        format_table(
            ["channel", "write", "read"],
            [
                ("TPC (2 SMs)", profile.tpc["write"], profile.tpc["read"]),
                (
                    f"GPC ({len(profile.gpc['write'])} TPCs)",
                    profile.gpc["write"][-1],
                    profile.gpc["read"][-1],
                ),
            ],
        )
    )
    return section


def _section_covert_channel(quick: bool) -> ReportSection:
    from ..channel import TpcCovertChannel

    config = small_config()
    channel = TpcCovertChannel.all_channels(config)
    channel.calibrate()
    rng = random.Random(5)
    bits = [rng.randint(0, 1) for _ in range(16 * channel.num_channels)]
    result = channel.transmit(bits)
    section = ReportSection("Covert channel (Figure 10 operating point)")
    section.body_lines.append(
        format_table(
            ["metric", "value"],
            [
                ("parallel channels", channel.num_channels),
                ("bandwidth (Mbps)", result.bandwidth_mbps),
                ("error rate", result.error_rate),
            ],
        )
    )
    return section


def _section_defense(quick: bool) -> ReportSection:
    from ..defense import arbitration_leakage_sweep

    config = small_config(timing_noise=0)
    sweep = arbitration_leakage_sweep(
        config, fractions=(0.0, 0.5, 1.0), ops=8
    )
    section = ReportSection("Secure arbitration (Figure 15)")
    section.body_lines.append(
        format_table(
            ["policy", "leakage slope"],
            [(p.upper(), sweep.slope(p)) for p in ("rr", "crr", "srr")],
        )
    )
    section.body_lines.append("")
    section.body_lines.append(
        "SRR's flat slope (≈0) is the covert channel's removal."
    )
    return section


def _section_side_channel(quick: bool) -> ReportSection:
    from ..channel import measure_l1_miss_leakage

    trace = measure_l1_miss_leakage(small_config(timing_noise=0))
    section = ReportSection("L1-miss side channel (Section 5)")
    section.body_lines.append(
        format_table(
            ["victim L1 misses", "spy latency"],
            list(zip(trace.miss_counts, trace.spy_latencies)),
        )
    )
    section.body_lines.append("")
    section.body_lines.append(
        f"Pearson correlation: {trace.correlation():.3f}"
    )
    return section


#: Section name -> builder.  ``quick`` trims parameters, not coverage.
REPORT_SECTIONS: Dict[str, Callable[[bool], ReportSection]] = {
    "tpc-discovery": _section_tpc_discovery,
    "contention": _section_contention,
    "covert-channel": _section_covert_channel,
    "defense": _section_defense,
    "side-channel": _section_side_channel,
}


def generate_report(
    sections: Optional[Sequence[str]] = None,
    quick: bool = True,
) -> str:
    """Run the selected experiments and render a markdown report."""
    chosen = list(sections or REPORT_SECTIONS)
    unknown = [name for name in chosen if name not in REPORT_SECTIONS]
    if unknown:
        raise ValueError(
            f"unknown sections {unknown}; have {sorted(REPORT_SECTIONS)}"
        )
    parts = [
        "# repro experiment report",
        "",
        "Regenerated from live simulation runs; see EXPERIMENTS.md for the",
        "paper-vs-measured comparison of every figure and table.",
        "",
    ]
    for name in chosen:
        parts.append(REPORT_SECTIONS[name](quick).render())
    return "\n".join(parts)

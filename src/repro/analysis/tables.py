"""Plain-text table rendering for benchmark/experiment output.

Every benchmark prints the rows/series its paper figure reports; this
module keeps that output consistent and readable without any plotting
dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows: List[List[str]] = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_series(xs: Sequence[object], ys: Sequence[object], x_label: str,
                  y_label: str) -> str:
    """Render an (x, y) series as a two-column table."""
    return format_table([x_label, y_label], zip(xs, ys))

"""Legacy setup shim (the offline environment's pip lacks bdist_wheel)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Network-on-Chip Microarchitecture-based Covert "
        "Channel in GPUs' (MICRO 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[],
    extras_require={"vector": ["numpy"]},
)

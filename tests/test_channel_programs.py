"""Fine-grained tests of the Algorithm-2 sender/receiver programs.

These drive the protocol generators directly on a scripted device,
checking slot-level behaviour the end-to-end tests only observe in
aggregate: initial synchronization, slot pacing, resync boundaries,
per-channel staggering, and level modulation.
"""

import pytest

from repro.config import small_config
from repro.channel.protocol import (
    ChannelParams,
    receiver_program,
    region_bytes,
    sender_program,
)
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import Kernel

LINE = 128


def run_pair(config, params, bits, sender_extra=None, receiver_extra=None):
    """Launch one sender/receiver pair on TPC0 and return measurements."""
    device = GpuDevice(config)
    measurements = {}
    sender_args = {
        "params": params,
        "channel_bits": {0: list(bits)},
        "base_for": {0: 0},
        "line_bytes": LINE,
        "levels": None,
        "channel_of": {0: 0},
    }
    receiver_args = {
        "params": params,
        "num_symbols": {0: len(bits)},
        "base_for": {0: 1 << 20},
        "line_bytes": LINE,
        "measurements": measurements,
        "channel_of": {0: 0},
    }
    if sender_extra:
        sender_args.update(sender_extra)
    if receiver_extra:
        receiver_args.update(receiver_extra)
    sender = Kernel(
        sender_program,
        num_blocks=config.num_tpcs,
        warps_per_block=params.sender_warps,
        args=sender_args,
        name="s",
    )
    receiver = Kernel(
        receiver_program,
        num_blocks=config.num_tpcs,
        warps_per_block=1,
        args=receiver_args,
        name="r",
    )
    region = region_bytes(params, LINE)
    device.preload_region(0, params.sender_warps * region)
    device.preload_region(1 << 20, region)
    times = device.run_kernels([sender, receiver])
    series = [measurements.get((0, i), 0.0) for i in range(len(bits))]
    return series, times


@pytest.fixture(scope="module")
def quiet():
    return small_config(timing_noise=0)


@pytest.fixture(scope="module")
def params():
    return ChannelParams(threshold=1.0, sync_period=0)


class TestSlotBehaviour:
    def test_every_slot_measured_once(self, quiet, params):
        bits = [0, 1, 0, 1, 1, 0]
        series, _ = run_pair(quiet, params, bits)
        assert len(series) == len(bits)
        assert all(value > 0 for value in series)

    def test_ones_and_zeros_fully_separable_noise_free(self, quiet, params):
        bits = [1, 0] * 6
        series, _ = run_pair(quiet, params, bits)
        ones = [v for v, b in zip(series, bits) if b]
        zeros = [v for v, b in zip(series, bits) if not b]
        assert min(ones) > max(zeros)

    def test_transmission_time_scales_with_payload(self, quiet, params):
        _, short = run_pair(quiet, params, [1, 0])
        _, long = run_pair(quiet, params, [1, 0] * 5)
        assert long["r"] > short["r"] + 5 * params.slot

    def test_inactive_blocks_idle(self, quiet, params):
        # Blocks without channel_bits entries must finish immediately:
        # the total runtime equals the single active pair's runtime.
        bits = [1, 0, 1]
        _, times = run_pair(quiet, params, bits)
        assert times["s"] <= times["r"] + params.slot * 2


class TestSynchronization:
    def test_resync_bounds_drift(self, quiet):
        """With a too-small slot the sender overruns; resync every 4 bits
        restores the pattern, so late bits still decode."""
        tight = ChannelParams(
            threshold=1.0, sync_period=4,
            slot_cycles=900,
        )
        bits = [1, 0] * 8
        series, _ = run_pair(quiet, tight, bits)
        late = series[-4:]
        late_bits = bits[-4:]
        ones = [v for v, b in zip(late, late_bits) if b]
        zeros = [v for v, b in zip(late, late_bits) if not b]
        assert sum(ones) / len(ones) > sum(zeros) / len(zeros)

    def test_stagger_offsets_channels(self, quiet):
        """Different channel indices shift the sync target: the programs
        must still pair up within a channel."""
        params = ChannelParams(threshold=1.0, sync_period=0)
        bits = [1, 0, 1, 0]
        series, _ = run_pair(
            quiet, params, bits,
            sender_extra={"channel_of": {0: 3}},
            receiver_extra={"channel_of": {0: 3}},
        )
        ones = [v for v, b in zip(series, bits) if b]
        zeros = [v for v, b in zip(series, bits) if not b]
        assert min(ones) > max(zeros)

    def test_mismatched_stagger_breaks_pairing(self, quiet):
        """Sender and receiver disagreeing on the channel index start
        their slots apart — the contrast collapses (guards against a
        silent stagger regression)."""
        params = ChannelParams(threshold=1.0, sync_period=0, stagger=1024)
        bits = [1, 0] * 4
        series, _ = run_pair(
            quiet, params, bits,
            sender_extra={"channel_of": {0: 0}},
            receiver_extra={"channel_of": {0: 2}},
        )
        ones = [v for v, b in zip(series, bits) if b]
        zeros = [v for v, b in zip(series, bits) if not b]
        aligned_contrast = min(ones) - max(zeros)
        assert aligned_contrast < 100  # no clean separation


class TestLevels:
    def test_level_modulation_orders_latencies(self, quiet):
        params = ChannelParams(threshold=1.0, sync_period=0)
        symbols = [0, 1, 2, 3] * 3
        device_bits = symbols
        series, _ = run_pair(
            quiet, params, device_bits,
            sender_extra={"levels": [0, 8, 16, 32]},
        )
        means = {}
        for symbol, value in zip(symbols, series):
            means.setdefault(symbol, []).append(value)
        ordered = [sum(v) / len(v) for _, v in sorted(means.items())]
        assert ordered == sorted(ordered)
        assert ordered[3] > ordered[0] * 1.1

"""Unit tests for the clock-register skew model (Section 4.1 / Figure 6)."""

import pytest

from repro.config import small_config, VOLTA_V100
from repro.sim.clock import ClockSystem
from repro.sim.engine import Engine


def make_clocks(config, salt=0):
    return ClockSystem(config, Engine(), seed_salt=salt)


class TestSkewStructure:
    def test_intra_tpc_skew_within_paper_bound(self):
        clocks = make_clocks(VOLTA_V100)
        for tpc in range(VOLTA_V100.num_tpcs):
            a, b = VOLTA_V100.tpc_sms(tpc)
            assert clocks.skew_between(a, b) <= 5 + VOLTA_V100.clock_skew.sm_jitter

    def test_intra_gpc_skew_within_paper_bound(self):
        clocks = make_clocks(VOLTA_V100)
        skew = VOLTA_V100.clock_skew
        members = VOLTA_V100.gpc_members()
        bound = skew.tpc_jitter + skew.sm_jitter
        for tpcs in members.values():
            sms = [sm for tpc in tpcs for sm in VOLTA_V100.tpc_sms(tpc)]
            for other in sms[1:]:
                assert clocks.skew_between(sms[0], other) <= bound

    def test_cross_gpc_offsets_are_huge(self):
        clocks = make_clocks(VOLTA_V100)
        members = VOLTA_V100.gpc_members()
        sm_a = VOLTA_V100.tpc_sms(members[0][0])[0]
        sm_b = VOLTA_V100.tpc_sms(members[1][0])[0]
        # Different GPCs started counting ~1e9 cycles apart (Figure 6).
        assert clocks.skew_between(sm_a, sm_b) > 1_000_000

    def test_base_offsets_deterministic_for_seed(self):
        a = make_clocks(small_config())
        b = make_clocks(small_config())
        for sm in range(small_config().num_sms):
            assert a.base_offset(sm) == b.base_offset(sm)

    def test_seed_salt_changes_offsets(self):
        a = make_clocks(small_config(), salt=0)
        b = make_clocks(small_config(), salt=1)
        offsets_a = [a.base_offset(sm) for sm in range(8)]
        offsets_b = [b.base_offset(sm) for sm in range(8)]
        assert offsets_a != offsets_b


class TestReads:
    def test_read_tracks_engine_cycle(self):
        config = small_config(
            clock_skew=small_config().clock_skew.__class__(
                gpc_base_min=0, gpc_base_max=1, tpc_jitter=0, sm_jitter=0,
                read_jitter=0,
            )
        )
        engine = Engine()
        clocks = ClockSystem(config, engine)
        first = clocks.read(0)
        engine.step(100)
        assert clocks.read(0) == first + 100

    def test_read_is_32_bit(self):
        clocks = make_clocks(VOLTA_V100)
        for sm in range(0, 80, 17):
            assert 0 <= clocks.read(sm) <= 0xFFFFFFFF

    def test_read_raw_not_truncated(self):
        clocks = make_clocks(VOLTA_V100)
        raw = [clocks.read_raw(sm) for sm in range(80)]
        assert max(raw) > 0xFFFFFFF  # GPC bases reach into the billions

    def test_read_jitter_bounded(self):
        config = small_config()
        engine = Engine()
        clocks = ClockSystem(config, engine)
        base = clocks.base_offset(0)
        jitter = config.clock_skew.read_jitter
        values = [clocks.read(0) for _ in range(50)]
        for value in values:
            assert base <= value <= base + jitter

    def test_clock_fuzz_widens_spread(self):
        fuzzed = small_config(clock_fuzz=500)
        engine = Engine()
        clocks = ClockSystem(fuzzed, engine)
        base = clocks.base_offset(0)
        values = [clocks.read(0) for _ in range(200)]
        spread = max(values) - min(values)
        assert spread > 100  # far beyond the ±2 read jitter
        assert all(abs(v - base) <= 502 for v in values)

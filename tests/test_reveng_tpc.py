"""Tests for TPC-pair reverse engineering (Section 3.2 / Figure 2)."""

import pytest

from repro.config import small_config
from repro.reveng.tpc_discovery import (
    measure_active_sms,
    recover_tpc_pairs,
    sweep_tpc_pairing,
)


@pytest.fixture(scope="module")
def cfg():
    return small_config()


class TestMeasureActiveSms:
    def test_returns_duration_for_every_active_sm(self, cfg):
        result = measure_active_sms(cfg, {0, 3}, ops=6)
        assert set(result) == {0, 3}
        assert all(duration > 0 for duration in result.values())

    def test_tpc_sibling_doubles_execution_time(self, cfg):
        baseline = measure_active_sms(cfg, {0}, ops=10)[0]
        paired = measure_active_sms(cfg, {0, 1}, ops=10)[0]
        assert paired / baseline == pytest.approx(2.0, rel=0.12)

    def test_foreign_sm_leaves_time_flat(self, cfg):
        baseline = measure_active_sms(cfg, {0}, ops=10)[0]
        foreign = measure_active_sms(cfg, {0, 4}, ops=10)[0]
        assert foreign / baseline == pytest.approx(1.0, rel=0.12)

    def test_read_contention_minimal_in_tpc(self, cfg):
        baseline = measure_active_sms(cfg, {0}, kind="read", ops=6)[0]
        paired = measure_active_sms(cfg, {0, 1}, kind="read", ops=6)[0]
        assert paired / baseline < 1.3


class TestSweep:
    def test_figure2_shape(self, cfg):
        sweep = sweep_tpc_pairing(cfg, ops=10)
        normalized = sweep.normalized()
        assert normalized[1] > 1.7          # the TPC sibling
        for other in (2, 3, 4, 5, 6, 7):
            assert normalized[other] < 1.3  # everyone else flat

    def test_partner_detection(self, cfg):
        sweep = sweep_tpc_pairing(cfg, ops=10)
        assert sweep.partner_of_sm0() == [1]

    def test_sweep_respects_explicit_sm_list(self, cfg):
        sweep = sweep_tpc_pairing(cfg, other_sms=[1, 4], ops=8)
        assert set(sweep.sm0_times) == {1, 4}


class TestFullRecovery:
    def test_recovers_every_tpc_pair(self, cfg):
        pairs = recover_tpc_pairs(cfg, ops=8)
        expected = [{2 * t, 2 * t + 1} for t in range(cfg.num_tpcs)]
        assert sorted(pairs, key=min) == expected

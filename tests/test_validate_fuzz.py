"""Fuzz-harness tests (repro.validate.fuzz) and the ``fuzz`` CLI."""

import random

from repro.cli import main
from repro.config import ARBITRATION_POLICIES
from repro.validate import fuzz, run_case
from repro.validate.fuzz import random_config, random_stimulus


class TestGenerators:
    def test_random_config_is_deterministic_per_seed(self):
        assert random_config(random.Random(7)) == random_config(
            random.Random(7)
        )

    def test_random_config_stays_small_and_valid(self):
        for seed in range(30):
            config = random_config(random.Random(seed))
            assert config.validate_enabled
            assert 1 <= config.num_gpcs <= 2
            assert config.num_sms <= 12
            assert config.arbitration in ARBITRATION_POLICIES

    def test_random_stimulus_replays_identically(self):
        rng = random.Random(3)
        config = random_config(rng)
        stimulus = random_stimulus(rng, config)
        from repro.gpu.device import GpuDevice

        launched = []
        for _ in range(2):
            device = GpuDevice(config)
            stimulus(device)
            launched.append([
                (k.name, k.num_blocks, k.warps_per_block, dict(k.args))
                for stream in device.scheduler.streams
                for k in ([stream.running] if stream.running else [])
                + stream.pending
            ])
        assert launched[0] == launched[1]


class TestFuzzing:
    def test_seeded_quick_sweep_is_clean(self):
        report = fuzz(runs=3, seed=0)
        assert report.ok
        assert len(report.cases) == 3
        assert all(case.injected > 0 for case in report.cases)
        assert all(case.injected == case.delivered for case in report.cases)

    def test_run_case_is_reproducible(self):
        first = run_case(2, oracle=False)
        second = run_case(2, oracle=False)
        assert first.ok and second.ok
        assert (first.cycles, first.injected, first.delivered) == (
            second.cycles, second.injected, second.delivered
        )

    def test_case_records_config_summary(self):
        case = run_case(1, oracle=False)
        assert "arb=" in case.summary
        assert f"seed={case.seed}" != case.summary  # summary is the config


class TestFuzzCli:
    def test_fuzz_command_reports_success(self, capsys):
        assert main(["fuzz", "--runs", "2", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "2 case(s), 0 failure(s)" in out
        assert "ok   case seed=0" in out

    def test_fuzz_quick_defaults_to_small_budget(self, capsys):
        assert main(["fuzz", "--quick", "--runs", "1", "--no-oracle"]) == 0
        assert "1 case(s)" in capsys.readouterr().out

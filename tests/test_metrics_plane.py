"""The ``repro.metrics`` plane: registry, exposition, profiling, history.

Covers the labeled-metrics registry and its mergeable manifests, the
Prometheus text exposition, the sampled engine self-profiler (including
the bit-identity contract), the live sweep-progress renderer, the
bench-trajectory history, and the supervised-sweep metrics aggregation
(merged counts cover only fresh, healthy points).
"""

import io
import json

import pytest

from repro.config import SweepSupervision, small_config
from repro.metrics import (
    EngineProfiler,
    MetricsRegistry,
    SweepProgress,
    append_history,
    bench_record,
    check_history,
    get_registry,
    load_history,
    render_manifest_prometheus,
    render_prometheus,
    scoped_registry,
)
from repro.runner import (
    JobFailure,
    ResultCache,
    SimJob,
    merge_metrics,
    merge_telemetry,
    run_supervised,
)

#: Fast supervision policy for metric-aggregation sweeps.
FAST = SweepSupervision(
    backoff_base_s=0.01, backoff_max_s=0.02, max_attempts=2
)


def always_raise(config, tag="boom"):
    """Workload that fails on every attempt (picklable dotted path)."""
    raise RuntimeError(f"injected: {tag}")


RAISER = f"{__name__}.always_raise"


def fig10_job(count, seed, **config_overrides):
    return SimJob(
        fn="repro.runner.workloads.fig10_point",
        config=small_config(**config_overrides),
        params={
            "kind": "tpc",
            "iteration_count": count,
            "bits_per_channel": 4,
            "seed": seed,
        },
    )


class TestRegistry:
    def test_counter_handle_is_stable_and_hot(self):
        registry = MetricsRegistry()
        handle = registry.counter("jobs_total", "jobs", state="ok")
        handle.inc()
        handle.inc(4)
        assert registry.counter("jobs_total", state="ok") is handle
        assert registry.value("jobs_total", state="ok").value == 5

    def test_labels_key_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", state="ok").inc()
        registry.counter("jobs_total", state="failed").inc(2)
        series = registry.series("jobs_total")
        assert [(labels, m.value) for labels, m in series] == [
            ({"state": "failed"}, 2),
            ({"state": "ok"}, 1),
        ]

    def test_kind_conflict_is_a_hard_error(self):
        registry = MetricsRegistry()
        registry.counter("latency")
        with pytest.raises(ValueError, match="already registered"):
            registry.sampler("latency")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok_name", **{"0bad": "x"})

    def test_gauge_high_water(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("workers")
        gauge.set(4)
        gauge.high_water(2)
        assert gauge.value == 4
        gauge.high_water(9)
        assert gauge.value == 9

    def test_manifest_is_rfc_json(self):
        registry = MetricsRegistry()
        registry.sampler("empty_sampler")  # ±inf bounds internally
        registry.histogram("empty_hist", bucket_width=8, num_buckets=4)
        text = json.dumps(registry.to_manifest())
        assert "Infinity" not in text
        json.loads(text)  # strict round-trip

    def test_merge_manifest_folds_every_kind(self):
        registry = MetricsRegistry()
        registry.counter("c", state="ok").inc(3)
        registry.gauge("g").set(5)
        sampler = registry.sampler("s")
        sampler.add(2.0)
        sampler.add(4.0)
        hist = registry.histogram("h", bucket_width=10, num_buckets=4)
        hist.add(5)
        hist.add(9999)  # overflow bucket

        manifest = json.loads(json.dumps(registry.to_manifest()))
        registry.merge_manifest(manifest)
        assert registry.value("c", state="ok").value == 6
        assert registry.value("g").value == 5  # gauge keeps the max
        merged_sampler = registry.value("s")
        assert merged_sampler.count == 4
        assert merged_sampler.minimum == 2.0
        merged_hist = registry.value("h")
        assert merged_hist.count == 4
        assert merged_hist.overflow == 2

    def test_merge_manifest_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown kind"):
            MetricsRegistry().merge_manifest(
                {"metrics": {"x": {"kind": "mystery", "series": []}}}
            )

    def test_reset_zeroes_but_retains_families(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.reset()
        assert registry.value("c").value == 0
        assert len(registry) == 1

    def test_scoped_registry_overrides_default(self):
        outer = get_registry()
        with scoped_registry() as inner:
            assert get_registry() is inner
            assert inner is not outer
            with scoped_registry() as innermost:
                assert get_registry() is innermost
            assert get_registry() is inner
        assert get_registry() is outer


class TestExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "Jobs seen.", state="ok").inc(3)
        registry.gauge("workers").set(2)
        text = render_prometheus(registry)
        assert "# HELP jobs_total Jobs seen." in text
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{state="ok"} 3' in text
        assert "# TYPE workers gauge" in text
        assert "workers 2" in text

    def test_sampler_renders_as_summary(self):
        registry = MetricsRegistry()
        sampler = registry.sampler("latency_s", strategy="active")
        sampler.add(1.5)
        sampler.add(2.5)
        text = render_prometheus(registry)
        assert "# TYPE latency_s summary" in text
        assert 'latency_s_count{strategy="active"} 2' in text
        assert 'latency_s_sum{strategy="active"} 4' in text

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("span", bucket_width=10, num_buckets=4)
        for value in (5, 5, 15, 9999):
            hist.add(value)
        text = render_prometheus(registry)
        assert '_bucket{le="10"} 2' in text
        assert '_bucket{le="20"} 3' in text
        assert '_bucket{le="+Inf"} 4' in text
        assert "span_count 4" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c\nd').inc()
        text = render_prometheus(registry)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_renders_from_stored_manifest(self):
        registry = MetricsRegistry()
        registry.counter("c", state="ok").inc(2)
        stored = json.loads(json.dumps(registry.to_manifest()))
        assert render_manifest_prometheus(stored) == render_prometheus(
            registry
        )


class TestEngineProfiler:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            EngineProfiler(interval=0)
        with pytest.raises(ValueError):
            small_config(metrics_interval=0)

    def test_sampling_rearms_the_stride(self):
        profiler = EngineProfiler(interval=32)
        assert profiler.next_sample == 0
        profiler.sample(100, 7)
        assert profiler.next_sample == 132
        summary = profiler.registry.value(
            "engine_active_set_size", strategy="active"
        )
        assert summary.count == 1 and summary.maximum == 7

    def test_device_attaches_profiler_only_when_enabled(self):
        from repro.gpu.device import GpuDevice

        off = GpuDevice(small_config())
        assert off.profiler is None
        assert off.metrics_manifest() is None
        on = GpuDevice(small_config(metrics_enabled=True))
        assert on.profiler is not None
        assert on.engine.profiler is on.profiler
        manifest = on.metrics_manifest()
        assert "engine_fast_forwards_total" in manifest["metrics"]

    def _channel_fingerprint(self, **overrides):
        from repro.channel import TpcCovertChannel

        channel = TpcCovertChannel(small_config(**overrides))
        channel.calibrate()
        result = channel.transmit([1, 0, 1, 1])
        return result.cycles, result.received_symbols, result.measurements

    @pytest.mark.parametrize("strategy", ["active", "vector"])
    def test_bit_identical_with_metrics_enabled(self, strategy):
        if strategy == "vector":
            pytest.importorskip("numpy")
        base = self._channel_fingerprint(engine_strategy=strategy)
        profiled = self._channel_fingerprint(
            engine_strategy=strategy, metrics_enabled=True,
            metrics_interval=16,
        )
        assert profiled == base

    def test_profile_observes_the_run(self):
        from repro.telemetry import collecting

        with collecting() as frame:
            self._channel_fingerprint(metrics_enabled=True)
        merged = frame.metrics()
        assert merged is not None and merged["devices"] >= 1
        families = merged["metrics"]
        ff = families["engine_fast_forwards_total"]["series"][0]
        assert ff["labels"] == {"strategy": "active"}
        assert ff["value"] > 0
        samples = families["engine_profile_samples_total"]["series"][0]
        assert samples["value"] > 0

    def test_lockstep_oracle_passes_with_metrics_on(self):
        from repro.gpu.workloads import make_streaming_kernel
        from repro.validate import verify_equivalence

        config = small_config(metrics_enabled=True, metrics_interval=16)

        def stimulus(device):
            device.preload_region(0, 1 << 20)
            device.launch(
                make_streaming_kernel(device.config, "write", ops=6)
            )

        assert verify_equivalence(config, stimulus, max_cycles=20_000) is None


class TestSweepProgress:
    def _progress(self):
        stream = io.StringIO()  # not a TTY: plain-line mode
        return SweepProgress("demo", total=4, stream=stream), stream

    def test_plain_lines_only_on_done_change(self):
        progress, stream = self._progress()
        progress.on_event("launch", {"index": 0, "attempt": 1})
        progress.on_event("launch", {"index": 1, "attempt": 1})
        progress.progress(1, 4)
        progress.progress(1, 4)  # no change -> no extra line
        progress.progress(2, 4)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 3  # initial paint at 0, then 1, then 2
        assert "2/4" in lines[-1]

    def test_counts_cache_retry_and_failures(self):
        progress, stream = self._progress()
        progress.on_event("cache-hit", {"index": 0})
        progress.on_event("replay", {"index": 1})
        progress.on_event(
            "fail", {"index": 2, "attempt": 1, "kind": "timeout",
                     "retry": True},
        )
        progress.on_event(
            "fail", {"index": 2, "attempt": 2, "kind": "timeout",
                     "retry": False},
        )
        progress.progress(3, 4)
        assert progress.cache_hits == 1 and progress.replays == 1
        assert progress.retries == 1 and progress.failures == 1
        line = stream.getvalue().splitlines()[-1]
        assert "cache 2" in line and "retry 1" in line and "fail 1" in line

    def test_close_is_final(self):
        progress, stream = self._progress()
        progress.progress(4, 4)
        progress.close()
        progress.close()  # idempotent
        size = len(stream.getvalue())
        progress.on_event("launch", {"index": 9, "attempt": 1})
        assert len(stream.getvalue()) == size

    def _tty_progress(self):
        class TtyStream(io.StringIO):
            def isatty(self):
                return True

        stream = TtyStream()
        return SweepProgress("demo", total=4, stream=stream), stream

    def test_tty_newline_on_keyboard_interrupt(self):
        """A sweep killed mid-flight must not leave a partial \\r line."""
        progress, stream = self._tty_progress()
        with pytest.raises(KeyboardInterrupt):
            with progress:
                progress.progress(1, 4)  # paints "\r demo ..."
                raise KeyboardInterrupt
        assert stream.getvalue().endswith("\n")
        assert progress._closed

    def test_tty_newline_on_exception(self):
        progress, stream = self._tty_progress()
        with pytest.raises(RuntimeError):
            with progress:
                progress.progress(2, 4)
                raise RuntimeError("worker crashed")
        assert stream.getvalue().endswith("\n")

    def test_close_survives_torn_down_stream(self):
        """The final repaint raising must still mark the renderer closed
        and must not mask the teardown with a second exception."""
        progress, stream = self._tty_progress()
        progress.progress(1, 4)

        def broken_write(text):
            raise OSError("stream gone")

        stream.write = broken_write
        with pytest.raises(OSError):
            progress.close()  # repaint raises; newline failure swallowed
        assert progress._closed
        progress.close()  # idempotent even after the failure


class TestHistory:
    def _report(self, factor=1.0):
        return {
            "scales": {"num_sms": 4, "num_l2_slices": 2},
            "num_bits": 8,
            "workloads": {
                "tpc_channel": {
                    "naive_cycles_per_s": 1000.0 * factor,
                    "active_cycles_per_s": 5000.0 * factor,
                    "identical": True,
                },
            },
            "min_speedup": 5.0,
        }

    def test_record_shape_and_hash_stability(self):
        record = bench_record(self._report(), scale="small",
                              timestamp=123.0)
        assert record["ts"] == 123.0
        assert record["throughputs"]["tpc_channel"]["naive"] == 1000.0
        assert record["config_hash"] == bench_record(
            self._report(factor=2.0)
        )["config_hash"]  # throughputs don't affect the config hash
        assert record["host_key"]

    def test_append_load_roundtrip_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(bench_record(self._report(), timestamp=1.0), path)
        append_history(bench_record(self._report(), timestamp=2.0), path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')  # killed mid-write
        records = load_history(path)
        assert [r["ts"] for r in records] == [1.0, 2.0]

    def test_check_skips_without_comparable_baseline(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        check = check_history(self._report(), path=path)
        assert check.ok and check.skipped_reason
        # A record from a different host is not comparable either.
        alien = bench_record(self._report(), timestamp=1.0)
        alien["host_key"] = "somewhere-else"
        append_history(alien, path)
        assert check_history(self._report(), path=path).skipped_reason

    def test_detects_regression_beyond_threshold(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        for ts in (1.0, 2.0, 3.0):
            append_history(
                bench_record(self._report(), timestamp=ts), path
            )
        ok = check_history(self._report(factor=0.9), path=path)
        assert ok.ok and ok.compared == 2  # -10% is inside the threshold
        bad = check_history(self._report(factor=0.7), path=path)
        assert not bad.ok
        assert {(r.workload, r.strategy) for r in bad.regressions} == {
            ("tpc_channel", "naive"), ("tpc_channel", "active"),
        }
        assert bad.regressions[0].drop_frac == pytest.approx(0.3)
        assert "REGRESSION" in bad.regressions[0].line()

    def test_short_history_is_explicit(self, tmp_path):
        """Fewer prior records than the window still compares, but the
        degraded baseline is flagged instead of passing silently."""
        path = tmp_path / "hist.jsonl"
        append_history(bench_record(self._report(), timestamp=1.0), path)
        check = check_history(self._report(), path=path, window=8)
        assert check.compared == 2
        assert check.baseline_runs == 1
        assert check.short_history
        assert any("short history" in line for line in check.lines())
        # A full window is not short.
        for ts in range(2, 10):
            append_history(
                bench_record(self._report(), timestamp=float(ts)), path
            )
        full = check_history(self._report(), path=path, window=8)
        assert not full.short_history
        assert not any("short history" in line for line in full.lines())

    def test_zero_median_is_named_not_passed(self, tmp_path):
        """A nonpositive trailing median cannot form a floor: the series
        is excluded from the comparison and listed, never silently OK."""
        path = tmp_path / "hist.jsonl"
        for ts in (1.0, 2.0, 3.0):
            append_history(
                bench_record(self._report(factor=0.0), timestamp=ts), path
            )
        check = check_history(self._report(), path=path)
        assert check.compared == 0
        assert sorted(check.zero_median) == [
            "tpc_channel/active", "tpc_channel/naive",
        ]
        assert check.ok  # no regression claim, but...
        assert any("nonpositive" in line for line in check.lines())


class TestSupervisedAggregation:
    """Satellite: merged counts cover only fresh, healthy points."""

    def _jobs(self):
        healthy = [fig10_job(1, 501, metrics_enabled=True),
                   fig10_job(2, 502, metrics_enabled=True)]
        sick = SimJob(fn=RAISER, config=small_config(),
                      params={"tag": "metrics-agg"})
        return healthy + [sick]

    def test_outcome_metrics_and_fresh_with_failures(self):
        with scoped_registry() as captured:
            outcome = run_supervised(self._jobs(), workers=2, policy=FAST)
        assert len(outcome.failures) == 1
        assert outcome.fresh == [0, 1]  # the failed slot is not fresh

        def value(name, **labels):
            registry = MetricsRegistry().merge_manifest(outcome.metrics)
            return registry.value(name, **labels).value

        assert value("sweep_jobs_total", state="completed") == 2
        assert value("sweep_jobs_total", state="failed") == 1
        assert value("sweep_attempts_total") == 4  # 2 ok + 2 for raiser
        assert value("sweep_retries_total") == 1
        assert value(
            "sweep_attempt_failures_total", kind="exception"
        ) == 2
        # Without a caller-owned registry the sweep folds into the
        # process default (scoped here for isolation).
        assert captured.value(
            "sweep_jobs_total", state="completed"
        ).value == 2
        assert outcome.manifest()["fresh"] == 2

    def test_caller_owned_registry_is_not_folded_globally(self):
        registry = MetricsRegistry()
        with scoped_registry() as captured:
            outcome = run_supervised(
                [fig10_job(1, 511)], workers=1, policy=FAST,
                metrics=registry,
            )
        assert outcome.ok
        assert registry.value("sweep_jobs_total", state="completed").value == 1
        assert captured.value("sweep_jobs_total", state="completed") is None

    def test_merge_covers_only_fresh_points(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = self._jobs()
        with scoped_registry():
            first = run_supervised(jobs, workers=2, cache=cache,
                                   policy=FAST)
            second = run_supervised(jobs, workers=2, cache=cache,
                                    policy=FAST)

        # First run: both healthy jobs are fresh; engine profiles merge.
        merged = merge_metrics(first.results, fresh=first.fresh)
        assert merged["jobs"] == 2 and merged["devices"] >= 2
        registry = MetricsRegistry().merge_manifest(merged)
        ff = registry.value(
            "engine_fast_forwards_total", strategy="active"
        )
        assert ff is not None and ff.value > 0

        # Second run: healthy results come from the cache (the failed
        # job is never cached), so nothing is fresh — a fresh-filtered
        # merge must not double-count the first run's observations.
        assert second.counters["cache_hits"] == 2
        assert second.fresh == []
        assert merge_metrics(second.results, fresh=second.fresh) is None
        # The unfiltered merge still sees the cached sections: that is
        # exactly the double-count the fresh filter exists to prevent.
        assert merge_metrics(second.results)["jobs"] == 2

        telemetry = merge_telemetry(first.results, fresh=first.fresh)
        assert telemetry["jobs"] == 2
        assert merge_telemetry(second.results, fresh=second.fresh) is None

    def test_failure_slots_never_contribute(self):
        with scoped_registry():
            outcome = run_supervised(self._jobs(), workers=2, policy=FAST)
        assert isinstance(outcome.results[2], JobFailure)
        # Even an unfiltered merge skips the failure record.
        assert merge_metrics(outcome.results)["jobs"] == 2

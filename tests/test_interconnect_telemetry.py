"""Fabric observability tests: per-link utilization and queue meters.

The bugfix under test: fabric link throughput and TX/RX/delivery queue
occupancy previously never reached the telemetry registries, so
``linkchan`` manifests had no per-link utilization — the one series a
link-contention covert channel's telemetry exists to show.  These tests
pin the wiring: every :class:`LinkPipe` feeds a hub link series, the
fabric boundary queues carry meters, device manifests expose both, and
the full ``link_channel_point`` workload surfaces per-link utilization
in its result manifest.
"""


from repro.config import LinkConfig, small_config
from repro.gpu.coalescer import lane_addresses_uncoalesced
from repro.gpu.kernel import Kernel
from repro.gpu.warp import MemOp, READ
from repro.interconnect import MultiGpuSystem
from repro.runner import SimJob
from repro.runner.runner import execute


def _telemetry_cfg(**overrides):
    return small_config(timing_noise=0, telemetry_enabled=True, **overrides)


def _remote_read_program(context):
    args = context.args
    line = 64
    base = context.warp_id * args["ops"] * 32 * line
    for op in range(args["ops"]):
        addresses = lane_addresses_uncoalesced(
            base + op * 32 * line, line, 32
        )
        yield MemOp(READ, addresses, device=args["device"])


def _remote_kernel(device, ops=4, warps=2):
    return Kernel(
        _remote_read_program,
        num_blocks=1,
        warps_per_block=warps,
        args={"ops": ops, "device": device},
        name="remote-read",
    )


def _run_remote_reads(config, link=None):
    system = MultiGpuSystem(config, link or LinkConfig(num_devices=2))
    gpu0, gpu1 = system.devices
    gpu1.preload_region(0, 1 << 20)
    gpu0.launch(_remote_kernel(device=1))
    system.run()
    return system


def _device_manifest(system, device_index):
    device = system.devices[device_index]
    device.telemetry.finalize(system.cycle)
    return device.telemetry.manifest(device.stats)


class TestFabricTelemetryWiring:
    def test_link_series_lands_on_sender_hub(self):
        system = _run_remote_reads(_telemetry_cfg())
        man0 = _device_manifest(system, 0)
        # Device 0 owns link0-1: requests crossed it, so flits > 0.
        link = man0["links"]["link0-1"]
        assert link["flits"] > 0
        assert link["peak_utilization"] > 0.0
        # The reply path crossed link1-0, owned by device 1.
        man1 = _device_manifest(system, 1)
        assert man1["links"]["link1-0"]["flits"] > 0

    def test_fabric_queues_carry_meters(self):
        system = _run_remote_reads(_telemetry_cfg())
        man0 = _device_manifest(system, 0)
        queues = man0["queues"]
        # Sender side: injection egress and its TX/RX pair saw traffic.
        assert queues["d0.fab.inject"]["peak_flits"] > 0
        assert "link0-1.tx" in queues or "link0-1.rx" in queues
        man1 = _device_manifest(system, 1)
        assert queues is not None
        assert man1["queues"]["d1.fab.deliver"]["peak_flits"] > 0

    def test_telemetry_disabled_is_a_noop(self):
        system = _run_remote_reads(small_config(timing_noise=0))
        for device in system.devices:
            assert device.telemetry is None
        for pipe in system.link_pipes:
            assert pipe._tl_link is None
        for queue in system._tx.values():
            assert queue.meter is None

    def test_switch_topology_registers_cleanly(self):
        system = MultiGpuSystem(
            _telemetry_cfg(),
            LinkConfig(num_devices=3, topology="switch"),
        )
        # Hub-adjacent links attach to the device endpoint's hub.
        attached = [p for p in system.link_pipes if p._tl_link is not None]
        assert len(attached) == len(system.link_pipes)


class TestLinkchanManifest:
    def test_link_channel_point_reports_per_link_utilization(self):
        """Pinned: linkchan results must include per-link utilization."""
        job = SimJob(
            "repro.runner.workloads.link_channel_point",
            _telemetry_cfg(),
            {
                "iteration_count": 1,
                "bits": 4,
                "seed": 3021,
                "num_devices": 2,
            },
        )
        result = execute(job)
        per_device = result["telemetry"]["per_device"]
        # The workload builds the channel's systems internally; every
        # collected device reports, two per 2-device system.
        assert len(per_device) >= 2
        links = {}
        for entry in per_device:
            links.update(entry.get("links", {}))
        assert links, "no per-link series in linkchan telemetry manifest"
        assert any(series["flits"] > 0 for series in links.values())
        for series in links.values():
            assert set(series) >= {"flits", "epochs", "peak_utilization"}

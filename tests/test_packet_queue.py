"""Unit tests for PacketQueue flit accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.buffer import PacketQueue
from repro.noc.packet import Packet, READ


def make_packet(flits=1, uid_kind=READ):
    return Packet(kind=uid_kind, address=0, flits=flits, src_sm=0, slice_id=0)


class TestBasics:
    def test_push_pop_fifo_order(self):
        queue = PacketQueue("q", 16)
        first = make_packet(2)
        second = make_packet(3)
        assert queue.push(first)
        assert queue.push(second)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_capacity_enforced_in_flits(self):
        queue = PacketQueue("q", 4)
        assert queue.push(make_packet(3))
        assert not queue.push(make_packet(2))  # 3 + 2 > 4
        assert queue.push(make_packet(1))

    def test_head_peeks_without_removal(self):
        queue = PacketQueue("q", 8)
        packet = make_packet()
        queue.push(packet)
        assert queue.head() is packet
        assert len(queue) == 1

    def test_empty_head_is_none(self):
        assert PacketQueue("q", 4).head() is None

    def test_bool_and_len(self):
        queue = PacketQueue("q", 8)
        assert not queue
        queue.push(make_packet())
        assert queue
        assert len(queue) == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            PacketQueue("q", 0)


class TestReservations:
    def test_reserve_blocks_other_traffic(self):
        queue = PacketQueue("q", 4)
        queue.reserve(3)
        assert not queue.can_reserve(2)
        assert queue.can_reserve(1)

    def test_commit_consumes_reservation(self):
        queue = PacketQueue("q", 4)
        packet = make_packet(3)
        queue.reserve(3)
        queue.commit(packet)
        assert queue.used_flits == 3
        assert queue.free_flits == 1

    def test_commit_without_reservation_raises(self):
        queue = PacketQueue("q", 4)
        with pytest.raises(RuntimeError):
            queue.commit(make_packet(2))

    def test_over_reserve_raises(self):
        queue = PacketQueue("q", 4)
        with pytest.raises(OverflowError):
            queue.reserve(5)

    def test_pop_releases_space(self):
        queue = PacketQueue("q", 4)
        queue.push(make_packet(4))
        assert queue.free_flits == 0
        queue.pop()
        assert queue.free_flits == 4

    def test_clear_resets_everything(self):
        queue = PacketQueue("q", 8)
        queue.push(make_packet(2))
        queue.reserve(3)
        queue.clear()
        assert queue.free_flits == 8
        assert not queue


class TestInvariants:
    @given(st.lists(st.integers(min_value=1, max_value=5), max_size=30))
    def test_occupancy_never_exceeds_capacity(self, sizes):
        queue = PacketQueue("q", 10)
        accepted = []
        for flits in sizes:
            if queue.push(make_packet(flits)):
                accepted.append(flits)
            assert 0 <= queue.used_flits <= 10
        assert queue.used_flits == sum(accepted)

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=1, max_value=4)),
            max_size=40,
        )
    )
    def test_push_pop_sequence_conserves_flits(self, operations):
        queue = PacketQueue("q", 12)
        expected = []
        for is_push, flits in operations:
            if is_push:
                if queue.push(make_packet(flits)):
                    expected.append(flits)
            elif expected:
                queue.pop()
                expected.pop(0)
            assert queue.used_flits == sum(expected)
            assert len(queue) == len(expected)

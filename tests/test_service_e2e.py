"""End-to-end sweep-service tests: chaos resilience and golden agreement.

Two scenarios drive the full supervised path with real fig10 simulation
points:

* **shard killed mid-flight** — one job in the request hard-exits its
  worker process on attempt 1 (``FAULT_PLANS["transient-exit"]``); the
  supervision net retries it and the request completes with journal and
  artifact store agreeing on every key.
* **acceptance: surface answers from the store alone** — a second
  service pass over an already-swept grid answers every point from the
  artifact store (``cache_hit`` equals the query count, zero
  dispatches), and the capacity surface built from those answers matches
  the golden first-pass measurements within the Welch drift margin.
"""

import pytest

from repro.config import SweepSupervision
from repro.metrics.registry import MetricsRegistry
from repro.runner import (
    CapacitySurface,
    JobFailure,
    ResultCache,
    SimJob,
    SweepJournal,
    serve_requests,
)
from repro.runner.chaos import (
    CHAOS_FN,
    CHAOS_STATE_ENV,
    FAULT_PLANS,
    attempts_recorded,
)
from repro.testing.stats import welch_margin

FIG10_FN = "repro.runner.workloads.fig10_point"


def _fig10_job(cfg, iterations, seed=1021):
    return SimJob(
        FIG10_FN,
        cfg,
        {
            "kind": "tpc",
            "iteration_count": iterations,
            "bits_per_channel": 4,
            "seed": seed,
        },
    )


@pytest.fixture
def fig10_cfg(quiet_cfg):
    return quiet_cfg


@pytest.mark.slow
def test_shard_killed_mid_flight_request_still_completes(
    fig10_cfg, tmp_path, monkeypatch
):
    state_dir = tmp_path / "chaos-state"
    state_dir.mkdir()
    monkeypatch.setenv(CHAOS_STATE_ENV, str(state_dir))
    jobs = [
        _fig10_job(fig10_cfg, 1),
        _fig10_job(fig10_cfg, 2),
        # Attempt 1 hard-exits the worker process (simulating a shard
        # death), attempt 2 succeeds.
        SimJob(
            CHAOS_FN,
            fig10_cfg,
            {
                "token": "shard-kill",
                "plan": FAULT_PLANS["transient-exit"],
                "value": 7,
            },
        ),
    ]
    cache = ResultCache(tmp_path / "cache", metrics=MetricsRegistry())
    journal = SweepJournal(tmp_path / "journal.jsonl")
    policy = SweepSupervision(
        timeout_s=120.0, max_attempts=3, backoff_base_s=0.01
    )
    (results,), manifest = serve_requests(
        [jobs],
        cache=cache,
        policy=policy,
        journal=journal,
        execution="supervised",
        shards=2,
        metrics=MetricsRegistry(),
    )

    # Nothing failed: the killed shard's job was retried to success.
    assert not any(isinstance(r, JobFailure) for r in results)
    assert attempts_recorded(state_dir, "shard-kill") == 2
    assert results[2]["value"] == 7
    assert results[0]["iterations"] == 1
    assert results[1]["iterations"] == 2
    assert manifest["dispatched"] == 3
    assert manifest["completed"] == 3
    assert manifest["failed"] == 0

    # Journal and artifact store agree on every key.
    completed = SweepJournal(tmp_path / "journal.jsonl").completed()
    assert len(completed) == 3
    for job in jobs:
        key = cache.key(job.fn, job.resolved_config(), job.params, job.seed)
        assert completed[key] == cache.get(key)


@pytest.mark.slow
def test_surface_answers_match_golden_without_simulation(
    fig10_cfg, tmp_path
):
    """The ISSUE acceptance check, as a test.

    Phase A sweeps a small fig10 grid through the supervised service and
    records the measured bandwidths as "golden".  Phase B replays the
    identical grid on a *fresh* service sharing only the artifact store:
    every answer must come from the store (hit count == query count,
    zero dispatches == zero simulation), and surface predictions at the
    swept points must agree with golden within the Welch drift margin.
    """
    grid = [1, 2]
    seeds = [1021, 1022]
    jobs = [
        _fig10_job(fig10_cfg, n, seed=seed) for n in grid for seed in seeds
    ]
    cache_root = tmp_path / "cache"

    # Phase A: populate the store, fold golden samples per iteration.
    (first,), manifest_a = serve_requests(
        [jobs],
        cache=ResultCache(cache_root, metrics=MetricsRegistry()),
        policy=SweepSupervision(timeout_s=120.0, max_attempts=2),
        execution="supervised",
        shards=2,
        metrics=MetricsRegistry(),
    )
    assert not any(isinstance(r, JobFailure) for r in first)
    assert manifest_a["dispatched"] == len(jobs)
    golden = {n: [] for n in grid}
    for row in first:
        golden[row["iterations"]].append(row["bandwidth_kbps"])

    # Phase B: fresh service + registry, same store.
    registry = MetricsRegistry()
    cache = ResultCache(cache_root, metrics=registry)
    (second,), manifest_b = serve_requests(
        [jobs],
        cache=cache,
        execution="supervised",
        shards=2,
        metrics=registry,
    )
    assert manifest_b["cache_hit"] == len(jobs)
    assert manifest_b["dispatched"] == 0  # zero simulation spawned
    assert cache.hits == len(jobs)

    surface = CapacitySurface.from_rows(second, metrics=registry)
    for n in grid:
        pred = surface.predict(iterations=n)
        assert pred.source == "exact"
        fresh = [
            row["bandwidth_kbps"] for row in second if row["iterations"] == n
        ]
        golden_mean = sum(golden[n]) / len(golden[n])
        allowance = (
            welch_margin(golden[n], fresh)
            + 0.02 * abs(golden_mean)
            + 1e-9
        )
        assert abs(pred.bandwidth_kbps - golden_mean) <= allowance
    # Cached replay is bit-identical, so the agreement is in fact exact.
    assert second == first

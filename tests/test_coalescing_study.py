"""Tests for the coalescing study (Section 5, Figure 13)."""

import pytest

from repro.config import small_config
from repro.channel.coalescing import (
    MATRIX_CELLS,
    cell_label,
    run_coalescing_study,
)


@pytest.fixture(scope="module")
def study():
    return run_coalescing_study(small_config(), payload_bits=40)


class TestFigure13:
    def test_all_four_cells_measured(self, study):
        assert set(study.error_rates) == set(MATRIX_CELLS)

    def test_coalesced_sender_breaks_channel(self, study):
        """With one request per warp the contention probability collapses
        and the channel cannot be established (paper: error > 50%)."""
        for receiver_coalesced in (True, False):
            assert study.error_rates[(True, receiver_coalesced)] > 0.25

    def test_fully_uncoalesced_near_error_free(self, study):
        assert study.error_rates[(False, False)] <= 0.05

    def test_uncoalesced_sender_beats_coalesced_sender(self, study):
        uncoalesced_sender = min(
            study.error_rates[(False, True)],
            study.error_rates[(False, False)],
        )
        coalesced_sender = min(
            study.error_rates[(True, True)],
            study.error_rates[(True, False)],
        )
        assert uncoalesced_sender < coalesced_sender

    def test_uncoalesced_receiver_helps(self, study):
        assert (
            study.error_rates[(False, False)]
            <= study.error_rates[(False, True)]
        )

    def test_rows_render_labels(self, study):
        rows = study.rows()
        assert len(rows) == 4
        assert rows[0][0] == cell_label(True, True)
        assert all(0.0 <= rate <= 1.0 for _, rate in rows)

"""Sweep-service scheduler tests: dedup, cache fast-path, failure modes.

These cover the scheduler contract directly (single requests, explicit
state assertions); randomized interleavings live in
``test_service_properties.py`` and the full supervised/chaos path in
``test_service_e2e.py``.  The workload is
:func:`repro.runner.workloads.service_probe_point`, whose side-effect
ledger counts actual executions per token — the ground truth "exactly
once" is measured against.
"""

import asyncio

import pytest

from repro.config import ServiceConfig, SweepSupervision
from repro.metrics.registry import MetricsRegistry
from repro.runner import (
    JobFailure,
    ResultCache,
    ServiceError,
    SimJob,
    SweepJournal,
    SweepService,
    serve_requests,
)

PROBE_FN = "repro.runner.workloads.service_probe_point"
CHAOS_FN = "repro.runner.chaos.chaos_point"


def _probe_job(cfg, token, ledger, value=1.0):
    return SimJob(
        PROBE_FN,
        cfg,
        {"token": token, "value": value, "ledger_dir": str(ledger)},
    )


def _ledger_count(ledger, token):
    path = ledger / f"{token}.log"
    if not path.exists():
        return 0
    return len(path.read_text().splitlines())


@pytest.fixture
def probe_cfg(quiet_cfg):
    return quiet_cfg


class TestScheduler:
    def test_results_in_job_order(self, probe_cfg, tmp_path):
        jobs = [
            _probe_job(probe_cfg, f"t{i}", tmp_path, value=float(i))
            for i in range(4)
        ]
        (results,), manifest = serve_requests(
            [jobs],
            cache=ResultCache(tmp_path / "cache", metrics=MetricsRegistry()),
            execution="inline",
            metrics=MetricsRegistry(),
        )
        assert [r["value"] for r in results] == [0.0, 1.0, 2.0, 3.0]
        assert manifest["dispatched"] == 4
        assert manifest["requests"] == 1

    def test_duplicate_jobs_in_one_request_dedup(self, probe_cfg, tmp_path):
        job = _probe_job(probe_cfg, "dup", tmp_path)
        (results,), manifest = serve_requests(
            [[job, job, job]],
            cache=ResultCache(tmp_path / "cache", metrics=MetricsRegistry()),
            execution="inline",
            metrics=MetricsRegistry(),
        )
        assert _ledger_count(tmp_path, "dup") == 1
        assert results[0] == results[1] == results[2]
        assert manifest["dispatched"] == 1
        assert manifest["attached"] == 2

    def test_store_hit_skips_execution(self, probe_cfg, tmp_path):
        jobs = [_probe_job(probe_cfg, f"t{i}", tmp_path) for i in range(3)]
        cache_root = tmp_path / "cache"

        def _serve():
            return serve_requests(
                [jobs],
                cache=ResultCache(cache_root, metrics=MetricsRegistry()),
                execution="inline",
                metrics=MetricsRegistry(),
            )

        (first,), manifest_a = _serve()
        (second,), manifest_b = _serve()
        assert manifest_a["dispatched"] == 3
        assert manifest_b["dispatched"] == 0
        assert manifest_b["cache_hit"] == 3
        assert second == first
        # The artifact store — not a re-run — answered the second batch.
        for token in ("t0", "t1", "t2"):
            assert _ledger_count(tmp_path, token) == 1

    def test_no_cache_still_dedups_inflight(self, probe_cfg, tmp_path):
        job = _probe_job(probe_cfg, "nc", tmp_path)
        (a, b), manifest = serve_requests(
            [[job], [job]],
            cache=None,
            execution="inline",
            metrics=MetricsRegistry(),
            stagger_s=0.01,
        )
        assert manifest["dispatched"] + manifest["attached"] == 2
        assert a[0] == b[0]

    def test_journal_agrees_with_cache(self, probe_cfg, tmp_path):
        cache = ResultCache(tmp_path / "cache", metrics=MetricsRegistry())
        journal = SweepJournal(tmp_path / "journal.jsonl")
        jobs = [_probe_job(probe_cfg, f"t{i}", tmp_path) for i in range(3)]
        serve_requests(
            [jobs],
            cache=cache,
            journal=journal,
            execution="inline",
            metrics=MetricsRegistry(),
        )
        completed = SweepJournal(tmp_path / "journal.jsonl").completed()
        assert len(completed) == 3
        for job in jobs:
            key = cache.key(job.fn, job.resolved_config(), job.params, job.seed)
            assert key in completed
            assert completed[key] == cache.get(key)

    def test_manifest_reports_store_counters(self, probe_cfg, tmp_path):
        cache = ResultCache(
            tmp_path / "cache", max_entries=1, metrics=MetricsRegistry()
        )
        jobs = [_probe_job(probe_cfg, f"t{i}", tmp_path) for i in range(3)]
        _, manifest = serve_requests(
            [jobs], cache=cache, execution="inline",
            metrics=MetricsRegistry(), shards=1,
        )
        assert manifest["cache"]["evictions"] >= 2
        assert manifest["cache"]["max_entries"] == 1

    def test_stats_mirror_registry(self, probe_cfg, tmp_path):
        registry = MetricsRegistry()
        jobs = [_probe_job(probe_cfg, f"t{i}", tmp_path) for i in range(2)]
        _, manifest = serve_requests(
            [jobs, jobs],
            cache=ResultCache(tmp_path / "cache", metrics=MetricsRegistry()),
            execution="inline",
            metrics=registry,
            stagger_s=0.01,
        )
        metrics = registry.to_manifest()["metrics"]
        series = {
            s["labels"]["state"]: s["value"]
            for s in metrics["service_jobs_total"]["series"]
        }
        for state in ("dispatched", "attached", "cache_hit", "completed", "failed"):
            assert series[state] == manifest[state]
        requests = metrics["service_requests_total"]["series"][0]["value"]
        assert requests == manifest["requests"] == 2
        inflight = metrics["service_inflight_jobs"]["series"][0]["value"]
        assert inflight == 0  # everything settled


class TestFailureModes:
    def test_inline_exception_propagates_to_subscribers(
        self, probe_cfg, tmp_path, monkeypatch
    ):
        # Without a chaos state dir every attempt is attempt 1: plan
        # "raise" raises deterministically, in-process.
        monkeypatch.delenv("REPRO_CHAOS_STATE", raising=False)
        bad = SimJob(CHAOS_FN, probe_cfg, {"token": "boom", "plan": "raise"})

        async def _main():
            async with SweepService(
                None, execution="inline", shards=1,
                metrics=MetricsRegistry(),
            ) as svc:
                with pytest.raises(RuntimeError):
                    await svc.submit([bad])
                # The service survives a failed key and keeps serving.
                ok = await svc.submit(
                    [_probe_job(probe_cfg, "after", tmp_path)]
                )
                return ok, svc.stats["failed"]

        ok, failed = asyncio.run(_main())
        assert ok[0]["token"] == "after"
        assert failed == 1

    def test_supervised_failure_is_graceful(self, probe_cfg, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_STATE", raising=False)
        bad = SimJob(CHAOS_FN, probe_cfg, {"token": "boom", "plan": "raise"})
        good = _probe_job(probe_cfg, "good", tmp_path)
        journal = SweepJournal(tmp_path / "journal.jsonl")
        policy = SweepSupervision(
            timeout_s=60.0, max_attempts=2, backoff_base_s=0.01
        )
        (results,), manifest = serve_requests(
            [[bad, good]],
            cache=ResultCache(tmp_path / "cache", metrics=MetricsRegistry()),
            policy=policy,
            journal=journal,
            execution="supervised",
            shards=2,
            metrics=MetricsRegistry(),
        )
        assert isinstance(results[0], JobFailure)
        assert results[0].kind == "exception"
        assert results[0].attempts == 2
        assert results[1]["token"] == "good"
        assert manifest["failed"] == 1
        assert manifest["completed"] == 1
        state = SweepJournal(tmp_path / "journal.jsonl").load()
        assert len(state.results) == 1
        assert len(state.failures) == 1


class TestLifecycle:
    def test_submit_after_close_raises(self, probe_cfg, tmp_path):
        async def _main():
            svc = SweepService(
                None, execution="inline", metrics=MetricsRegistry()
            )
            await svc.start()
            await svc.close()
            with pytest.raises(ServiceError):
                await svc.submit([_probe_job(probe_cfg, "late", tmp_path)])

        asyncio.run(_main())

    def test_service_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(shards=0)
        with pytest.raises(ValueError):
            ServiceConfig(execution="teleport")
        assert ServiceConfig().replace(shards=7).shards == 7

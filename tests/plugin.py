"""Pytest plugin for paper-artifact acceptance tests.

Loaded via the repo-root ``conftest.py`` (``pytest_plugins``).  A test
marked ``@paper_artifact("fig10a", scale="small")`` receives the
evaluated seed sweep through the ``artifact_run`` fixture:

    @paper_artifact("fig10a")
    def test_fig10a(artifact_run):
        assert artifact_run.passed, artifact_run.report()

Sweeps run through :mod:`repro.runner`'s :class:`ResultCache`, so a
session that already executed ``python -m repro golden check`` (or a
previous pytest run with a warm ``.repro_cache``) replays results
instead of re-simulating.  Runs are additionally memoised in-process
per ``(artifact, scale)`` so several tests can assert on different
expectations of the same sweep for one simulation's cost.

Select just these tests with ``pytest -q -m paper_artifact``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

MARKER = "paper_artifact"

#: In-process memo of evaluated sweeps, keyed by (artifact_id, scale).
_RUNS: Dict[Tuple[str, str], object] = {}


def paper_artifact(artifact_id: str, scale: str = "small"):
    """Marker factory: bind a test to one artifact's golden sweep."""
    return pytest.mark.paper_artifact(artifact_id, scale=scale)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        f"{MARKER}(artifact_id, scale='small'): statistical acceptance "
        "test against one paper artifact's golden metric sweep",
    )


@pytest.fixture
def artifact_run(request):
    """The :class:`~repro.testing.ArtifactRun` for the test's marker."""
    marker = request.node.get_closest_marker(MARKER)
    if marker is None or not marker.args:
        raise pytest.UsageError(
            "artifact_run requires @paper_artifact('<artifact-id>', "
            "scale=...) on the test"
        )
    artifact_id = marker.args[0]
    scale = marker.kwargs.get("scale", "small")
    key = (artifact_id, scale)
    if key not in _RUNS:
        from repro.runner import ResultCache
        from repro.testing import check_artifact

        _RUNS[key] = check_artifact(
            artifact_id, scale, cache=ResultCache(), workers=1,
        )
    return _RUNS[key]

"""Tests for the golden store, the artifact harness, and the reducer.

GoldenStore tests use fabricated samples in ``tmp_path`` so no
simulation runs; the harness and reducer tests run real (but heavily
shrunken) fig7_8 sweeps through a throwaway ``ResultCache``.
"""

import json

import pytest

from repro.config import small_config
from repro.runner import ResultCache
from repro.testing import (
    GoldenStore,
    MissingGoldenError,
    StaleGoldenError,
    check_artifact,
    config_hash,
    get_artifact,
    reduce_failure,
    run_artifact,
    scale_config,
)
from repro.testing.golden import GOLDEN_DIR_ENV


@pytest.fixture
def store(tmp_path):
    return GoldenStore(tmp_path / "golden")


@pytest.fixture
def cfg():
    return small_config()


SAMPLES = {
    "ratio": [1.95, 2.0, 2.05],
    "series": [[1.0, 2.0], [1.1, 2.1], [0.9, 1.9]],
}


class TestGoldenStore:
    def test_record_then_load_round_trips(self, store, cfg):
        path = store.record("fig2", "small", cfg, [11, 12, 13], SAMPLES)
        assert path == store.path("fig2", "small")
        assert store.exists("fig2", "small")
        entry = store.load("fig2", "small")
        assert entry["artifact"] == "fig2"
        assert entry["config_hash"] == config_hash(cfg)
        assert entry["seeds"] == [11, 12, 13]
        assert entry["metrics"]["ratio"]["samples"] == SAMPLES["ratio"]
        assert entry["metrics"]["series"]["series"] is True

    def test_snapshot_is_valid_committed_style_json(self, store, cfg):
        path = store.record("fig2", "small", cfg, [11], SAMPLES)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["scale"] == "small"

    def test_missing_golden_raises(self, store, cfg):
        with pytest.raises(MissingGoldenError, match="golden record"):
            store.check("fig2", "small", cfg, SAMPLES)

    def test_identical_samples_pass(self, store, cfg):
        store.record("fig2", "small", cfg, [11, 12, 13], SAMPLES)
        results = store.check("fig2", "small", cfg, SAMPLES)
        assert results and all(r.ok for r in results)

    def test_large_drift_flagged_with_metric_named(self, store, cfg):
        store.record("fig2", "small", cfg, [11, 12, 13], SAMPLES)
        shifted = dict(SAMPLES, ratio=[3.0, 3.05, 3.1])
        results = store.check("fig2", "small", cfg, shifted)
        bad = [r for r in results if not r.ok]
        assert [r.metric for r in bad] == ["ratio"]
        assert "DRIFT" in bad[0].line()

    def test_small_drift_within_slack_passes(self, store, cfg):
        store.record("fig2", "small", cfg, [11, 12, 13], SAMPLES)
        nudged = dict(SAMPLES, ratio=[v * 1.01 for v in SAMPLES["ratio"]])
        assert all(r.ok for r in store.check("fig2", "small", cfg, nudged))

    def test_series_drift_detected_pointwise(self, store, cfg):
        store.record("fig2", "small", cfg, [11, 12, 13], SAMPLES)
        bent = dict(SAMPLES, series=[[1.0, 9.0], [1.1, 9.1], [0.9, 8.9]])
        results = {r.metric: r for r in store.check("fig2", "small", cfg, bent)}
        assert not results["series"].ok
        assert "series[1]" in results["series"].detail
        assert results["ratio"].ok

    def test_series_length_change_is_drift(self, store, cfg):
        store.record("fig2", "small", cfg, [11], SAMPLES)
        short = dict(SAMPLES, series=[[1.0], [1.1], [0.9]])
        results = {r.metric: r for r in store.check("fig2", "small", cfg, short)}
        assert "length" in results["series"].detail

    def test_added_and_vanished_metrics_flagged(self, store, cfg):
        store.record("fig2", "small", cfg, [11], SAMPLES)
        mutated = {"ratio": SAMPLES["ratio"], "brand_new": [1.0]}
        results = {r.metric: r for r in store.check("fig2", "small", cfg, mutated)}
        assert not results["brand_new"].ok
        assert not results["series"].ok
        assert "vanished" in results["series"].detail

    def test_config_change_raises_stale(self, store, cfg):
        store.record("fig2", "small", cfg, [11], SAMPLES)
        perturbed = cfg.replace(arbitration="srr")
        with pytest.raises(StaleGoldenError, match="golden update"):
            store.check("fig2", "small", perturbed, SAMPLES)

    def test_config_hash_ignores_seed(self, cfg):
        assert config_hash(cfg) == config_hash(cfg.replace(seed=777))
        assert config_hash(cfg) != config_hash(cfg.replace(arbitration="srr"))

    def test_env_var_overrides_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv(GOLDEN_DIR_ENV, str(tmp_path / "elsewhere"))
        assert GoldenStore().root == tmp_path / "elsewhere"


# Shrunken fig7_8 sweep: one seed, two fraction points, one op — runs in
# well under a second while exercising the full jobs->samples path.
TINY = {"fractions": (0.0, 1.0), "ops": 1}


class TestHarness:
    def test_scale_config_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown golden scale"):
            scale_config("galactic")

    def test_run_artifact_rejects_unknown_scale_without_params(self):
        with pytest.raises(ValueError, match="does not define scale"):
            run_artifact(get_artifact("fig5b"), "small")

    def test_run_artifact_folds_seed_sweep(self, tmp_path):
        samples = run_artifact(
            get_artifact("fig7_8"), "small", seeds=[11, 12], params=TINY,
            cache=ResultCache(tmp_path / "cache"),
        )
        assert len(samples["sharing_slope"]) == 2
        assert samples["sharing_slope"][0] == pytest.approx(1.0, abs=0.1)

    def test_check_artifact_without_golden_reports_expectations(self, tmp_path):
        run = check_artifact(
            "fig7_8", "small", seeds=[11], params=TINY,
            cache=ResultCache(tmp_path / "cache"), golden=False,
        )
        assert run.expectations_passed, run.report()
        assert run.drift_results is None
        assert run.passed
        assert "GOLDEN" not in "\n".join(
            line for line in run.report().splitlines() if "PASS" in line
        )

    def test_check_artifact_perturbation_fails_expectations(self, tmp_path):
        run = check_artifact(
            "fig7_8", "small", seeds=[11], params=TINY,
            overrides={"arbitration": "srr"},
            cache=ResultCache(tmp_path / "cache"), golden=False,
        )
        assert not run.passed
        failed = {r.expectation_id for r in run.failed_expectations()}
        assert "fig7_8.sharing_slope" in failed
        assert "overrides={'arbitration': 'srr'}" in run.report()

    def test_to_dict_is_json_serialisable(self, tmp_path):
        run = check_artifact(
            "fig7_8", "small", seeds=[11], params=TINY,
            cache=ResultCache(tmp_path / "cache"), golden=False,
        )
        payload = json.loads(json.dumps(run.to_dict()))
        assert payload["artifact"] == "fig7_8"
        assert payload["passed"] is True


class TestReducer:
    def test_reducer_shrinks_perturbed_fig7_8(self, tmp_path):
        reduction = reduce_failure(
            "fig7_8", "fig7_8.sharing_slope", "small",
            seeds=[11],
            params={"fractions": (0.0, 0.5, 1.0), "ops": 2},
            overrides={"arbitration": "srr"},
            cache=ResultCache(tmp_path / "cache"),
        )
        # The perturbation survives every shrink...
        assert reduction.overrides["arbitration"] == "srr"
        # ...while the machine shrinks to the one-GPC ladder rung...
        assert reduction.overrides["num_gpcs"] == 1
        assert reduction.config_label == "one-gpc"
        assert "4 SMs" in reduction.config_summary()
        # ...and the workload shrinks to its fixpoint.
        assert reduction.params == {"fractions": (0.0, 1.0), "ops": 1}
        assert reduction.seeds == [11]
        command = reduction.command()
        assert command.startswith("python -m repro --scale small golden")
        assert "'fractions=(0.0,1.0)'" in command  # shell-safe quoting
        assert "arbitration=srr" in command
        assert reduction.report().count("\n") >= 3

    def test_reducer_refuses_passing_setup(self, tmp_path):
        with pytest.raises(ValueError, match="does not fail"):
            reduce_failure(
                "fig7_8", "fig7_8.sharing_slope", "small",
                seeds=[11], params=TINY,
                cache=ResultCache(tmp_path / "cache"),
            )

"""Unit tests for the stats registry."""

import pytest

from repro.sim.stats import Histogram, Sampler, StatsRegistry


class TestSampler:
    def test_accumulates_basic_statistics(self):
        sampler = Sampler()
        for value in (2.0, 4.0, 6.0):
            sampler.add(value)
        assert sampler.count == 3
        assert sampler.mean == 4.0
        assert sampler.minimum == 2.0
        assert sampler.maximum == 6.0

    def test_empty_mean_is_zero(self):
        assert Sampler().mean == 0.0

    def test_keep_values_records_history(self):
        sampler = Sampler(keep_values=True)
        sampler.add(1.0)
        sampler.add(2.0)
        assert sampler.values == [1.0, 2.0]

    def test_values_not_kept_by_default(self):
        sampler = Sampler()
        sampler.add(1.0)
        assert sampler.values is None

    def test_reset(self):
        sampler = Sampler(keep_values=True)
        sampler.add(5.0)
        sampler.reset()
        assert sampler.count == 0
        assert sampler.values == []

    def test_merge_folds_aggregates(self):
        a, b = Sampler(), Sampler()
        for value in (1.0, 3.0):
            a.add(value)
        for value in (5.0, 7.0):
            b.add(value)
        a.merge(b)
        assert a.count == 4
        assert a.mean == 4.0
        assert a.minimum == 1.0
        assert a.maximum == 7.0

    def test_merge_empty_is_identity(self):
        a = Sampler()
        a.add(2.0)
        a.merge(Sampler())
        assert a.count == 1 and a.mean == 2.0

    def test_merge_concatenates_kept_values(self):
        a, b = Sampler(keep_values=True), Sampler(keep_values=True)
        a.add(1.0)
        b.add(2.0)
        a.merge(b)
        assert a.values == [1.0, 2.0]

    def test_summary_roundtrip(self):
        a = Sampler()
        for value in (10.0, 30.0):
            a.add(value)
        rebuilt = Sampler.from_summary(a.summary())
        assert rebuilt.count == 2
        assert rebuilt.mean == 20.0
        assert rebuilt.minimum == 10.0
        assert rebuilt.maximum == 30.0

    def test_empty_summary_has_null_extrema(self):
        summary = Sampler().summary()
        assert summary == {"count": 0, "mean": 0.0, "min": None,
                           "max": None, "total": 0.0}
        assert Sampler.from_summary(summary).count == 0

    def test_aggregate_roundtrip_never_emits_infinity(self):
        # Regression: an aggregate-only sampler built from a summary with
        # null extrema carries count > 0 with ±inf bounds; serialising it
        # again used to leak the non-RFC "Infinity" token into JSON.
        import json

        first = Sampler.from_summary(
            {"count": 3, "mean": 2.0, "min": None, "max": None,
             "total": 6.0}
        )
        summary = first.summary()
        assert summary["min"] is None and summary["max"] is None
        text = json.dumps(summary)
        assert "Infinity" not in text
        rebuilt = Sampler.from_summary(json.loads(text))
        assert rebuilt.count == 3 and rebuilt.total == 6.0
        # Bounds stay absorbing for future merges.
        rebuilt.add(5.0)
        assert rebuilt.minimum == 5.0 and rebuilt.maximum == 5.0


class TestHistogram:
    def test_percentiles_on_uniform_values(self):
        hist = Histogram(bucket_width=10, num_buckets=20)
        for value in range(100):  # one per unit, buckets of 10
            hist.add(value)
        assert hist.p50 == 50.0  # upper edge of the bucket holding rank 50
        assert hist.p95 == 100.0
        assert hist.count == 100
        assert hist.mean == pytest.approx(49.5)

    def test_percentile_of_single_value(self):
        hist = Histogram(bucket_width=16, num_buckets=8)
        hist.add(33)
        assert hist.p50 == 48.0  # bucket [32, 48)
        assert hist.p99 == 48.0

    def test_overflow_reports_observed_max(self):
        hist = Histogram(bucket_width=10, num_buckets=4)
        hist.add(5)
        hist.add(9999)
        assert hist.overflow == 1
        assert hist.p99 == 9999.0

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(99) == 0.0

    def test_merge_requires_matching_geometry(self):
        with pytest.raises(ValueError):
            Histogram(16, 8).merge(Histogram(32, 8))

    def test_merge_combines_counts(self):
        a, b = Histogram(10, 10), Histogram(10, 10)
        a.add(5)
        b.add(95)
        a.merge(b)
        assert a.count == 2
        assert a.minimum == 5 and a.maximum == 95
        assert a.p99 == 100.0

    def test_to_dict_is_json_safe(self):
        import json

        hist = Histogram(10, 10)
        hist.add(42)
        data = json.loads(json.dumps(hist.to_dict()))
        assert data["count"] == 1
        assert data["p50"] == 50.0

    def test_reset(self):
        hist = Histogram(10, 10)
        hist.add(5)
        hist.reset()
        assert hist.count == 0 and sum(hist.buckets) == 0

    def test_state_roundtrip(self):
        import json

        hist = Histogram(10, 4)
        for value in (5, 15, 9999):
            hist.add(value)
        state = json.loads(json.dumps(hist.state_dict()))
        assert "Infinity" not in json.dumps(state)
        rebuilt = Histogram.from_state(state)
        assert rebuilt.count == hist.count
        assert rebuilt.overflow == hist.overflow
        assert rebuilt.buckets == hist.buckets
        assert rebuilt.minimum == 5 and rebuilt.maximum == 9999
        assert rebuilt.p99 == hist.p99

    def test_empty_state_keeps_absorbing_bounds(self):
        rebuilt = Histogram.from_state(Histogram(10, 4).state_dict())
        assert rebuilt.count == 0
        rebuilt.add(7)
        assert rebuilt.minimum == 7 and rebuilt.maximum == 7

    def test_from_state_rejects_oversized_buckets(self):
        state = Histogram(10, 2).state_dict()
        state["buckets"] = [1, 2, 3]
        with pytest.raises(ValueError):
            Histogram.from_state(state)


class TestStatsRegistry:
    def test_counters_default_to_zero(self):
        stats = StatsRegistry()
        stats.incr("a")
        stats.incr("a", 4)
        assert stats.counters["a"] == 5
        assert stats.counters["missing"] == 0

    def test_sampler_reuse_by_name(self):
        stats = StatsRegistry()
        assert stats.sampler("lat") is stats.sampler("lat")

    def test_sample_shortcut(self):
        stats = StatsRegistry()
        stats.sample("lat", 10.0)
        stats.sample("lat", 20.0)
        assert stats.samplers["lat"].mean == 15.0

    def test_snapshot_diff(self):
        stats = StatsRegistry()
        stats.incr("x", 3)
        before = stats.snapshot()
        stats.incr("x", 2)
        stats.incr("y")
        assert stats.diff(before) == {"x": 2, "y": 1}

    def test_diff_excludes_unchanged(self):
        stats = StatsRegistry()
        stats.incr("x", 3)
        before = stats.snapshot()
        assert stats.diff(before) == {}

    def test_reset_clears_everything(self):
        stats = StatsRegistry()
        stats.incr("x")
        stats.sample("lat", 1.0)
        stats.histogram("h").add(1.0)
        stats.reset()
        assert not stats.counters
        assert stats.samplers["lat"].count == 0
        assert stats.histograms["h"].count == 0

    def test_histogram_reuse_by_name(self):
        stats = StatsRegistry()
        assert stats.histogram("lat") is stats.histogram("lat")

    def test_snapshot_includes_sampler_summaries(self):
        stats = StatsRegistry()
        stats.incr("x", 3)
        stats.sample("lat", 10.0)
        stats.sample("lat", 20.0)
        snap = stats.snapshot()
        assert snap["x"] == 3
        assert snap["samplers"]["lat"] == {
            "count": 2, "mean": 15.0, "min": 10.0, "max": 20.0,
            "total": 30.0,
        }

    def test_snapshot_omits_empty_samplers(self):
        stats = StatsRegistry()
        stats.sampler("lat")  # created but never sampled
        assert "samplers" not in stats.snapshot()

    def test_diff_reports_sampler_interval(self):
        stats = StatsRegistry()
        stats.sample("lat", 10.0)
        before = stats.snapshot()
        stats.sample("lat", 30.0)
        delta = stats.diff(before)["samplers"]["lat"]
        assert delta["count"] == 1
        assert delta["mean"] == 30.0
        assert delta["total"] == 30.0

    def test_diff_without_new_samples_has_no_sampler_key(self):
        stats = StatsRegistry()
        stats.sample("lat", 10.0)
        before = stats.snapshot()
        stats.incr("x")
        assert stats.diff(before) == {"x": 1}

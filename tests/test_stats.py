"""Unit tests for the stats registry."""

from repro.sim.stats import Sampler, StatsRegistry


class TestSampler:
    def test_accumulates_basic_statistics(self):
        sampler = Sampler()
        for value in (2.0, 4.0, 6.0):
            sampler.add(value)
        assert sampler.count == 3
        assert sampler.mean == 4.0
        assert sampler.minimum == 2.0
        assert sampler.maximum == 6.0

    def test_empty_mean_is_zero(self):
        assert Sampler().mean == 0.0

    def test_keep_values_records_history(self):
        sampler = Sampler(keep_values=True)
        sampler.add(1.0)
        sampler.add(2.0)
        assert sampler.values == [1.0, 2.0]

    def test_values_not_kept_by_default(self):
        sampler = Sampler()
        sampler.add(1.0)
        assert sampler.values is None

    def test_reset(self):
        sampler = Sampler(keep_values=True)
        sampler.add(5.0)
        sampler.reset()
        assert sampler.count == 0
        assert sampler.values == []


class TestStatsRegistry:
    def test_counters_default_to_zero(self):
        stats = StatsRegistry()
        stats.incr("a")
        stats.incr("a", 4)
        assert stats.counters["a"] == 5
        assert stats.counters["missing"] == 0

    def test_sampler_reuse_by_name(self):
        stats = StatsRegistry()
        assert stats.sampler("lat") is stats.sampler("lat")

    def test_sample_shortcut(self):
        stats = StatsRegistry()
        stats.sample("lat", 10.0)
        stats.sample("lat", 20.0)
        assert stats.samplers["lat"].mean == 15.0

    def test_snapshot_diff(self):
        stats = StatsRegistry()
        stats.incr("x", 3)
        before = stats.snapshot()
        stats.incr("x", 2)
        stats.incr("y")
        assert stats.diff(before) == {"x": 2, "y": 1}

    def test_diff_excludes_unchanged(self):
        stats = StatsRegistry()
        stats.incr("x", 3)
        before = stats.snapshot()
        assert stats.diff(before) == {}

    def test_reset_clears_everything(self):
        stats = StatsRegistry()
        stats.incr("x")
        stats.sample("lat", 1.0)
        stats.reset()
        assert not stats.counters
        assert stats.samplers["lat"].count == 0

"""Sweep journal: append-only JSONL checkpoints and resume semantics."""

import json

from repro.runner import SweepJournal, load_journal


class TestJournalWriting:
    def test_lazy_open_touches_nothing(self, tmp_path):
        journal = SweepJournal(tmp_path / "deep" / "sweep.jsonl")
        assert not (tmp_path / "deep").exists()
        journal.close()
        assert not (tmp_path / "deep").exists()

    def test_records_are_one_json_line_each(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal(path) as journal:
            journal.record_begin(2, meta={"resume": False})
            journal.record_result("k1", 0, {"x": 1})
            journal.record_failure("k2", 1, {"kind": "timeout"})
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        kinds = [json.loads(line)["kind"] for line in lines]
        assert kinds == ["begin", "result", "failure"]
        assert journal.written == 3

    def test_appends_across_instances(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal(path) as journal:
            journal.record_result("k1", 0, 11)
        with SweepJournal(path) as journal:
            journal.record_result("k2", 1, 22)
        state = load_journal(path)
        assert state.results == {"k1": 11, "k2": 22}


class TestJournalLoading:
    def test_missing_file_is_empty_state(self, tmp_path):
        state = load_journal(tmp_path / "nope.jsonl")
        assert state.results == {}
        assert state.failures == {}
        assert state.records == 0

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal(path) as journal:
            journal.record_result("k1", 0, {"x": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "result", "key": "k2", "resu')  # crash
        state = load_journal(path)
        assert state.results == {"k1": {"x": 1}}
        assert state.torn == 1

    def test_last_record_wins_per_key(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal(path) as journal:
            journal.record_failure("k1", 0, {"kind": "timeout"})
            journal.record_result("k1", 0, {"x": 2})   # retry succeeded
            journal.record_result("k2", 1, {"x": 3})
            journal.record_failure("k2", 1, {"kind": "exception"})
        state = load_journal(path)
        assert state.results == {"k1": {"x": 2}}
        assert state.failures == {"k2": {"kind": "exception"}}

    def test_completed_skips_failures(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with SweepJournal(path) as journal:
            journal.record_result("good", 0, 1)
            journal.record_failure("bad", 1, {"kind": "exception"})
        assert SweepJournal(path).completed() == {"good": 1}

    def test_non_object_lines_count_as_torn(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text('42\n{"kind": "result", "key": "k", "result": 5}\n')
        state = load_journal(path)
        assert state.torn == 1
        assert state.results == {"k": 5}


class TestDefaultPath:
    def test_env_override(self, tmp_path, monkeypatch):
        from repro.runner.journal import default_journal_path

        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path / "j"))
        assert default_journal_path("fig10-small") == (
            tmp_path / "j" / "fig10-small.jsonl"
        )

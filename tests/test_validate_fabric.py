"""Fabric-boundary invariant tests: link credit flow under audit.

PR-9 left everything past the device edge unaudited; these tests pin the
extension: :meth:`InvariantChecker.attach_system` watches the fabric
routers, link TX/RX queues, delivery queues, device fabric egress queues
(plus the ``remote_reply_mux`` reserving into one of them), and the
:class:`LinkPipe` credit windows.  The headline regression test corrupts
a link's RX credit count mid-run and demands an
:class:`InvariantViolation` — the exact silent-corruption mode the
fabric audit exists to catch.
"""

from types import SimpleNamespace

import pytest

from repro.config import LinkConfig, small_config
from repro.gpu.coalescer import lane_addresses_uncoalesced
from repro.gpu.kernel import Kernel
from repro.gpu.warp import MemOp, READ
from repro.interconnect import MultiGpuSystem
from repro.interconnect.link import LinkPipe
from repro.noc.buffer import PacketQueue
from repro.validate.invariants import InvariantChecker, InvariantViolation


def _validated_cfg(**overrides):
    return small_config(timing_noise=0, validate_enabled=True, **overrides)


def _remote_read_program(context):
    args = context.args
    line = 64
    base = args["base"] + context.warp_id * args["ops"] * 32 * line
    for op in range(args["ops"]):
        addresses = lane_addresses_uncoalesced(
            base + op * 32 * line, line, 32
        )
        yield MemOp(READ, addresses, device=args["device"])


def _remote_kernel(device, ops=4, base=0, warps=2):
    return Kernel(
        _remote_read_program,
        num_blocks=1,
        warps_per_block=warps,
        args={"ops": ops, "base": base, "device": device},
        name="remote-read",
    )


class TestAttachSystem:
    def test_watch_sets_cover_the_fabric(self):
        system = MultiGpuSystem(_validated_cfg(), LinkConfig(num_devices=2))
        checker = system._validator
        assert isinstance(checker, InvariantChecker)
        # 2 fabric_inject + 2 fabric_reply + 2 TX + 2 RX + 2 delivery.
        assert len(checker.queues) == 10
        # 2 routers + 2 remote_reply_muxes.
        assert len(checker.switches) == 4
        assert len(checker.links) == len(system.link_pipes) == 2
        watched = {q.name for q in checker.queues}
        assert "link0-1.tx" in watched
        assert "link1-0.rx" in watched
        assert "d0.fab.deliver" in watched

    def test_disabled_config_attaches_nothing(self):
        system = MultiGpuSystem(
            small_config(timing_noise=0), LinkConfig(num_devices=2)
        )
        assert system._validator is None

    def test_switch_topology_attaches(self):
        system = MultiGpuSystem(
            _validated_cfg(), LinkConfig(num_devices=3, topology="switch")
        )
        checker = system._validator
        # The hub node contributes a router but no device egress queues.
        assert len(checker.switches) == 4 + 3  # 4 routers + 3 reply muxes
        assert len(checker.links) == len(system.link_pipes)


class TestValidatedRemoteTraffic:
    def test_remote_reads_pass_the_fabric_audit(self):
        system = MultiGpuSystem(_validated_cfg(), LinkConfig(num_devices=2))
        gpu0, gpu1 = system.devices
        gpu1.preload_region(0, 1 << 20)
        gpu0.launch(_remote_kernel(device=1))
        system.run()
        checker = system._validator
        assert checker.checks_run > 0
        assert checker.violations == 0
        # Per-device interior checkers audited their side too.
        for device in system.devices:
            assert device._validator is not None
            assert device._validator.checks_run > 0

    def test_corrupted_link_credit_raises(self):
        """Pinned: a corrupted RX credit count must fail the audit."""
        system = MultiGpuSystem(_validated_cfg(), LinkConfig(num_devices=2))
        gpu0, gpu1 = system.devices
        gpu1.preload_region(0, 1 << 20)
        gpu0.launch(_remote_kernel(device=1))
        pipe = system.link_pipes[0]
        # Leak one phantom credit, as a lost commit would.
        pipe.rx._reserved_flits += 1
        with pytest.raises(InvariantViolation) as excinfo:
            system.run(max_cycles=200_000)
        assert excinfo.value.kind == "reservation-leak"
        assert excinfo.value.component == pipe.rx.name


class TestWatchLink:
    def _bare_pipe(self):
        tx = PacketQueue("t.tx", 64)
        rx = PacketQueue("t.rx", 64)
        return LinkPipe("t", tx, rx, width=4, latency=2)

    def test_rejects_non_links(self):
        checker = InvariantChecker()
        with pytest.raises(TypeError):
            checker.watch_link(PacketQueue("q", 4))
        with pytest.raises(TypeError):
            checker.watch_switch(self._bare_pipe())

    def test_negative_flits_in_flight_is_link_credit(self):
        checker = InvariantChecker()
        pipe = self._bare_pipe()
        checker.watch_link(pipe)  # queues unwatched: window shape only
        pipe._in_flight.append(
            (5, SimpleNamespace(uid=1, flits=0))
        )
        with pytest.raises(InvariantViolation) as excinfo:
            checker.audit(cycle=10)
        assert excinfo.value.kind == "link-credit"

    def test_out_of_order_arrivals_is_progress_consistency(self):
        checker = InvariantChecker()
        pipe = self._bare_pipe()
        checker.watch_link(pipe)
        pipe._in_flight.append((9, SimpleNamespace(uid=1, flits=2)))
        pipe._in_flight.append((7, SimpleNamespace(uid=2, flits=2)))
        with pytest.raises(InvariantViolation) as excinfo:
            checker.audit(cycle=10)
        assert excinfo.value.kind == "progress-consistency"

    def test_clean_window_passes(self):
        checker = InvariantChecker()
        pipe = self._bare_pipe()
        checker.watch_link(pipe)
        pipe._in_flight.append((7, SimpleNamespace(uid=1, flits=2)))
        pipe._in_flight.append((9, SimpleNamespace(uid=2, flits=2)))
        checker.audit(cycle=10)  # no raise

"""Unit and property tests for channel metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.config import small_config
from repro.channel.metrics import (
    TransmissionResult,
    bit_error_rate,
    channel_capacity_per_symbol,
)


class TestBitErrorRate:
    def test_identical_streams(self):
        assert bit_error_rate([1, 0, 1], [1, 0, 1]) == 0.0

    def test_all_wrong(self):
        assert bit_error_rate([1, 1], [0, 0]) == 1.0

    def test_partial_errors(self):
        assert bit_error_rate([1, 0, 1, 0], [1, 1, 1, 0]) == 0.25

    def test_length_mismatch_counts_as_errors(self):
        assert bit_error_rate([1, 0, 1], [1]) == pytest.approx(2 / 3)

    def test_empty_streams(self):
        assert bit_error_rate([], []) == 0.0

    @given(
        st.lists(st.integers(0, 1), min_size=1, max_size=64),
        st.lists(st.integers(0, 1), min_size=1, max_size=64),
    )
    def test_bounds_and_symmetry(self, sent, received):
        rate = bit_error_rate(sent, received)
        assert 0.0 <= rate <= 1.0
        if len(sent) == len(received):
            assert rate == bit_error_rate(received, sent)


class TestCapacity:
    def test_perfect_channel_full_capacity(self):
        assert channel_capacity_per_symbol(0.0) == 1.0
        assert channel_capacity_per_symbol(0.0, levels=4) == 2.0

    def test_random_channel_zero_capacity(self):
        assert channel_capacity_per_symbol(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_capacity_decreases_with_error(self):
        capacities = [
            channel_capacity_per_symbol(p) for p in (0.0, 0.05, 0.2, 0.4)
        ]
        assert capacities == sorted(capacities, reverse=True)

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            channel_capacity_per_symbol(0.1, levels=1)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=2, max_value=8),
    )
    def test_capacity_bounds(self, error, levels):
        capacity = channel_capacity_per_symbol(error, levels)
        assert -1e-9 <= capacity <= math.log2(levels) + 1e-9


class TestTransmissionResult:
    def make(self, sent, received, cycles=1_200_000, bits_per_symbol=1.0):
        return TransmissionResult(
            config=small_config(),
            sent_symbols=sent,
            received_symbols=received,
            cycles=cycles,
            bits_per_symbol=bits_per_symbol,
        )

    def test_bandwidth_at_core_clock(self):
        # 1200 symbols in 1.2M cycles at 1.2 GHz = 1200 / 1 ms = 1.2 Mbps.
        result = self.make([0] * 1200, [0] * 1200)
        assert result.bandwidth_mbps == pytest.approx(1.2)

    def test_error_rate_delegates_to_ber(self):
        result = self.make([1, 0], [0, 0])
        assert result.error_rate == 0.5

    def test_effective_bandwidth_discounted_by_error(self):
        clean = self.make([0, 1] * 50, [0, 1] * 50)
        noisy = self.make([0, 1] * 50, [0, 0] * 50)
        assert clean.effective_bandwidth_bps > noisy.effective_bandwidth_bps

    def test_multilevel_bits_per_symbol(self):
        result = self.make([0] * 100, [0] * 100, bits_per_symbol=2.0)
        single = self.make([0] * 100, [0] * 100)
        assert result.bandwidth_bps == 2 * single.bandwidth_bps

    def test_zero_cycles_guard(self):
        result = self.make([0], [0], cycles=0)
        assert result.bandwidth_bps == 0.0
        assert result.effective_bandwidth_bps == 0.0

    def test_summary_mentions_rate_and_error(self):
        summary = self.make([1], [1]).summary()
        assert "Mbps" in summary
        assert "error rate" in summary

"""Artifact-store promotion tests: LRU bounds, counters, concurrency.

The sweep service leans on :class:`ResultCache` as a *shared* store, so
these tests pin the new contract: size bounds evict least-recently-used
entries (recency = file mtime, refreshed on every hit), the entry just
written is never evicted, operation counts land in the
``cache_ops_total`` metrics family, and concurrent writers/evictors
never corrupt each other.
"""

import json
import os
import threading

import pytest

from repro.metrics.registry import MetricsRegistry
from repro.runner.cache import (
    CACHE_MAX_BYTES_ENV,
    CACHE_MAX_ENTRIES_ENV,
    ResultCache,
)


def _ops(registry):
    """``cache_ops_total`` series as ``{op: value}``."""
    manifest = registry.to_manifest()["metrics"]
    family = manifest.get("cache_ops_total", {"series": []})
    return {
        series["labels"]["op"]: series["value"]
        for series in family["series"]
    }


def _age(cache, key, mtime):
    """Pin an entry's recency stamp (deterministic LRU order)."""
    os.utime(cache._path(key), (mtime, mtime))


class TestLruEviction:
    def test_unbounded_by_default(self, tmp_path):
        cache = ResultCache(tmp_path, metrics=MetricsRegistry())
        for i in range(16):
            cache.put(cache.key("fn", {"i": i}), {"v": i})
        assert cache.evictions == 0
        assert len(list(cache.root.glob("??/*.json"))) == 16

    def test_entry_bound_evicts_oldest_first(self, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, max_entries=2, metrics=registry)
        keys = [cache.key("fn", {"i": i}) for i in range(4)]
        for age, key in enumerate(keys):
            cache.put(key, {"v": age})
            _age(cache, key, 1000.0 + age)
        assert cache.evictions == 2
        assert cache.get(keys[0]) is None
        assert cache.get(keys[1]) is None
        assert cache.get(keys[2]) == {"v": 2}
        assert cache.get(keys[3]) == {"v": 3}
        assert _ops(registry)["eviction"] == 2

    def test_byte_bound_trims_total_size(self, tmp_path):
        cache = ResultCache(
            tmp_path, max_bytes=1, metrics=MetricsRegistry()
        )
        first = cache.key("fn", {"i": 0})
        second = cache.key("fn", {"i": 1})
        cache.put(first, {"v": 0})
        _age(cache, first, 1000.0)
        cache.put(second, {"v": 1})
        # Every entry is bigger than 1 byte, so only the entry just
        # written (never an eviction candidate) survives.
        assert cache.get(first) is None
        assert cache.get(second) == {"v": 1}
        assert cache.evictions == 1

    def test_hit_refreshes_recency(self, tmp_path):
        cache = ResultCache(
            tmp_path, max_entries=2, metrics=MetricsRegistry()
        )
        old, hot = cache.key("fn", {"i": 0}), cache.key("fn", {"i": 1})
        cache.put(old, {"v": 0})
        cache.put(hot, {"v": 1})
        _age(cache, old, 1000.0)
        _age(cache, hot, 1001.0)
        # Touch the *older* entry: it becomes the most recent.
        assert cache.get(old) == {"v": 0}
        _age(cache, hot, 1001.0)  # keep hot's stamp deterministic
        cache.put(cache.key("fn", {"i": 2}), {"v": 2})
        assert cache.get(old) == {"v": 0}
        assert cache.get(hot) is None

    def test_put_never_evicts_its_own_entry(self, tmp_path):
        cache = ResultCache(
            tmp_path, max_entries=1, metrics=MetricsRegistry()
        )
        keys = [cache.key("fn", {"i": i}) for i in range(3)]
        for age, key in enumerate(keys):
            cache.put(key, {"v": age})
            _age(cache, key, 1000.0 + age)
            assert cache.get(key) == {"v": age}
        assert cache.evictions == 2

    def test_invalid_bounds_raise(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_entries=0, metrics=MetricsRegistry())
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_bytes=-5, metrics=MetricsRegistry())

    def test_env_bounds_apply(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_ENTRIES_ENV, "2")
        monkeypatch.delenv(CACHE_MAX_BYTES_ENV, raising=False)
        cache = ResultCache(tmp_path, metrics=MetricsRegistry())
        assert cache.max_entries == 2
        for i in range(4):
            key = cache.key("fn", {"i": i})
            cache.put(key, {"v": i})
            _age(cache, key, 1000.0 + i)
        assert cache.evictions == 2

    def test_env_bounds_must_parse(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_ENTRIES_ENV, "lots")
        with pytest.raises(ValueError):
            ResultCache(tmp_path, metrics=MetricsRegistry())


class TestCounters:
    def test_hit_miss_put_counters(self, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, metrics=registry)
        key = cache.key("fn", {"i": 0})
        assert cache.get(key) is None
        cache.put(key, {"v": 0})
        assert cache.get(key) == {"v": 0}
        ops = _ops(registry)
        assert ops["miss"] == 1
        assert ops["put"] == 1
        assert ops["hit"] == 1
        assert "eviction" not in ops or ops["eviction"] == 0

    def test_object_counters_mirror_registry(self, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(tmp_path, max_entries=1, metrics=registry)
        keys = [cache.key("fn", {"i": i}) for i in range(3)]
        for age, key in enumerate(keys):
            cache.put(key, {"v": age})
            _age(cache, key, 1000.0 + age)
        cache.get(keys[0])
        ops = _ops(registry)
        assert ops["eviction"] == cache.evictions
        assert ops["miss"] == cache.misses
        assert ops["hit"] == cache.hits


class TestConcurrentWriters:
    def test_threads_share_a_bounded_store_safely(self, tmp_path):
        """Racing put/get/evict threads never corrupt the store."""
        cache = ResultCache(
            tmp_path, max_entries=4, metrics=MetricsRegistry()
        )
        errors = []

        def worker(worker_id):
            try:
                local = ResultCache(
                    tmp_path, max_entries=4, metrics=MetricsRegistry()
                )
                for i in range(25):
                    key = local.key("fn", {"i": i % 8})
                    local.put(key, {"v": i % 8})
                    value = local.get(key)
                    # Evicted-by-a-racer reads are plain misses; a
                    # present entry must round-trip exactly.
                    assert value is None or value == {"v": i % 8}
                assert not local.quarantines
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append((worker_id, exc))

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # After the dust settles one more put must re-establish the bound.
        key = cache.key("fn", {"final": True})
        cache.put(key, {"v": "final"})
        live = list(cache.root.glob("??/*.json"))
        assert len(live) <= 4
        for path in live:
            entry = json.loads(path.read_text())
            assert "result" in entry and "meta" in entry

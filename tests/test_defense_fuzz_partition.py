"""Tests for clock fuzzing and partitioning defenses (Section 6)."""

import pytest

from repro.config import small_config
from repro.defense.clock_fuzz import run_clock_fuzz_study
from repro.defense.partition import (
    colocation_blocked,
    cross_instance_channel_possible,
    make_mig_partition,
    partition_utilization,
    temporal_partition,
)


class TestClockFuzz:
    @pytest.fixture(scope="class")
    def study(self):
        return run_clock_fuzz_study(
            small_config(),
            amplitudes=(0, 32, 8192),
            payload_bits=32,
        )

    def test_no_fuzz_channel_works(self, study):
        assert study.error_rates[0] <= 0.05

    def test_small_fuzz_tolerated(self, study):
        """Tens of cycles of fuzz are absorbed by the coarse resync —
        clock fuzzing is a weak defense (Section 6)."""
        assert study.error_rates[1] <= 0.15

    def test_huge_fuzz_breaks_synchronization(self, study):
        # Fuzz on the order of the sync period defeats slot alignment.
        assert study.error_rates[2] > 0.2

    def test_breaking_amplitude_reported(self, study):
        assert study.breaking_amplitude(error_limit=0.2) == 8192

    def test_breaking_amplitude_none_when_robust(self, study):
        assert study.breaking_amplitude(error_limit=1.1) is None


class TestMigPartition:
    def test_partition_covers_all_gpcs(self):
        cfg = small_config()
        instances = make_mig_partition(cfg, gpcs_per_instance=1)
        gpcs = [g for inst in instances for g in inst.gpcs]
        assert sorted(gpcs) == list(range(cfg.num_gpcs))

    def test_cross_instance_channel_impossible(self):
        cfg = small_config()
        instances = make_mig_partition(cfg, gpcs_per_instance=1)
        assert not cross_instance_channel_possible(cfg, instances, 0, 1)

    def test_same_instance_channel_still_possible(self):
        """The paper's MIG caveat: MPS within one instance remains
        attackable."""
        cfg = small_config()
        instances = make_mig_partition(cfg, gpcs_per_instance=1)
        assert cross_instance_channel_possible(cfg, instances, 0, 0)

    def test_instance_tpcs_resolve(self):
        cfg = small_config()
        instances = make_mig_partition(cfg, gpcs_per_instance=1)
        members = cfg.gpc_members()
        assert instances[0].tpcs(cfg) == members[0]

    def test_invalid_instance_size(self):
        with pytest.raises(ValueError):
            make_mig_partition(small_config(), gpcs_per_instance=0)


class TestTemporalPartition:
    def test_tpc_level_plan_blocks_colocation(self):
        cfg = small_config()
        plan = temporal_partition(cfg, ["trojan", "spy"], level="tpc")
        assert not plan.shares_tpc()
        assert colocation_blocked(cfg, plan, "trojan", "spy")

    def test_gpc_level_plan(self):
        cfg = small_config()
        plan = temporal_partition(cfg, ["a", "b"], level="gpc")
        assert colocation_blocked(cfg, plan, "a", "b")

    def test_utilization_cost(self):
        """The paper's downside: partitioning halves concurrency."""
        cfg = small_config()
        plan = temporal_partition(cfg, ["a", "b"], level="tpc")
        assert partition_utilization(cfg, plan, "a") == pytest.approx(0.5)

    def test_single_kernel_keeps_whole_gpu(self):
        cfg = small_config()
        plan = temporal_partition(cfg, ["only"], level="tpc")
        assert partition_utilization(cfg, plan, "only") == 1.0

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            temporal_partition(small_config(), ["a"], level="sm")

"""Experiment runner: job dispatch, parallel fan-out, result caching."""

import json

import pytest

from repro.config import small_config
from repro.runner import ResultCache, SimJob, code_version, run_jobs
from repro.runner.cache import canonical_json
from repro.runner.runner import execute, resolve


def double(config, factor=2):
    """Trivial module-level workload (picklable by dotted path)."""
    return {"seed": config.seed, "value": config.seed * factor}


DOUBLE = f"{__name__}.double"


class TestResolve:
    def test_resolves_dotted_path(self):
        assert resolve(DOUBLE) is double

    def test_rejects_bare_names_and_missing_attrs(self):
        with pytest.raises(ValueError):
            resolve("double")
        with pytest.raises(ValueError):
            resolve("repro.runner.runner.nonexistent")

    def test_execute_applies_seed_override_and_roundtrips(self):
        job = SimJob(fn=DOUBLE, config=small_config(), seed=99,
                     params={"factor": 3})
        result = execute(job)
        assert result == {"seed": 99, "value": 297}
        # JSON round trip: keys are plain str, values plain int.
        assert json.loads(json.dumps(result)) == result


class TestRunJobs:
    def _jobs(self, count=4):
        config = small_config()
        return [SimJob(fn=DOUBLE, config=config, seed=seed)
                for seed in range(1, count + 1)]

    def test_inline_preserves_job_order(self):
        results = run_jobs(self._jobs(), workers=1)
        assert [r["seed"] for r in results] == [1, 2, 3, 4]

    def test_parallel_matches_inline(self):
        jobs = self._jobs(6)
        assert run_jobs(jobs, workers=3) == run_jobs(jobs, workers=1)

    def test_progress_callback_sees_every_completion(self):
        seen = []
        run_jobs(self._jobs(3), workers=1,
                 progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_empty_job_list(self):
        assert run_jobs([], workers=2) == []


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [SimJob(fn=DOUBLE, config=small_config(), seed=5)]
        first = run_jobs(jobs, workers=1, cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)
        second = run_jobs(jobs, workers=1, cache=cache)
        assert cache.hits == 1
        assert second == first

    def test_key_sensitive_to_config_params_and_seed(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = small_config()
        base = cache.key(DOUBLE, config, {"factor": 2}, seed=1)
        assert cache.key(DOUBLE, config, {"factor": 3}, seed=1) != base
        assert cache.key(DOUBLE, config, {"factor": 2}, seed=2) != base
        bigger = config.replace(num_gpcs=config.num_gpcs)
        assert cache.key(DOUBLE, bigger, {"factor": 2}, seed=1) == base
        changed = config.replace(l2_latency=config.l2_latency + 1)
        assert cache.key(DOUBLE, changed, {"factor": 2}, seed=1) != base

    def test_cached_and_fresh_results_type_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [SimJob(fn=DOUBLE, config=small_config(), seed=5)]
        fresh = run_jobs(jobs, workers=1, cache=cache)[0]
        cached = run_jobs(jobs, workers=1, cache=cache)[0]
        assert type(fresh) is type(cached)
        assert fresh == cached

    def test_torn_entry_counts_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key(DOUBLE, small_config(), {}, seed=1)
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text("{truncated", encoding="utf-8")
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache.key(DOUBLE, small_config(), {}, seed=1), {"x": 1})
        assert cache.clear() == 1
        assert cache.clear() == 0

    def test_env_var_sets_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert ResultCache().root == tmp_path / "alt"

    def test_code_version_stable_within_process(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16

    def test_canonical_json_handles_dataclasses_and_tuples(self):
        config = small_config()
        text = canonical_json({"config": config, "t": (1, 2)})
        parsed = json.loads(text)
        assert parsed["t"] == [1, 2]
        assert parsed["config"]["seed"] == config.seed


class TestCacheEntryRobustness:
    """Regressions for entry handling: any unreadable entry is a miss."""

    def _key(self, cache):
        return cache.key(DOUBLE, small_config(), {}, seed=1)

    def _write_entry(self, cache, key, text):
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")

    def test_entry_without_result_key_counts_as_miss(self, tmp_path):
        # Regression: this used to escape as a KeyError and kill a sweep.
        cache = ResultCache(tmp_path)
        key = self._key(cache)
        self._write_entry(cache, key, json.dumps({"meta": {"note": "x"}}))
        assert cache.get(key) is None
        assert cache.misses == 1
        assert cache.hits == 0

    def test_non_object_entry_counts_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self._key(cache)
        self._write_entry(cache, key, "42")  # valid JSON, wrong shape
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_malformed_entry_is_overwritable(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self._key(cache)
        self._write_entry(cache, key, json.dumps({"wrong": True}))
        assert cache.get(key) is None
        cache.put(key, {"x": 1})
        assert cache.get(key) == {"x": 1}


def flaky(config, explode=False):
    """Workload that raises when asked (for mid-sweep crash tests)."""
    if explode:
        raise RuntimeError("boom")
    return {"seed": config.seed}


FLAKY = f"{__name__}.flaky"


class TestWriteThroughCache:
    """Regression: cache puts used to happen only after the whole sweep
    finished, so a crash mid-sweep discarded every completed miss."""

    def test_inline_crash_keeps_completed_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = small_config()
        jobs = [
            SimJob(fn=FLAKY, config=config, seed=1),
            SimJob(fn=FLAKY, config=config, seed=2,
                   params={"explode": True}),
        ]
        with pytest.raises(RuntimeError, match="boom"):
            run_jobs(jobs, workers=1, cache=cache)
        # Job 0 completed before the crash and must be on disk.
        key = cache.key(FLAKY, config.replace(seed=1), {})
        assert cache.get(key) == {"seed": 1}

    def test_pool_crash_keeps_completed_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = small_config()
        jobs = [SimJob(fn=FLAKY, config=config, seed=seed)
                for seed in (1, 2, 3)]

        def explode_after_first(done, total):
            if done == 1:
                raise RuntimeError("observer crash")

        with pytest.raises(RuntimeError, match="observer crash"):
            run_jobs(jobs, workers=2, cache=cache,
                     progress=explode_after_first)
        hits = sum(
            cache.get(cache.key(FLAKY, config.replace(seed=s), {}))
            is not None
            for s in (1, 2, 3)
        )
        assert hits >= 1

    def test_progress_crash_tears_the_pool_down(self, tmp_path):
        import multiprocessing

        config = small_config()
        jobs = [SimJob(fn=FLAKY, config=config, seed=seed)
                for seed in range(1, 5)]

        def explode(done, total):
            raise RuntimeError("observer crash")

        with pytest.raises(RuntimeError, match="observer crash"):
            run_jobs(jobs, workers=2, progress=explode)
        assert multiprocessing.active_children() == []


class TestQuarantine:
    """Corrupt cache entries are moved aside and surfaced, not silently
    re-missed (or worse, replayed)."""

    def _put(self, cache):
        key = cache.key(DOUBLE, small_config(), {}, seed=1)
        cache.put(key, {"x": 1})
        return key

    def test_checksum_mismatch_quarantines(self, tmp_path):
        import json as _json

        cache = ResultCache(tmp_path)
        key = self._put(cache)
        path = cache._path(key)
        entry = _json.loads(path.read_text())
        entry["result"]["x"] = 999  # bit-rot
        path.write_text(_json.dumps(entry))
        assert cache.get(key) is None
        assert cache.quarantined == 1
        assert not path.exists()
        record = cache.quarantines[0]
        assert record["key"] == key
        assert "checksum mismatch" in record["reason"]
        assert (tmp_path / "_quarantine").is_dir()

    def test_torn_json_quarantines(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self._put(cache)
        cache._path(key).write_text("{torn")
        assert cache.get(key) is None
        assert cache.quarantined == 1
        assert "torn" in cache.quarantines[0]["reason"]

    def test_missing_file_is_a_plain_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.quarantined == 0

    def test_quarantined_slot_is_repopulatable(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self._put(cache)
        cache._path(key).write_text("{torn")
        assert cache.get(key) is None
        cache.put(key, {"x": 2})
        assert cache.get(key) == {"x": 2}
        # The quarantined evidence file survives a clear().
        assert cache.clear() == 1
        assert list((tmp_path / "_quarantine").glob("*.json"))

    def test_legacy_entry_without_checksum_still_hits(self, tmp_path):
        import json as _json

        cache = ResultCache(tmp_path)
        key = cache.key(DOUBLE, small_config(), {}, seed=1)
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_json.dumps({"result": {"x": 5}, "meta": {}}))
        assert cache.get(key) == {"x": 5}
        assert cache.quarantined == 0

    def test_quarantine_names_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self._put(cache)
        for _ in range(2):
            cache._path(key).write_text("{torn")
            assert cache.get(key) is None
        assert cache.quarantined == 2
        assert len(list((tmp_path / "_quarantine").glob("*.json"))) == 2


class TestFreshSelection:
    """Pinned regression: out-of-range ``fresh`` indices must raise.

    ``_select`` used to drop indices outside the result list silently,
    so an aggregate over a stale journal's fresh list quietly computed
    a wrong answer instead of failing loudly.
    """

    def _results(self):
        return [
            {"telemetry": {"devices": 1, "read_latency": {}}},
            {"telemetry": {"devices": 1, "read_latency": {}}},
        ]

    def test_valid_fresh_indices_select(self):
        from repro.runner import merge_telemetry

        merged = merge_telemetry(self._results(), fresh=[1])
        assert merged["jobs"] == 1

    def test_out_of_range_fresh_index_raises(self):
        from repro.runner import merge_telemetry
        from repro.runner.runner import _select

        with pytest.raises(IndexError, match="different"):
            _select(self._results(), fresh=[0, 5])
        with pytest.raises(IndexError):
            _select(self._results(), fresh=[-1])
        with pytest.raises(IndexError):
            merge_telemetry(self._results(), fresh=[2])


class TestJobKey:
    def test_matches_cache_key(self, tmp_path):
        from repro.runner import job_key

        cache = ResultCache(tmp_path)
        config = small_config()
        assert job_key(DOUBLE, config, {"factor": 2}) == cache.key(
            DOUBLE, config, {"factor": 2}
        )


class TestCodeVersionRefresh:
    """Regressions for the memoised code_version going stale in-process."""

    def test_refresh_replaces_a_stale_memo(self, monkeypatch):
        import repro.runner.cache as cache_mod

        real = code_version()
        monkeypatch.setattr(cache_mod, "_code_version", "stale-memo")
        assert code_version() == "stale-memo"  # the memo is served as-is
        assert code_version(refresh=True) == real

    def test_cache_construction_refreshes_the_memo(self, tmp_path,
                                                   monkeypatch):
        import repro.runner.cache as cache_mod

        real = code_version()
        monkeypatch.setattr(cache_mod, "_code_version", "stale-memo")
        cache = ResultCache(tmp_path)
        assert cache.code_version == real
        assert code_version() == real  # the module memo was replaced too

    def test_keys_use_the_cache_pinned_version(self, tmp_path, monkeypatch):
        import repro.runner.cache as cache_mod

        cache = ResultCache(tmp_path)
        key_before = cache.key(DOUBLE, small_config(), {}, seed=1)
        # A later stale memo must not change this cache's keys.
        monkeypatch.setattr(cache_mod, "_code_version", "stale-memo")
        assert cache.key(DOUBLE, small_config(), {}, seed=1) == key_before

    def test_put_records_code_version_in_meta(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key(DOUBLE, small_config(), {}, seed=1)
        cache.put(key, {"x": 1}, meta={"note": "hello"})
        meta = cache.meta(key)
        assert meta["code_version"] == cache.code_version
        assert meta["note"] == "hello"

    def test_meta_absent_for_missing_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.meta("0" * 64) is None

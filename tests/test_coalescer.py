"""Unit and property tests for the memory coalescer (Sections 2.1, 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.gpu.coalescer import (
    coalesce,
    lane_addresses_coalesced,
    lane_addresses_partial,
    lane_addresses_uncoalesced,
)

LINE = 128


class TestCoalesce:
    def test_same_line_merges_to_one_transaction(self):
        addresses = lane_addresses_coalesced(0, LINE)
        assert coalesce(addresses, LINE) == [0]

    def test_distinct_lines_stay_separate(self):
        addresses = lane_addresses_uncoalesced(0, LINE)
        transactions = coalesce(addresses, LINE)
        assert len(transactions) == 32
        assert transactions == [lane * LINE for lane in range(32)]

    def test_transactions_are_line_aligned(self):
        transactions = coalesce([5, 131, 999], LINE)
        assert all(address % LINE == 0 for address in transactions)

    def test_first_touch_order_preserved(self):
        assert coalesce([300, 10, 290], LINE) == [256, 0]

    def test_empty_access_list(self):
        assert coalesce([], LINE) == []


class TestLaneGenerators:
    def test_coalesced_pattern_fits_one_line(self):
        addresses = lane_addresses_coalesced(0, LINE, lanes=32, element_bytes=4)
        assert len(addresses) == 32
        assert len(coalesce(addresses, LINE)) == 1

    def test_uncoalesced_stride_spans_lines(self):
        addresses = lane_addresses_uncoalesced(0, LINE, lanes=8, stride_lines=2)
        assert addresses == [lane * 256 for lane in range(8)]
        assert len(coalesce(addresses, LINE)) == 8

    def test_partial_touches_exact_line_count(self):
        for unique in (1, 8, 16, 32):
            addresses = lane_addresses_partial(0, LINE, unique, lanes=32)
            assert len(coalesce(addresses, LINE)) == unique

    def test_partial_bounds_checked(self):
        with pytest.raises(ValueError):
            lane_addresses_partial(0, LINE, 0)
        with pytest.raises(ValueError):
            lane_addresses_partial(0, LINE, 33)

    def test_base_offset_propagates(self):
        base = 10 * LINE
        addresses = lane_addresses_uncoalesced(base, LINE, lanes=4)
        assert coalesce(addresses, LINE)[0] == base


class TestProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=64)
    )
    def test_transaction_count_equals_unique_lines(self, addresses):
        transactions = coalesce(addresses, LINE)
        assert len(transactions) == len({a // LINE for a in addresses})
        assert len(set(transactions)) == len(transactions)

    @given(
        st.integers(min_value=0, max_value=1 << 16),
        st.integers(min_value=1, max_value=32),
    )
    def test_partial_density_is_exact(self, base, unique):
        base_aligned = base * LINE
        addresses = lane_addresses_partial(base_aligned, LINE, unique)
        assert len(coalesce(addresses, LINE)) == unique

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=64))
    def test_coalescing_idempotent(self, addresses):
        once = coalesce(addresses, LINE)
        assert coalesce(once, LINE) == once

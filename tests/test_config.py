"""Unit tests for repro.config: topology maps and derived parameters."""

import dataclasses

import pytest

from repro.config import (
    ARBITRATION_POLICIES,
    ClockSkewModel,
    DramTiming,
    GpuConfig,
    VOLTA_V100,
    medium_config,
    small_config,
)


class TestVoltaDefaults:
    def test_table1_core_parameters(self):
        assert VOLTA_V100.core_clock_mhz == 1200
        assert VOLTA_V100.simt_width == 32
        assert VOLTA_V100.num_tpcs == 40
        assert VOLTA_V100.sms_per_tpc == 2
        assert VOLTA_V100.num_sms == 80

    def test_table1_memory_parameters(self):
        assert VOLTA_V100.num_l2_slices == 48
        assert VOLTA_V100.l2_slice_bytes == 96 * 1024
        assert VOLTA_V100.l1_size_bytes == 128 * 1024
        assert VOLTA_V100.num_memory_controllers == 24

    def test_table1_interconnect_parameters(self):
        assert VOLTA_V100.flit_bytes == 40
        assert VOLTA_V100.num_vcs == 1
        assert VOLTA_V100.num_subnets == 2

    def test_table1_dram_timings(self):
        dram = VOLTA_V100.dram
        assert dram.t_cl == 12
        assert dram.t_rp == 12
        assert dram.t_rc == 40
        assert dram.t_ras == 28
        assert dram.t_rcd == 12
        assert dram.t_rrd == 3

    def test_six_gpcs_with_two_disabled_tpcs(self):
        # V100: 4 GPCs of 7 TPCs + 2 GPCs of 6 TPCs = 40 (Section 3.3).
        assert VOLTA_V100.num_gpcs == 6
        assert sorted(VOLTA_V100.tpcs_per_gpc) == [6, 6, 7, 7, 7, 7]


class TestTopologyMaps:
    def test_tpc_interleaving_across_gpcs(self):
        mapping = VOLTA_V100.tpc_to_gpc_map()
        # The first num_gpcs TPCs land on distinct GPCs in order.
        assert mapping[:6] == [0, 1, 2, 3, 4, 5]
        # And the next round repeats while capacity remains.
        assert mapping[6:12] == [0, 1, 2, 3, 4, 5]

    def test_small_gpcs_skip_penultimate_round(self):
        members = VOLTA_V100.gpc_members()
        # GPC4/5 hold 6 TPCs; GPC0..3 hold 7.
        assert [len(members[g]) for g in range(6)] == [7, 7, 7, 7, 6, 6]
        # The paper's Figure 4 detail: GPC5 ends with TPC 39 (not 35,
        # which lands in GPC1) — the interleave is imperfect at the tail.
        assert members[5] == [5, 11, 17, 23, 29, 39]
        assert 35 in members[1]
        assert members[4] == [4, 10, 16, 22, 28, 38]

    def test_gpc_members_partition_all_tpcs(self):
        members = VOLTA_V100.gpc_members()
        seen = sorted(tpc for tpcs in members.values() for tpc in tpcs)
        assert seen == list(range(40))

    def test_sm_to_tpc_pairs_consecutive(self):
        for tpc in range(VOLTA_V100.num_tpcs):
            assert VOLTA_V100.tpc_sms(tpc) == [2 * tpc, 2 * tpc + 1]
        assert VOLTA_V100.sm_to_tpc(0) == 0
        assert VOLTA_V100.sm_to_tpc(1) == 0
        assert VOLTA_V100.sm_to_tpc(79) == 39

    def test_sm_to_gpc_consistent_with_tpc_map(self):
        mapping = VOLTA_V100.tpc_to_gpc_map()
        for sm in range(VOLTA_V100.num_sms):
            assert VOLTA_V100.sm_to_gpc(sm) == mapping[sm // 2]

    def test_sm_bounds_checked(self):
        with pytest.raises(ValueError):
            VOLTA_V100.sm_to_tpc(80)
        with pytest.raises(ValueError):
            VOLTA_V100.sm_to_tpc(-1)
        with pytest.raises(ValueError):
            VOLTA_V100.tpc_sms(40)


class TestValidation:
    def test_mismatched_tpcs_per_gpc_rejected(self):
        with pytest.raises(ValueError):
            GpuConfig(num_gpcs=3, tpcs_per_gpc=(2, 2))

    def test_unknown_arbitration_rejected(self):
        with pytest.raises(ValueError):
            GpuConfig(arbitration="lottery")

    def test_all_registered_policies_accepted(self):
        for policy in ARBITRATION_POLICIES:
            assert GpuConfig(arbitration=policy).arbitration == policy


class TestDerived:
    def test_cycles_to_seconds(self):
        assert VOLTA_V100.cycles_to_seconds(1_200_000_000) == pytest.approx(1.0)

    def test_replace_returns_modified_copy(self):
        changed = VOLTA_V100.replace(arbitration="srr")
        assert changed.arbitration == "srr"
        assert VOLTA_V100.arbitration == "rr"

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            VOLTA_V100.arbitration = "srr"  # type: ignore[misc]

    def test_address_to_slice_line_interleaved(self):
        line = VOLTA_V100.l2_line_bytes
        assert VOLTA_V100.address_to_slice(0) == 0
        assert VOLTA_V100.address_to_slice(line) == 1
        assert VOLTA_V100.address_to_slice(line * 48) == 0
        # Within one line, same slice.
        assert VOLTA_V100.address_to_slice(line - 1) == 0

    def test_dram_latency_ordering(self):
        dram = DramTiming()
        assert dram.row_hit_latency < dram.row_miss_latency
        assert dram.row_miss_latency <= dram.row_conflict_latency


class TestScaledConfigs:
    def test_small_config_topology(self):
        cfg = small_config()
        assert cfg.num_tpcs == 4
        assert cfg.num_sms == 8
        assert cfg.num_gpcs == 2

    def test_small_config_overrides(self):
        cfg = small_config(arbitration="srr", timing_noise=0)
        assert cfg.arbitration == "srr"
        assert cfg.timing_noise == 0

    def test_medium_config_topology(self):
        cfg = medium_config()
        assert cfg.num_tpcs == 9
        assert cfg.num_sms == 18
        assert [len(v) for v in cfg.gpc_members().values()] == [5, 4]

    def test_clock_skew_model_defaults(self):
        skew = ClockSkewModel()
        assert skew.sm_jitter < skew.tpc_jitter
        assert skew.gpc_base_max > skew.gpc_base_min

"""Unit tests for the GPC<->L2 crossbar."""

import pytest

from repro.noc.buffer import PacketQueue
from repro.noc.crossbar import Crossbar
from repro.noc.packet import Packet, READ


def packet(slice_id, flits=1, birth=0):
    return Packet(
        kind=READ, address=0, flits=flits, src_sm=0,
        slice_id=slice_id, birth_cycle=birth,
    )


def build(num_inputs=2, num_outputs=4, width=2, input_width=None,
          out_capacity=1000):
    inputs = [PacketQueue(f"in{i}", 256) for i in range(num_inputs)]
    outputs = [PacketQueue(f"out{i}", out_capacity) for i in range(num_outputs)]
    xbar = Crossbar(
        "x", inputs, outputs, route=lambda p: p.slice_id,
        width=width, input_width=input_width,
    )
    return xbar, inputs, outputs


class TestRouting:
    def test_packets_reach_routed_output(self):
        xbar, inputs, outputs = build()
        inputs[0].push(packet(slice_id=2))
        inputs[1].push(packet(slice_id=3))
        xbar.tick(0)
        assert len(outputs[2]) == 1
        assert len(outputs[3]) == 1

    def test_parallel_transfers_to_distinct_outputs(self):
        xbar, inputs, outputs = build(num_inputs=4, num_outputs=4, width=1)
        for port in range(4):
            inputs[port].push(packet(slice_id=port))
        xbar.tick(0)
        assert all(len(outputs[i]) == 1 for i in range(4))


class TestContention:
    def test_same_output_arbitrated(self):
        xbar, inputs, outputs = build(width=1)
        inputs[0].push(packet(slice_id=0))
        inputs[1].push(packet(slice_id=0))
        xbar.tick(0)
        assert len(outputs[0]) == 1  # only one grant per output per cycle
        xbar.tick(1)
        assert len(outputs[0]) == 2

    def test_head_of_line_blocking(self):
        """A blocked head really does block the packet behind it."""
        xbar, inputs, outputs = build(width=1, out_capacity=1)
        outputs[0].push(packet(slice_id=0))  # output 0 already full
        inputs[0].push(packet(slice_id=0))   # head: blocked
        inputs[0].push(packet(slice_id=1))   # behind: would fit elsewhere
        xbar.tick(0)
        assert len(outputs[1]) == 0

    def test_input_width_budget(self):
        xbar, inputs, outputs = build(width=4, input_width=1)
        inputs[0].push(packet(slice_id=0))
        inputs[0].push(packet(slice_id=1))
        xbar.tick(0)
        moved = len(outputs[0]) + len(outputs[1])
        assert moved == 1

    def test_output_width_budget_in_flits(self):
        xbar, inputs, outputs = build(width=2, input_width=8)
        inputs[0].push(packet(slice_id=0, flits=2))
        inputs[0].push(packet(slice_id=0, flits=2))
        xbar.tick(0)
        assert len(outputs[0]) == 1  # 2 flits of budget -> one 2-flit packet


class TestMultiFlit:
    def test_multi_flit_packet_spans_cycles(self):
        xbar, inputs, outputs = build(width=1)
        inputs[0].push(packet(slice_id=0, flits=3))
        for cycle in range(2):
            xbar.tick(cycle)
        assert len(outputs[0]) == 0
        xbar.tick(2)
        assert len(outputs[0]) == 1

    def test_no_packet_loss_under_random_traffic(self):
        xbar, inputs, outputs = build(num_inputs=3, num_outputs=5, width=2)
        import random

        rng = random.Random(4)
        sent = 0
        for _ in range(60):
            port = rng.randrange(3)
            if inputs[port].push(packet(slice_id=rng.randrange(5),
                                        flits=rng.randint(1, 3))):
                sent += 1
        for cycle in range(400):
            xbar.tick(cycle)
        received = sum(len(q) for q in outputs)
        assert received == sent

    def test_reset_clears_state(self):
        xbar, inputs, outputs = build(width=1)
        inputs[0].push(packet(slice_id=0, flits=3))
        xbar.tick(0)
        xbar.reset()
        assert xbar._progress == [0, 0]
        assert not inputs[0]

"""Tests for the Section-5 noise study and the handshake sync fallback."""

import random

import pytest

from repro.config import small_config
from repro.channel.handshake import (
    DEFAULT_PREAMBLE,
    HandshakeTpcChannel,
    fit_preamble,
    decode_waveform,
    waveform_timeline,
)
from repro.channel.noise import InterferedTpcChannel, run_noise_study
from repro.channel.tpc_channel import TpcCovertChannel


def random_bits(count, seed=4):
    rng = random.Random(seed)
    return [rng.randint(0, 1) for _ in range(count)]


class TestNoiseStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_noise_study(
            small_config(),
            footprint_fractions=(0.0, 0.05, 2.0),
            payload_bits=32,
            channels=[0, 1],
        )

    def test_no_interferer_is_clean(self, study):
        assert study[0].error_rate <= 0.05

    def test_small_interferer_tolerated(self, study):
        """A small-footprint third kernel only adds bandwidth noise."""
        assert study[1].error_rate <= 0.15

    def test_l2_thrashing_degrades_channel(self, study):
        """The paper's infeasibility point: an L2-scale third kernel
        pushes channel traffic to DRAM and the noise dominates."""
        assert study[2].error_rate > study[0].error_rate
        assert study[2].error_rate > 0.1

    def test_occupying_all_tpcs_excludes_interferer(self):
        """The attacker's own mitigation: claim every TPC (Section 5)."""
        config = small_config()
        channel = InterferedTpcChannel(
            config,
            channels=list(range(config.num_tpcs)),
            interferer_footprint_bytes=1 << 20,
        )
        assert channel._interferer_kernel() is None
        channel.calibrate()
        result = channel.transmit(random_bits(24))
        assert result.error_rate <= 0.1


class TestWaveformTools:
    def test_timeline_is_cumulative_midpoints(self):
        assert waveform_timeline([10, 20, 30]) == [5.0, 20.0, 45.0]

    @staticmethod
    def _synthetic_wave(symbols, slot, start, low=100.0, high=160.0,
                        total_time=None):
        """Back-to-back probe durations over a symbol schedule.

        A sample's *value is its duration*, so the waveform is built by
        walking wall time: probes inside a '1' slot take ``high`` cycles,
        everything else ``low``.
        """
        wave = []
        now = 0.0
        total = total_time or (start + slot * (len(symbols) + 4))
        while now < total:
            index = int((now - start) // slot) if now >= start else -1
            contended = 0 <= index < len(symbols) and symbols[index]
            duration = high if contended else low
            wave.append(duration)
            now += duration
        return wave

    def test_fit_preamble_locates_known_offset(self):
        slot = 400
        start = 800
        preamble = list(DEFAULT_PREAMBLE)
        wave = self._synthetic_wave(preamble, slot, start)
        fit = fit_preamble(wave, preamble, slot, payload_symbols=0)
        assert fit.score > 0
        assert abs(fit.offset_cycles - start) <= slot / 2

    def test_decode_waveform_recovers_payload(self):
        slot = 400
        preamble = list(DEFAULT_PREAMBLE)
        payload = [1, 0, 1, 1, 0]
        frame = preamble + payload
        wave = self._synthetic_wave(frame, slot, start=400)
        fit = fit_preamble(wave, preamble, slot, len(payload))
        decoded = decode_waveform(
            wave, fit, len(preamble), len(payload), slot, threshold=130.0
        )
        assert decoded == payload


class TestHandshakeChannel:
    @pytest.fixture(scope="class")
    def fuzzed_config(self):
        # Fuzz large enough to defeat the clock-synchronized channel.
        return small_config(clock_fuzz=8192)

    def test_clocked_channel_breaks_under_fuzz(self, fuzzed_config):
        channel = TpcCovertChannel(fuzzed_config)
        channel.calibrate()
        result = channel.transmit(random_bits(24))
        assert result.error_rate > 0.2

    def test_handshake_channel_survives_fuzz(self, fuzzed_config):
        """Section 6: clock fuzzing does not remove the channel because
        handshake-style synchronization remains available."""
        channel = HandshakeTpcChannel(fuzzed_config)
        channel.calibrate()
        result = channel.transmit(random_bits(24))
        assert result.error_rate <= 0.15

    def test_handshake_works_without_fuzz_too(self):
        channel = HandshakeTpcChannel(small_config())
        channel.calibrate()
        result = channel.transmit(random_bits(24))
        assert result.error_rate <= 0.15

    def test_preamble_needs_both_symbols(self):
        with pytest.raises(ValueError):
            HandshakeTpcChannel(small_config(), preamble=(1, 1, 1))

    def test_empty_payload_rejected(self):
        channel = HandshakeTpcChannel(small_config())
        with pytest.raises(ValueError):
            channel.transmit([])


class TestMpsMode:
    def test_launch_skew_tolerated_with_wide_initial_mask(self):
        from repro.channel.protocol import ChannelParams

        params = ChannelParams(initial_sync_mask=(1 << 16) - 1)
        bits = random_bits(24)
        for skew in (1000, 10000):
            channel = TpcCovertChannel(small_config(), params=params)
            channel.mps_launch_skew = skew
            channel.calibrate()
            result = channel.transmit(bits)
            assert result.error_rate <= 0.1, skew

    def test_zero_skew_is_stream_mode(self):
        channel = TpcCovertChannel(small_config())
        assert channel.mps_launch_skew == 0

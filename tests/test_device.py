"""Integration tests for the assembled GPU device."""

import pytest

from repro.config import small_config
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import Kernel
from repro.gpu.warp import MemOp, WaitCycles, READ, WRITE
from repro.gpu.coalescer import lane_addresses_uncoalesced

LINE = 128


class TestRunInterface:
    def test_run_kernels_reports_completion_cycles(self, quiet_cfg):
        device = GpuDevice(quiet_cfg)
        device.preload_region(0, 4096)

        def program(ctx):
            yield MemOp(READ, [0])

        times = device.run_kernels([Kernel(program, num_blocks=1, name="k")])
        assert times["k"] > quiet_cfg.l2_latency

    def test_run_times_out_on_stuck_kernel(self, quiet_cfg):
        device = GpuDevice(quiet_cfg)

        def forever(ctx):
            while True:
                yield WaitCycles(64)

        device.launch(Kernel(forever, num_blocks=1, name="stuck"))
        with pytest.raises(TimeoutError):
            device.run(max_cycles=2000)

    def test_multiple_kernels_complete(self, quiet_cfg):
        device = GpuDevice(quiet_cfg)
        device.preload_region(0, 8192)

        def program(ctx):
            yield MemOp(READ, [ctx.block_id * LINE])

        kernels = [
            Kernel(program, num_blocks=2, name=f"k{i}") for i in range(3)
        ]
        times = device.run_kernels(kernels)
        assert set(times) == {"k0", "k1", "k2"}

    def test_smid_of_block(self, quiet_cfg):
        device = GpuDevice(quiet_cfg)

        def program(ctx):
            yield WaitCycles(8)

        kernel = Kernel(program, num_blocks=1, name="k")
        device.run_kernels([kernel])
        assert device.smid_of_block(kernel, 0) == 0


class TestPreload:
    def test_preload_region_installs_all_lines(self, quiet_cfg):
        device = GpuDevice(quiet_cfg)
        device.preload_region(0, 64 * LINE)
        for index in range(64):
            address = index * LINE
            slice_id = quiet_cfg.address_to_slice(address)
            assert device.l2_slices[slice_id].resident(address)

    def test_preload_unaligned_base_covers_range(self, quiet_cfg):
        device = GpuDevice(quiet_cfg)
        device.preload_region(LINE + 8, 2 * LINE)
        for address in (LINE, 2 * LINE, 3 * LINE):
            slice_id = quiet_cfg.address_to_slice(address)
            assert device.l2_slices[slice_id].resident(address)


class TestDeterminism:
    def _trace(self, seed_salt=0):
        config = small_config()
        device = GpuDevice(config, seed_salt=seed_salt)
        device.preload_region(0, 64 * LINE)
        latencies = []

        def program(ctx):
            for op in range(6):
                latencies.append(
                    (
                        yield MemOp(
                            READ,
                            lane_addresses_uncoalesced(0, LINE, lanes=8),
                        )
                    )
                )

        device.run_kernels([Kernel(program, num_blocks=1, name="k")])
        return latencies

    def test_same_seed_bit_identical(self):
        assert self._trace() == self._trace()

    def test_seed_salt_changes_noise(self):
        assert self._trace(0) != self._trace(7)


class TestEndToEndTraffic:
    def test_reads_and_writes_coexist(self, quiet_cfg):
        device = GpuDevice(quiet_cfg)
        device.preload_region(0, 128 * LINE)

        def reader(ctx):
            for op in range(4):
                yield MemOp(READ, lane_addresses_uncoalesced(0, LINE, lanes=8))

        def writer(ctx):
            for op in range(4):
                yield MemOp(
                    WRITE,
                    lane_addresses_uncoalesced(64 * LINE, LINE, lanes=8),
                )

        times = device.run_kernels(
            [
                Kernel(reader, num_blocks=1, name="r"),
                Kernel(writer, num_blocks=1, name="w"),
            ]
        )
        assert times["r"] > 0 and times["w"] > 0

    def test_miss_traffic_reaches_dram(self, quiet_cfg):
        device = GpuDevice(quiet_cfg)  # nothing preloaded

        def program(ctx):
            yield MemOp(READ, [0])

        device.run_kernels([Kernel(program, num_blocks=1, name="k")])
        mc_requests = sum(
            value
            for key, value in device.stats.counters.items()
            if key.startswith("mc") and key.endswith(".requests")
        )
        assert mc_requests == 1

    def test_engine_component_count_scales_with_config(self):
        small_device = GpuDevice(small_config())
        from repro.config import VOLTA_V100

        big_device = GpuDevice(VOLTA_V100)
        assert len(big_device.engine.components) > len(
            small_device.engine.components
        )

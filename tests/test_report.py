"""Tests for the experiment report generator."""

import pytest

from repro.analysis.report import REPORT_SECTIONS, generate_report


class TestReportGenerator:
    def test_selected_sections_only(self):
        report = generate_report(sections=["tpc-discovery"])
        assert "TPC discovery" in report
        assert "Secure arbitration" not in report

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError):
            generate_report(sections=["warp-drive"])

    def test_registry_names(self):
        assert {
            "tpc-discovery", "contention", "covert-channel",
            "defense", "side-channel",
        } == set(REPORT_SECTIONS)

    def test_defense_section_reports_srr_flat(self):
        report = generate_report(sections=["defense"])
        assert "SRR" in report
        assert "0.0" in report  # the flat slope appears

    def test_covert_channel_section_reports_bandwidth(self):
        report = generate_report(sections=["covert-channel"])
        assert "bandwidth (Mbps)" in report
        assert "error rate" in report

    def test_report_is_markdown(self):
        report = generate_report(sections=["tpc-discovery"])
        assert report.startswith("# repro experiment report")
        assert "## TPC discovery" in report


class TestReportSection:
    def test_render_has_heading_and_trailing_blank(self):
        from repro.analysis.report import ReportSection

        section = ReportSection("Demo", ["line one", "line two"])
        rendered = section.render()
        assert rendered.splitlines()[0] == "## Demo"
        assert rendered.endswith("\n")
        assert "line one" in rendered

    def test_render_empty_body(self):
        from repro.analysis.report import ReportSection

        assert ReportSection("Empty").render() == "## Empty\n\n"

    def test_default_report_covers_every_section(self):
        from repro.analysis.report import REPORT_SECTIONS

        report = generate_report()
        assert report.count("## ") == len(REPORT_SECTIONS)

"""Tests for the secure-arbitration countermeasures (Section 6, Fig 15)."""

import pytest

from repro.config import small_config
from repro.defense.arbitration_study import (
    arbitration_leakage_sweep,
    covert_channel_under_policy,
    srr_performance_cost,
)


@pytest.fixture(scope="module")
def cfg():
    return small_config(timing_noise=0)


@pytest.fixture(scope="module")
def sweep(cfg):
    return arbitration_leakage_sweep(
        cfg, fractions=(0.0, 0.25, 0.5, 0.75, 1.0), ops=10
    )


class TestFigure15:
    def test_rr_leaks_linearly(self, sweep):
        assert sweep.slope("rr") > 0.6

    def test_crr_still_leaks(self, sweep):
        """Coarse-grain arbitration does not mitigate the channel."""
        assert sweep.slope("crr") > 0.4

    def test_srr_is_flat(self, sweep):
        assert abs(sweep.slope("srr")) < 0.05
        series = sweep.series["srr"]
        assert max(series) - min(series) < 0.05

    def test_rr_reaches_2x_at_full_contention(self, sweep):
        assert sweep.series["rr"][-1] == pytest.approx(2.0, rel=0.15)

    def test_all_policies_share_baseline(self, sweep):
        for policy in ("rr", "crr", "srr"):
            assert sweep.series[policy][0] == pytest.approx(1.0, rel=0.02)


class TestEndToEndDefense:
    def test_srr_defeats_covert_channel(self):
        outcome = covert_channel_under_policy(
            small_config(), "srr", payload_bits=40
        )
        assert outcome.channel_defeated
        assert outcome.error_rate > 0.25

    def test_rr_permits_covert_channel(self):
        outcome = covert_channel_under_policy(
            small_config(), "rr", payload_bits=40
        )
        assert not outcome.channel_defeated
        assert outcome.error_rate <= 0.05

    def test_age_based_does_not_mitigate(self):
        """Global fairness is not isolation (Section 6)."""
        outcome = covert_channel_under_policy(
            small_config(), "age", payload_bits=40
        )
        assert not outcome.channel_defeated


class TestSrrCost:
    def test_memory_intensive_pays_up_to_2x(self, cfg):
        report = srr_performance_cost(cfg, ops=10)
        assert report.slowdowns["memory-intensive"] == pytest.approx(
            2.0, rel=0.15
        )

    def test_compute_intensive_barely_affected(self, cfg):
        report = srr_performance_cost(cfg, ops=10)
        assert report.slowdowns["compute-intensive"] < 1.25

"""Supervised sweep execution: the failure taxonomy, end to end.

Every test is seeded and deterministic; fault schedules come from the
chaos workload's on-disk attempt ledger, timeouts are tens of
milliseconds, and backoff jitter is content-hash derived — no wall-clock
entropy anywhere.
"""

import multiprocessing
import time

import pytest

from repro.config import SweepSupervision, small_config
from repro.runner import (
    JobFailure,
    ResultCache,
    SimJob,
    SweepError,
    SweepJournal,
    run_jobs,
    run_supervised,
)
from repro.runner.chaos import CHAOS_FN, CHAOS_STATE_ENV, attempts_recorded
from repro.runner.supervisor import backoff_delay


def double(config, factor=2):
    """Trivial healthy workload (picklable by dotted path)."""
    return {"seed": config.seed, "value": config.seed * factor}


DOUBLE = f"{__name__}.double"

#: Fast test policy: tiny backoff, no timeout unless a test sets one.
FAST = SweepSupervision(backoff_base_s=0.01, backoff_max_s=0.04)


def chaos_job(token, plan, value=1, hang_s=5.0):
    return SimJob(
        fn=CHAOS_FN,
        config=small_config(),
        params={"token": token, "plan": plan, "value": value,
                "hang_s": hang_s},
    )


@pytest.fixture
def chaos_state(tmp_path, monkeypatch):
    state = tmp_path / "chaos-state"
    monkeypatch.setenv(CHAOS_STATE_ENV, str(state))
    return state


class TestHealthySweeps:
    def _jobs(self, count=4):
        config = small_config()
        return [SimJob(fn=DOUBLE, config=config, seed=seed)
                for seed in range(1, count + 1)]

    def test_matches_legacy_results_in_job_order(self):
        jobs = self._jobs(5)
        legacy = run_jobs(jobs, workers=2, supervised=False)
        outcome = run_supervised(jobs, workers=2, policy=FAST)
        assert outcome.results == legacy
        assert outcome.ok
        assert outcome.counters["attempts"] == 5

    def test_progress_sees_every_completion(self):
        seen = []
        run_supervised(
            self._jobs(3), workers=1, policy=FAST,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_empty_sweep(self):
        outcome = run_supervised([], policy=FAST)
        assert outcome.results == []
        assert outcome.ok

    def test_write_through_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = self._jobs(3)
        first = run_supervised(jobs, workers=1, cache=cache, policy=FAST)
        assert cache.misses == 3
        second = run_supervised(jobs, workers=1, cache=cache, policy=FAST)
        assert cache.hits == 3
        assert second.results == first.results
        assert second.counters["cache_hits"] == 3
        assert second.counters.get("attempts", 0) == 0


class TestTimeoutKillRetry:
    def test_hung_worker_is_killed_and_retry_succeeds(self, chaos_state):
        job = chaos_job("hangs", "hang,ok", value=7)
        policy = FAST.replace(timeout_s=0.1, max_attempts=2)
        start = time.monotonic()
        outcome = run_supervised([job], workers=1, policy=policy)
        elapsed = time.monotonic() - start
        assert outcome.ok
        assert outcome.results[0]["value"] == 7
        assert outcome.counters["failures_timeout"] == 1
        assert outcome.counters["retries"] == 1
        assert outcome.counters["attempts"] == 2
        # The 5s injected hang must not be waited out.
        assert elapsed < 3.0
        assert attempts_recorded(chaos_state, "hangs") == 2

    def test_permanent_hang_exhausts_attempts(self, chaos_state):
        job = chaos_job("wedged", "hang")
        policy = FAST.replace(timeout_s=0.05, max_attempts=2)
        outcome = run_supervised([job], workers=1, policy=policy)
        assert not outcome.ok
        failure = outcome.results[0]
        assert isinstance(failure, JobFailure)
        assert failure.kind == "timeout"
        assert failure.attempts == 2
        assert len(failure.history) == 2

    def test_no_leaked_workers_after_kills(self, chaos_state):
        job = chaos_job("wedged2", "hang")
        policy = FAST.replace(timeout_s=0.05, max_attempts=2)
        run_supervised([job], workers=1, policy=policy)
        assert multiprocessing.active_children() == []


class TestCrashIsolation:
    def test_worker_death_is_contained_and_retried(self, chaos_state):
        jobs = [chaos_job("dies", "exit,ok", value=3),
                chaos_job("fine", "ok", value=4)]
        outcome = run_supervised(jobs, workers=2, policy=FAST)
        assert outcome.ok
        assert outcome.results[0]["value"] == 3
        assert outcome.results[1]["value"] == 4
        assert outcome.counters["failures_worker_death"] == 1

    def test_exception_yields_structured_failure_not_abort(
        self, chaos_state
    ):
        jobs = [chaos_job("boom", "raise"), chaos_job("ok1", "ok", value=9)]
        policy = FAST.replace(max_attempts=3)
        outcome = run_supervised(jobs, workers=2, policy=policy)
        failure = outcome.results[0]
        assert isinstance(failure, JobFailure)
        assert failure.kind == "exception"
        assert "chaos: injected exception" in failure.message
        assert failure.attempts == 3
        # Sibling job unharmed.
        assert outcome.results[1]["value"] == 9
        assert outcome.failures == [failure]
        # History records every attempt with a traceback detail.
        assert [h["attempt"] for h in failure.history] == [1, 2, 3]
        assert all("RuntimeError" in h["detail"] for h in failure.history)

    def test_failure_manifest_shape(self, chaos_state):
        jobs = [chaos_job("boom2", "raise")]
        outcome = run_supervised(
            jobs, workers=1, policy=FAST.replace(max_attempts=1)
        )
        manifest = outcome.manifest()
        assert manifest["ok"] is False
        assert manifest["jobs"] == 1
        (entry,) = manifest["failures"]
        assert entry["kind"] == "exception"
        assert entry["key"] == outcome.failures[0].key


class TestStrictMode:
    def test_run_jobs_strict_raises_after_completion(
        self, chaos_state, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        jobs = [chaos_job("sick", "raise"), chaos_job("well", "ok", value=5)]
        with pytest.raises(SweepError) as excinfo:
            run_jobs(jobs, workers=2, cache=cache, retries=0,
                     policy=FAST, strict=True)
        error = excinfo.value
        assert len(error.failures) == 1
        assert error.failures[0].index == 0
        # The healthy sibling completed and was cached before the raise.
        assert error.results[1]["value"] == 5
        key = cache.key(jobs[1].fn, jobs[1].resolved_config(),
                        jobs[1].params)
        stored = cache.get(key)
        assert stored["token"] == "well"
        assert stored["value"] == 5

    def test_run_jobs_graceful_returns_failures_inline(self, chaos_state):
        jobs = [chaos_job("sick2", "raise"), chaos_job("well2", "ok")]
        results = run_jobs(jobs, workers=2, retries=0, policy=FAST,
                           strict=False)
        assert isinstance(results[0], JobFailure)
        assert results[1]["token"] == "well2"

    def test_run_jobs_defaults_to_legacy_path(self):
        # No supervision kwargs -> the bare pool path (exceptions
        # propagate raw, as before this module existed).
        jobs = [SimJob(fn=DOUBLE, config=small_config(), seed=1)]
        assert run_jobs(jobs, workers=1)[0]["value"] == 2


class TestBackoff:
    def test_deterministic_and_bounded(self):
        policy = SweepSupervision(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.5,
            backoff_jitter=0.25,
        )
        first = backoff_delay(policy, "deadbeef", 1)
        assert first == backoff_delay(policy, "deadbeef", 1)
        assert 0.1 <= first <= 0.1 * 1.25
        # Exponential growth, capped.
        assert backoff_delay(policy, "deadbeef", 4) <= 0.5 * 1.25
        # Distinct jobs decorrelate.
        assert backoff_delay(policy, "deadbeef", 1) != backoff_delay(
            policy, "cafebabe", 1
        )

    def test_zero_jitter_is_pure_exponential(self):
        policy = SweepSupervision(
            backoff_base_s=0.1, backoff_factor=3.0, backoff_max_s=10.0,
            backoff_jitter=0.0,
        )
        assert backoff_delay(policy, "k", 1) == pytest.approx(0.1)
        assert backoff_delay(policy, "k", 2) == pytest.approx(0.3)
        assert backoff_delay(policy, "k", 3) == pytest.approx(0.9)


class TestPolicyKnobs:
    def test_validation(self):
        with pytest.raises(ValueError):
            SweepSupervision(timeout_s=0)
        with pytest.raises(ValueError):
            SweepSupervision(max_attempts=0)
        with pytest.raises(ValueError):
            SweepSupervision(backoff_factor=0.5)
        with pytest.raises(ValueError):
            SweepSupervision(backoff_jitter=2.0)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_TIMEOUT_S", "12.5")
        monkeypatch.setenv("REPRO_SWEEP_ATTEMPTS", "5")
        monkeypatch.setenv("REPRO_SWEEP_BACKOFF_S", "0.25")
        policy = SweepSupervision.from_env()
        assert policy.timeout_s == 12.5
        assert policy.max_attempts == 5
        assert policy.backoff_base_s == 0.25

    def test_from_env_ignores_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_TIMEOUT_S", "soon")
        policy = SweepSupervision.from_env()
        assert policy.timeout_s is None

    def test_run_jobs_timeout_and_retries_build_policy(self, chaos_state):
        # retries=1 -> 2 attempts: "raise,ok" recovers.
        jobs = [chaos_job("flaky", "raise,ok", value=2)]
        results = run_jobs(jobs, workers=1, retries=1, policy=FAST)
        assert results[0]["value"] == 2


class TestTeardown:
    def test_progress_exception_kills_inflight_and_flushes_journal(
        self, chaos_state, tmp_path
    ):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        jobs = [chaos_job(f"t{i}", "ok", value=i + 1) for i in range(3)]

        calls = []

        def progress(done, total):
            calls.append(done)
            if done == 2:
                raise RuntimeError("observer crashed")

        with pytest.raises(RuntimeError, match="observer crashed"):
            run_supervised(jobs, workers=1, policy=FAST,
                           progress=progress, journal=journal)
        assert multiprocessing.active_children() == []
        # The journal kept everything completed before the crash.
        state = journal.load()
        assert len(state.results) == 2

    def test_resume_after_partial_journal(self, chaos_state, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        jobs = [chaos_job(f"r{i}", "ok", value=i + 1) for i in range(4)]

        def explode_late(done, total):
            if done == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_supervised(jobs, workers=1, policy=FAST,
                           progress=explode_late,
                           journal=SweepJournal(journal_path))
        executed_before = [
            attempts_recorded(chaos_state, f"r{i}") for i in range(4)
        ]
        assert sum(executed_before) == 2

        outcome = run_supervised(
            jobs, workers=1, policy=FAST,
            journal=SweepJournal(journal_path), resume=True,
        )
        assert outcome.ok
        assert [r["value"] for r in outcome.results] == [1, 2, 3, 4]
        assert outcome.counters["journal_replays"] == 2
        # Only the two missing points executed on resume.
        executed_after = [
            attempts_recorded(chaos_state, f"r{i}") for i in range(4)
        ]
        assert sum(executed_after) == 4
        assert executed_after[:2] == executed_before[:2]

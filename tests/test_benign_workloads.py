"""Tests for the benign workload suite and the SRR cost spectrum."""

import pytest

from repro.config import small_config
from repro.defense import srr_workload_cost_study
from repro.gpu.benign import (
    BENIGN_WORKLOADS,
    benign_footprint,
    make_benign_kernel,
)
from repro.gpu.device import GpuDevice


@pytest.fixture(scope="module")
def cfg():
    return small_config(timing_noise=0)


def run_workload(cfg, name, ops=12, active_sms=None):
    device = GpuDevice(cfg)
    active = active_sms or {0}
    kernel = make_benign_kernel(cfg, name, ops=ops, active_sms=active)
    device.preload_region(0, benign_footprint(cfg))
    for sm in active:
        device.preload_region(sm * (1 << 16), benign_footprint(cfg))
    times = device.run_kernels([kernel])
    return device, kernel, times


class TestSuite:
    def test_registry_names(self):
        assert {
            "streaming", "strided", "pointer_chase", "compute",
            "bursty", "write_stream", "mixed_rw",
        } == set(BENIGN_WORKLOADS)

    @pytest.mark.parametrize("name", sorted(BENIGN_WORKLOADS))
    def test_every_workload_completes(self, cfg, name):
        device, kernel, times = run_workload(cfg, name)
        assert kernel.done
        assert times[kernel.name] > 0

    def test_inactive_sms_do_nothing(self, cfg):
        device, kernel, _ = run_workload(cfg, "streaming", active_sms={3})
        assert device.stats.counters.get("sm3.mem_ops", 0) > 0
        assert device.stats.counters.get("sm0.mem_ops", 0) == 0

    def test_compute_is_lighter_than_streaming(self, cfg):
        _, _, compute_times = run_workload(cfg, "compute", ops=8)
        device, _, _ = run_workload(cfg, "streaming", ops=8)
        streaming_txns = device.stats.counters.get("sm0.transactions", 0)
        device2, _, _ = run_workload(cfg, "compute", ops=8)
        compute_txns = device2.stats.counters.get("sm0.transactions", 0)
        assert compute_txns < streaming_txns / 4

    def test_pointer_chase_is_serial(self, cfg):
        device, _, _ = run_workload(cfg, "pointer_chase", ops=8)
        # One transaction per op: a dependent chain.
        assert device.stats.counters.get("sm0.transactions", 0) == 8

    def test_unknown_workload_rejected(self, cfg):
        with pytest.raises(ValueError):
            make_benign_kernel(cfg, "nonsense")


class TestSrrCostSpectrum:
    @pytest.fixture(scope="class")
    def report(self):
        return srr_workload_cost_study(small_config(), ops=40)

    def test_covers_whole_suite(self, report):
        assert set(report.slowdowns) == set(BENIGN_WORKLOADS)

    def test_compute_workloads_pay_nothing(self, report):
        assert report.slowdowns["compute"] == pytest.approx(1.0, abs=0.05)
        assert report.slowdowns["pointer_chase"] == pytest.approx(
            1.0, abs=0.05
        )

    def test_write_stream_pays_the_full_2x(self, report):
        """Section 6's bound: bandwidth-bound kernels lose ~2x under SRR."""
        assert report.slowdowns["write_stream"] == pytest.approx(
            2.0, rel=0.1
        )

    def test_latency_bound_reads_pay_little(self, report):
        assert report.slowdowns["streaming"] < 1.3

    def test_ordering_compute_lowest_write_stream_highest(self, report):
        assert (
            report.slowdowns["compute"]
            <= min(report.slowdowns.values()) + 0.05
        )
        assert report.slowdowns["write_stream"] == max(
            report.slowdowns.values()
        )

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices(self):
        args = build_parser().parse_args(["--scale", "medium", "info"])
        assert args.scale == "medium"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "huge", "info"])

    def test_fig10_panel_choices(self):
        args = build_parser().parse_args(
            ["fig10", "--panel", "multi-tpc", "--iterations", "2", "4"]
        )
        assert args.panel == "multi-tpc"
        assert args.iterations == [2, 4]


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GPCs" in out
        assert "TPCs" in out

    def test_transmit_round_trip(self, capsys):
        assert main(["transmit", "--message", "ok"]) == 0
        out = capsys.readouterr().out
        assert "b'ok'" in out
        assert "error rate" in out

    def test_fig6_runs(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "intra-TPC skew" in out

    def test_fig2_runs(self, capsys):
        assert main(["fig2", "--ops", "6"]) == 0
        out = capsys.readouterr().out
        assert "TPC sibling" in out

    def test_fig10_single_point(self, capsys):
        assert main(
            ["fig10", "--panel", "tpc", "--iterations", "4", "--bits", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "bit rate" in out


class TestTraceCommand:
    def test_trace_transmit_writes_chrome_trace(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        assert main(
            ["trace", "--figure", "transmit", "--out", str(out), "--bits", "4"]
        ) == 0
        stdout = capsys.readouterr().out
        assert "traced transmit" in stdout
        assert str(out) in stdout
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
        assert all("ph" in e and "pid" in e for e in payload["traceEvents"])
        assert any("ts" in e for e in payload["traceEvents"])

    def test_trace_fig2_runs(self, tmp_path, capsys):
        out = tmp_path / "fig2-trace.json"
        assert main(
            ["trace", "--figure", "fig2", "--out", str(out), "--ops", "2"]
        ) == 0
        assert out.is_file()

    def test_trace_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--figure", "fig99"])


class TestFuzzCommand:
    def test_single_run_exits_zero(self, capsys):
        assert main(
            ["fuzz", "--runs", "1", "--cycles", "20000", "--no-oracle"]
        ) == 0
        out = capsys.readouterr().out
        assert "1 case(s), 0 failure(s)" in out
        assert "ok" in out

    def test_quick_defaults_to_six_runs(self):
        args = build_parser().parse_args(["fuzz", "--quick"])
        assert args.quick and args.runs is None


class TestValidateFlag:
    def test_transmit_with_validation_enabled(self, capsys):
        assert main(["--validate", "transmit", "--message", "hi"]) == 0
        out = capsys.readouterr().out
        assert "b'hi'" in out


class TestChaosCommand:
    def test_quick_drill_writes_manifest(self, tmp_path, capsys):
        import json

        manifest = tmp_path / "chaos-manifest.json"
        assert main(
            ["chaos", "--quiet", "--jobs", "6", "--timeout", "0.3",
             "--kind", "transient-raise", "--kind", "transient-exit",
             "--manifest", str(manifest)]
        ) == 0
        out = capsys.readouterr().out
        assert "chaos drill: OK" in out
        assert "quarantined" in out
        payload = json.loads(manifest.read_text())
        assert payload["ok"] is True
        assert payload["jobs"] == 6
        assert payload["counters"]["failures_exception"] >= 1
        assert payload["counters"]["failures_worker_death"] >= 1

    def test_unknown_kind_exits_two(self, capsys):
        assert main(["chaos", "--kind", "meteor-strike"]) == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_quick_defaults(self):
        args = build_parser().parse_args(["chaos", "--quick"])
        assert args.quick and args.jobs is None and args.timeout is None


class TestSweepSupervisionFlags:
    @pytest.fixture(autouse=True)
    def _isolated_dirs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path / "sweeps"))
        self.tmp_path = tmp_path

    def test_parser_accepts_supervision_flags(self):
        args = build_parser().parse_args(
            ["fig10", "--timeout", "30", "--retries", "2",
             "--keep-going", "--resume", "--journal", "x.jsonl"]
        )
        assert args.timeout == 30.0
        assert args.retries == 2
        assert args.keep_going and args.resume
        assert args.journal == "x.jsonl"

    def test_fig10_journal_then_resume_replays(self, capsys):
        argv = ["fig10", "--iterations", "1", "--bits", "4",
                "--no-cache", "--retries", "0"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert (self.tmp_path / "sweeps" / "fig10-small.jsonl").is_file()

        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "resumed from" in second
        assert "1 point(s) replayed" in second
        # The replayed table is bit-identical to the executed one.
        assert first.splitlines()[-4:] == second.splitlines()[-4:]


class TestGoldenCommand:
    @pytest.fixture(autouse=True)
    def _isolated_dirs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        self.golden_dir = tmp_path / "golden"

    def _golden(self, *argv):
        return main(
            ["golden", *argv, "--golden-dir", str(self.golden_dir)]
        )

    def test_list_shows_registry_and_missing_goldens(self, capsys):
        assert self._golden("list") == 0
        out = capsys.readouterr().out
        assert "fig7_8" in out
        assert "fig7_8.sharing_slope" in out
        assert "no" in out  # nothing recorded in the isolated dir

    def test_record_then_check_round_trip(self, capsys):
        assert self._golden("record", "--artifact", "fig7_8") == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert (self.golden_dir / "small" / "fig7_8.json").is_file()

        # Second record keeps the existing snapshot untouched.
        assert self._golden("record", "--artifact", "fig7_8") == 0
        assert "keep" in capsys.readouterr().out

        # The check replays from the ResultCache and passes drift.
        assert self._golden("check", "--artifact", "fig7_8") == 0
        out = capsys.readouterr().out
        assert "PASS fig7_8.sharing_slope" in out
        assert "1 passed, 0 failed" in out

    def test_check_without_golden_is_expectations_only(
        self, tmp_path, capsys
    ):
        report = tmp_path / "report.json"
        assert self._golden(
            "check", "--artifact", "fig7_8",
            "--seeds", "11", "--param", "ops=1",
            "--param", "fractions=(0.0,1.0)",
            "--report", str(report),
        ) == 0
        out = capsys.readouterr().out
        assert "1 passed, 0 failed" in out
        assert "DRIFT" not in out  # custom sweep skips the drift check
        import json

        payload = json.loads(report.read_text())
        assert payload["passed"] is True
        assert payload["artifacts"][0]["artifact"] == "fig7_8"

    def test_perturbed_check_fails_with_exit_one(self, capsys):
        assert self._golden(
            "check", "--artifact", "fig7_8",
            "--seeds", "11", "--param", "ops=1",
            "--param", "fractions=(0.0,1.0)",
            "--override", "arbitration=srr",
        ) == 1
        out = capsys.readouterr().out
        assert "FAIL fig7_8.sharing_slope" in out

    def test_unknown_artifact_rejected(self, capsys):
        with pytest.raises(KeyError):
            self._golden("check", "--artifact", "fig99")

    def test_bad_scale_exits_two(self, capsys):
        assert main(
            ["--scale", "pascal", "golden", "list",
             "--golden-dir", str(self.golden_dir)]
        ) == 2


class TestMetricsCommand:
    @pytest.fixture(autouse=True)
    def _isolated_dirs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path / "sweeps"))
        self.tmp_path = tmp_path

    def _manifest(self, capsys):
        import json

        path = self.tmp_path / "metrics.json"
        assert main(
            ["metrics", "--iterations", "1", "--bits", "4",
             "--json", str(path)]
        ) == 0
        return json.loads(path.read_text()), capsys.readouterr().out

    def test_sweep_emits_prometheus_and_manifest(self, capsys):
        payload, out = self._manifest(capsys)
        assert "# TYPE sweep_jobs_total counter" in out
        assert 'sweep_jobs_total{state="completed"} 1' in out
        # Engine self-profiles from the fresh job fold into the output.
        assert "engine_profile_samples_total" in out
        assert "Infinity" not in self.tmp_path.joinpath(
            "metrics.json"
        ).read_text()
        families = payload["metrics"]
        assert families["sweep_jobs_total"]["kind"] == "counter"
        assert families["sweep_worker_lifetime_seconds"]["kind"] == "sampler"
        assert "engine_fast_forward_span_cycles" in families

    def test_merge_doubles_shard_counters(self, capsys):
        self._manifest(capsys)  # writes metrics.json, drains capsys
        shard = str(self.tmp_path / "metrics.json")
        assert main(["metrics", "--merge", shard, shard]) == 0
        out = capsys.readouterr().out
        assert 'sweep_jobs_total{state="completed"} 2' in out


class TestBenchHistoryCommand:
    def _report(self, tmp_path, factor=1.0):
        import json

        report = {
            "scales": {"num_sms": 4, "num_l2_slices": 2},
            "num_bits": 6,
            "workloads": {
                "tpc_channel": {
                    "naive_cycles_per_s": 1000.0 * factor,
                    "active_cycles_per_s": 4000.0 * factor,
                    "identical": True,
                },
            },
        }
        path = tmp_path / f"report_{factor}.json"
        path.write_text(json.dumps(report))
        return report, str(path)

    def test_from_report_regression_exits_three(self, tmp_path, capsys):
        from repro.metrics import append_history, bench_record

        history = tmp_path / "hist.jsonl"
        baseline, _ = self._report(tmp_path)
        for ts in (1.0, 2.0, 3.0):
            append_history(bench_record(baseline, timestamp=ts), history)

        _, bad_path = self._report(tmp_path, factor=0.5)
        assert main(
            ["bench", "--from-report", bad_path, "--check-history",
             "--history-file", str(history)]
        ) == 3
        assert "REGRESSION" in capsys.readouterr().out

        _, good_path = self._report(tmp_path, factor=1.05)
        assert main(
            ["bench", "--from-report", good_path, "--check-history",
             "--history-file", str(history)]
        ) == 0

    def test_from_report_without_baseline_is_ok(self, tmp_path, capsys):
        _, path = self._report(tmp_path)
        assert main(
            ["bench", "--from-report", path, "--check-history",
             "--history-file", str(tmp_path / "empty.jsonl")]
        ) == 0
        assert "skipped" in capsys.readouterr().out.lower()

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices(self):
        args = build_parser().parse_args(["--scale", "medium", "info"])
        assert args.scale == "medium"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "huge", "info"])

    def test_fig10_panel_choices(self):
        args = build_parser().parse_args(
            ["fig10", "--panel", "multi-tpc", "--iterations", "2", "4"]
        )
        assert args.panel == "multi-tpc"
        assert args.iterations == [2, 4]


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GPCs" in out
        assert "TPCs" in out

    def test_transmit_round_trip(self, capsys):
        assert main(["transmit", "--message", "ok"]) == 0
        out = capsys.readouterr().out
        assert "b'ok'" in out
        assert "error rate" in out

    def test_fig6_runs(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "intra-TPC skew" in out

    def test_fig2_runs(self, capsys):
        assert main(["fig2", "--ops", "6"]) == 0
        out = capsys.readouterr().out
        assert "TPC sibling" in out

    def test_fig10_single_point(self, capsys):
        assert main(
            ["fig10", "--panel", "tpc", "--iterations", "4", "--bits", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "bit rate" in out

"""Unit tests for the thread-block scheduler (Section 4.3 policy)."""

import pytest

from repro.config import VOLTA_V100, small_config
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import Kernel, Stream
from repro.gpu.scheduler import dispatch_order
from repro.gpu.warp import WaitCycles


def idle_program(hold=32):
    def program(ctx):
        yield WaitCycles(hold)

    return program


class TestDispatchOrder:
    def test_small_config_order_interleaves_gpcs(self):
        # GPC0 = TPC {0, 2}, GPC1 = TPC {1, 3}: first SMs first,
        # alternating GPCs, then the second SMs.
        order = dispatch_order(small_config())
        assert order == [0, 2, 4, 6, 1, 3, 5, 7]

    def test_order_covers_every_sm_once(self):
        for config in (small_config(), VOLTA_V100):
            order = dispatch_order(config)
            assert sorted(order) == list(range(config.num_sms))

    def test_first_wave_hits_every_tpc_before_doubling(self):
        config = VOLTA_V100
        order = dispatch_order(config)
        first_wave = order[: config.num_tpcs]
        tpcs = [config.sm_to_tpc(sm) for sm in first_wave]
        assert len(set(tpcs)) == config.num_tpcs

    def test_first_wave_interleaves_gpcs(self):
        config = VOLTA_V100
        order = dispatch_order(config)
        gpcs = [config.sm_to_gpc(sm) for sm in order[: config.num_gpcs]]
        assert gpcs == list(range(config.num_gpcs))


class TestPlacement:
    def test_sender_receiver_grids_colocate_per_tpc(self):
        """The paper's trick: N blocks then N blocks -> one of each per TPC."""
        config = small_config()
        device = GpuDevice(config)
        sender = Kernel(idle_program(), num_blocks=config.num_tpcs, name="s")
        receiver = Kernel(idle_program(), num_blocks=config.num_tpcs, name="r")
        device.run_kernels([sender, receiver])
        for block in range(config.num_tpcs):
            sender_tpc = config.sm_to_tpc(sender.blocks[block].sm_id)
            receiver_tpc = config.sm_to_tpc(receiver.blocks[block].sm_id)
            assert sender_tpc == receiver_tpc
            assert sender.blocks[block].sm_id != receiver.blocks[block].sm_id

    def test_blocks_fill_in_launch_order(self):
        config = small_config()
        device = GpuDevice(config)
        kernel = Kernel(idle_program(), num_blocks=config.num_sms, name="k")
        device.run_kernels([kernel])
        assert kernel.placement() == dispatch_order(config)

    def test_excess_blocks_wait_for_free_slots(self):
        config = small_config(max_blocks_per_sm=1, max_warps_per_sm=1)
        device = GpuDevice(config)
        kernel = Kernel(
            idle_program(hold=16),
            num_blocks=config.num_sms + 3,
            name="k",
        )
        device.run_kernels([kernel])
        assert kernel.done
        assert all(sm_id is not None for sm_id in kernel.placement())

    def test_streams_serialize_their_kernels(self):
        config = small_config()
        device = GpuDevice(config)
        stream = device.create_stream("s")
        finished = []

        def tagged(tag):
            def program(ctx):
                yield WaitCycles(16)
                finished.append(tag)

            return program

        first = Kernel(tagged("first"), num_blocks=1, name="a")
        second = Kernel(tagged("second"), num_blocks=1, name="b")
        device.launch(first, stream)
        device.launch(second, stream)
        device.run()
        assert finished == ["first", "second"]

    def test_concurrent_streams_overlap(self):
        config = small_config()
        device = GpuDevice(config)
        long_kernel = Kernel(idle_program(hold=500), num_blocks=1, name="long")
        short_kernel = Kernel(idle_program(hold=10), num_blocks=1, name="short")
        times = device.run_kernels([long_kernel, short_kernel])
        assert times["short"] < times["long"]

    def test_retired_blocks_free_their_sm(self):
        config = small_config(max_blocks_per_sm=1, max_warps_per_sm=2)
        device = GpuDevice(config)
        waves = Kernel(
            idle_program(hold=8), num_blocks=config.num_sms * 3, name="w"
        )
        device.run_kernels([waves])
        assert waves.done


class TestKernelObjects:
    def test_kernel_validates_grid(self):
        with pytest.raises(ValueError):
            Kernel(idle_program(), num_blocks=0)
        with pytest.raises(ValueError):
            Kernel(idle_program(), num_blocks=1, warps_per_block=0)

    def test_stream_busy_flag(self):
        stream = Stream("s")
        assert not stream.busy
        stream.enqueue(Kernel(idle_program(), num_blocks=1))
        assert stream.busy

    def test_kernel_done_requires_all_blocks(self):
        config = small_config()
        device = GpuDevice(config)
        kernel = Kernel(idle_program(hold=100), num_blocks=2, name="k")
        device.launch(kernel)
        device.engine.step(10)
        assert not kernel.done
        device.run()
        assert kernel.done

"""Capacity-surface tests: interpolation, confidence, staleness, metrics.

:class:`CapacitySurface` turns swept (config → bandwidth/error) points
into a queryable model.  These tests pin the query semantics — exact
lookups pool repeated samples, off-grid 1-D queries interpolate
piecewise-linearly between brackets, out-of-hull queries clamp to the
nearest point with reduced confidence — plus the staleness contract
(code-version and age bounds) and the query counters.
"""

import pytest

from repro.metrics.registry import MetricsRegistry
from repro.runner.cache import code_version
from repro.runner.surface import (
    CapacitySurface,
    Prediction,
    StaleSurfaceError,
)


def _rows():
    return [
        {"iterations": 1, "bandwidth_kbps": 100.0, "error_rate": 0.30},
        {"iterations": 2, "bandwidth_kbps": 80.0, "error_rate": 0.10},
        {"iterations": 4, "bandwidth_kbps": 50.0, "error_rate": 0.02},
    ]


def _surface(**kwargs):
    kwargs.setdefault("metrics", MetricsRegistry())
    return CapacitySurface.from_rows(_rows(), **kwargs)


class TestQueries:
    def test_exact_point(self):
        pred = _surface().predict(iterations=2)
        assert isinstance(pred, Prediction)
        assert pred.source == "exact"
        assert pred.bandwidth_kbps == pytest.approx(80.0)
        assert pred.error_rate == pytest.approx(0.10)
        assert pred.confidence == 1.0
        assert pred.distance == 0.0

    def test_exact_point_pools_repeated_samples(self):
        surface = CapacitySurface(metrics=MetricsRegistry())
        surface.add({"iterations": 1, "bandwidth_kbps": 100.0, "error_rate": 0.2})
        surface.add({"iterations": 1, "bandwidth_kbps": 110.0, "error_rate": 0.4})
        pred = surface.predict(iterations=1)
        assert pred.bandwidth_kbps == pytest.approx(105.0)
        assert pred.error_rate == pytest.approx(0.3)
        assert pred.samples == 2

    def test_linear_interpolation_between_brackets(self):
        pred = _surface().predict(iterations=3)
        assert pred.source == "interpolated"
        # Halfway between (2, 80) and (4, 50).
        assert pred.bandwidth_kbps == pytest.approx(65.0)
        assert pred.error_rate == pytest.approx(0.06)
        assert 0.0 < pred.confidence < 1.0

    def test_nearest_clamp_beyond_hull(self):
        surface = _surface()
        low = surface.predict(iterations=0)
        high = surface.predict(iterations=9)
        assert low.source == "nearest"
        assert low.bandwidth_kbps == pytest.approx(100.0)
        assert high.source == "nearest"
        assert high.bandwidth_kbps == pytest.approx(50.0)
        assert high.confidence <= 0.5

    def test_confidence_orders_by_distance(self):
        surface = _surface()
        exact = surface.predict(iterations=2)
        near = surface.predict(iterations=2.2)
        far = surface.predict(iterations=40)
        assert exact.confidence > near.confidence > far.confidence

    def test_query_accepts_params_dict_and_kwargs(self):
        surface = _surface()
        assert (
            surface.predict({"iterations": 2}).bandwidth_kbps
            == surface.predict(iterations=2).bandwidth_kbps
        )

    def test_missing_axis_raises(self):
        with pytest.raises(KeyError):
            _surface().predict(warps=3)

    def test_empty_surface_raises(self):
        surface = CapacitySurface(metrics=MetricsRegistry())
        with pytest.raises(ValueError):
            surface.predict(iterations=1)

    def test_add_requires_axis_columns(self):
        surface = CapacitySurface(metrics=MetricsRegistry())
        with pytest.raises(KeyError):
            surface.add({"bandwidth_kbps": 1.0, "error_rate": 0.0})

    def test_two_dimensional_idw(self):
        surface = CapacitySurface(
            axes=("iterations", "bits"), metrics=MetricsRegistry()
        )
        for it, bits, bw in [(1, 4, 100.0), (1, 8, 80.0), (2, 4, 60.0), (2, 8, 40.0)]:
            surface.add(
                {
                    "iterations": it,
                    "bits": bits,
                    "bandwidth_kbps": bw,
                    "error_rate": 0.1,
                }
            )
        exact = surface.predict(iterations=2, bits=8)
        assert exact.source == "exact"
        assert exact.bandwidth_kbps == pytest.approx(40.0)
        mid = surface.predict(iterations=1.5, bits=6)
        assert mid.source in ("interpolated", "nearest")
        assert 40.0 <= mid.bandwidth_kbps <= 100.0


class TestStaleness:
    def test_fresh_surface_passes(self):
        _surface().check_fresh(max_age_s=3600.0)

    def test_version_mismatch_is_stale(self):
        surface = _surface(version="not-the-current-tree")
        with pytest.raises(StaleSurfaceError):
            surface.predict(iterations=2)
        pred = surface.predict(iterations=2, allow_stale=True)
        assert pred.source == "exact"

    def test_age_bound(self):
        surface = _surface(version=code_version(), built_at=1.0)
        with pytest.raises(StaleSurfaceError):
            surface.predict(iterations=2, max_age_s=0.5)
        assert surface.predict(iterations=2).source == "exact"


class TestSerializationAndMetrics:
    def test_round_trip(self):
        surface = _surface(version="v-test", built_at=123.0)
        clone = CapacitySurface.from_dict(
            surface.to_dict(), metrics=MetricsRegistry()
        )
        assert len(clone) == len(surface)
        assert clone.version == "v-test"
        assert clone.built_at == 123.0
        for it in (1, 2, 3, 4, 9):
            a = surface.predict(iterations=it, allow_stale=True)
            b = clone.predict(iterations=it, allow_stale=True)
            assert b.bandwidth_kbps == pytest.approx(a.bandwidth_kbps)
            assert b.source == a.source

    def test_query_counters(self):
        registry = MetricsRegistry()
        surface = CapacitySurface.from_rows(_rows(), metrics=registry)
        surface.predict(iterations=2)
        surface.predict(iterations=3)
        surface.predict(iterations=99)
        manifest = registry.to_manifest()["metrics"]
        series = {
            s["labels"]["result"]: s["value"]
            for s in manifest["surface_queries_total"]["series"]
        }
        assert series["exact"] == 1
        assert series["interpolated"] == 1
        assert series["nearest"] == 1
        points = manifest["surface_points"]["series"][0]["value"]
        assert points == 3

"""Unit tests for L2 slices: hit path, miss path, slice-local indexing."""

import pytest

from repro.config import small_config
from repro.gpu.dram import MemoryController
from repro.gpu.l2slice import L2Slice
from repro.noc.buffer import PacketQueue
from repro.noc.packet import Packet, READ, WRITE

LINE = 128


def make_slice(config=None, with_mc=False, slice_id=0, write_done=None):
    config = config or small_config(timing_noise=0)
    request_queue = PacketQueue("req", 256)
    reply_queue = PacketQueue("rep", 1024)
    controller = None
    if with_mc:
        controller = MemoryController(
            "mc", config.dram,
            on_complete=lambda token, cycle: token[0].dram_complete(
                token[1], cycle
            ),
        )
    l2 = L2Slice(
        slice_id, config, request_queue, reply_queue,
        controller=controller, write_done=write_done,
    )
    return l2, request_queue, reply_queue, controller


def read_packet(address, slice_id=0):
    return Packet(
        kind=READ, address=address, flits=1, src_sm=0, slice_id=slice_id
    )


class TestHitPath:
    def test_preloaded_read_replies_after_pipeline_latency(self):
        config = small_config(timing_noise=0)
        l2, req, rep, _ = make_slice(config)
        l2.preload(0)
        req.push(read_packet(0))
        for cycle in range(config.l2_latency):
            l2.tick(cycle)
        assert len(rep) == 0
        l2.tick(config.l2_latency)
        l2.tick(config.l2_latency + 1)
        assert len(rep) == 1

    def test_reply_carries_read_reply_flits(self):
        config = small_config(timing_noise=0)
        l2, req, rep, _ = make_slice(config)
        l2.preload(0)
        req.push(read_packet(0))
        for cycle in range(config.l2_latency + 2):
            l2.tick(cycle)
        reply = rep.pop()
        assert reply.is_reply
        assert reply.flits == config.read_reply_flits

    def test_ports_limit_acceptance_rate(self):
        config = small_config(timing_noise=0, l2_ports=1)
        l2, req, rep, _ = make_slice(config)
        for index in range(3):
            l2.preload(index * LINE * config.num_l2_slices)
            req.push(read_packet(index * LINE * config.num_l2_slices))
        l2.tick(0)
        assert len(req) == 2  # one accepted per cycle

    def test_posted_write_completes_via_callback(self):
        done = []
        config = small_config(timing_noise=0)
        l2, req, rep, _ = make_slice(
            config, write_done=lambda packet, cycle: done.append(cycle)
        )
        l2.preload(0)
        req.push(
            Packet(kind=WRITE, address=0, flits=4, src_sm=0, slice_id=0)
        )
        for cycle in range(config.l2_latency + 2):
            l2.tick(cycle)
        assert len(done) == 1
        assert len(rep) == 0  # no reply packet for posted writes


class TestMissPath:
    def test_miss_goes_to_dram_and_fills(self):
        config = small_config(timing_noise=0)
        l2, req, rep, mc = make_slice(config, with_mc=True)
        req.push(read_packet(0))
        for cycle in range(400):
            l2.tick(cycle)
            mc.tick(cycle)
        assert len(rep) == 1
        assert l2.resident(0)

    def test_miss_slower_than_hit(self):
        config = small_config(timing_noise=0)

        def time_to_reply(preloaded):
            l2, req, rep, mc = make_slice(config, with_mc=True)
            if preloaded:
                l2.preload(0)
            req.push(read_packet(0))
            for cycle in range(1000):
                l2.tick(cycle)
                mc.tick(cycle)
                if rep:
                    return cycle
            raise AssertionError("no reply")

        # The DRAM detour (row activation + burst) adds latency on top of
        # whatever the pipeline costs.
        assert time_to_reply(False) > time_to_reply(True) - config.l2_latency

    def test_no_controller_means_everything_hits(self):
        config = small_config(timing_noise=0)
        l2, req, rep, _ = make_slice(config, with_mc=False)
        req.push(read_packet(0))  # not preloaded
        for cycle in range(config.l2_latency + 2):
            l2.tick(cycle)
        assert len(rep) == 1


class TestSliceLocalIndexing:
    def test_lines_of_one_slice_use_distinct_sets(self):
        """Regression: slice-interleaving bits must not alias every line
        a slice owns into a single cache set."""
        config = small_config(timing_noise=0)
        l2, req, rep, _ = make_slice(config)
        num_slices = config.num_l2_slices
        # Preload many lines that all belong to slice 0.
        count = config.l2_ways * 4
        for index in range(count):
            l2.preload(index * LINE * num_slices)
        resident = sum(
            1 for index in range(count)
            if l2.resident(index * LINE * num_slices)
        )
        assert resident == count

    def test_reply_backpressure_stalls_pipeline(self):
        config = small_config(timing_noise=0)
        request_queue = PacketQueue("req", 256)
        reply_queue = PacketQueue("rep", config.read_reply_flits)  # 1 reply
        l2 = L2Slice(0, config, request_queue, reply_queue)
        l2.preload(0)
        l2.preload(LINE * config.num_l2_slices)
        request_queue.push(read_packet(0))
        request_queue.push(read_packet(LINE * config.num_l2_slices))
        for cycle in range(config.l2_latency + 10):
            l2.tick(cycle)
        assert len(reply_queue) == 1  # second reply blocked
        reply_queue.pop()
        l2.tick(config.l2_latency + 11)
        assert len(reply_queue) == 1

    def test_reset(self):
        config = small_config(timing_noise=0)
        l2, req, rep, _ = make_slice(config)
        l2.preload(0)
        l2.reset()
        assert not l2.resident(0)

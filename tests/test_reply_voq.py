"""Tests for the reply-path VOQ vs single-FIFO ablation knob."""

import random

import pytest

from repro.config import medium_config, small_config
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import Kernel
from repro.gpu.warp import MemOp, READ
from repro.gpu.coalescer import lane_addresses_uncoalesced

LINE = 128


class TestConstruction:
    def test_voq_builds_per_gpc_queues(self):
        device = GpuDevice(small_config(reply_voq=True))
        config = device.config
        assert len(device.l2_reply_voqs) == config.num_l2_slices
        assert len(device.l2_reply_voqs[0]) == config.num_gpcs
        # Distinct queue objects per destination.
        assert device.l2_reply_voqs[0][0] is not device.l2_reply_voqs[0][1]
        assert len(device.reply_muxes) == config.num_gpcs

    def test_single_fifo_builds_shared_queue(self):
        device = GpuDevice(small_config(reply_voq=False))
        assert len(device.l2_reply_voqs[0]) == 1
        assert len(device.reply_muxes) == 1  # a single reply crossbar

    def test_both_variants_serve_reads(self):
        for voq in (True, False):
            config = small_config(reply_voq=voq, timing_noise=0)
            device = GpuDevice(config)
            device.preload_region(0, 64 * LINE)
            latencies = []

            def program(ctx):
                latencies.append(
                    (yield MemOp(
                        READ, lane_addresses_uncoalesced(0, LINE, lanes=8)
                    ))
                )

            device.run_kernels([Kernel(program, num_blocks=1, name="k")])
            assert latencies[0] >= config.l2_latency


class TestHolBlocking:
    def test_single_fifo_couples_cross_gpc_latency(self):
        """A saturated GPC's replies delay another GPC's probe only in
        the single-FIFO configuration (the VOQ's whole purpose)."""
        results = {}
        for voq in (True, False):
            config = medium_config(reply_voq=voq, timing_noise=0)
            device = GpuDevice(config)
            members = config.gpc_members()
            # Saturate GPC0's reply port with streaming readers.
            reader_sms = {
                config.tpc_sms(t)[0] for t in members[0]
            }
            probe_sm = config.tpc_sms(members[1][0])[0]
            latencies = []

            def reader(ctx):
                if ctx.sm_id not in reader_sms:
                    return
                base = (1 << 22) + ctx.sm_id * (1 << 16)
                for op in range(40):
                    yield MemOp(
                        READ,
                        lane_addresses_uncoalesced(
                            base + (op % 4) * 32 * LINE, LINE
                        ),
                        wait_for_completion=False,
                    )

            def probe(ctx):
                if ctx.sm_id != probe_sm:
                    return
                for op in range(12):
                    latencies.append(
                        (yield MemOp(
                            READ,
                            lane_addresses_uncoalesced(
                                (op % 4) * 32 * LINE, LINE
                            ),
                        ))
                    )

            device.preload_region(0, 4 * 32 * LINE)
            for sm in reader_sms:
                device.preload_region((1 << 22) + sm * (1 << 16), 4 * 32 * LINE)
            device.run_kernels(
                [
                    Kernel(reader, num_blocks=config.num_sms, name="rd"),
                    Kernel(probe, num_blocks=config.num_sms, name="pb"),
                ]
            )
            results[voq] = sum(latencies) / len(latencies)
        # VOQ: the other GPC's probe is unaffected; single FIFO: HOL
        # blocking leaks the congestion across.
        assert results[False] > results[True] * 1.1
